"""Setup shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks the
``wheel`` package required by the PEP 660 editable-install path (pip then falls
back to the legacy ``setup.py develop`` route).
"""

from setuptools import setup

setup()
