#!/usr/bin/env python
"""Regenerate the paper's quantitative artefacts from the command line.

Prints Table 1, the Figure 5 series and the Figure 6 density samples, each next to
the values printed in the paper where available.

Run with:  python examples/table1_reproduction.py [--simulate]
"""

import argparse

from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.table1 import run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--simulate", action="store_true",
                        help="also run the paper's Monte-Carlo methodology "
                             "(slower, adds 'sim' columns)")
    parser.add_argument("--intervals", type=int, default=10_000,
                        help="Monte-Carlo sample size per case")
    args = parser.parse_args()

    print(run_table1(simulate=args.simulate, n_intervals=args.intervals,
                     seed=2024).render(3))
    print()
    print(run_figure5().render(3))
    print()
    print(run_figure6().render(3))


if __name__ == "__main__":
    main()
