#!/usr/bin/env python
"""Regenerate the paper's quantitative artefacts from the command line.

Prints Table 1, the Figure 5 series and the Figure 6 density samples, each next to
the values printed in the paper where available.  Everything is resolved through
the scenario registry, so this is equivalent to::

    python -m repro run table1 [-p simulate=true] [--backend process]
    python -m repro run figure5
    python -m repro run figure6

Run with:  python examples/table1_reproduction.py [--simulate] [--workers N]
"""

import argparse

from repro import run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--simulate", action="store_true",
                        help="also run the paper's Monte-Carlo methodology "
                             "(slower, adds 'sim' columns)")
    parser.add_argument("--intervals", type=int, default=10_000,
                        help="Monte-Carlo sample size per case")
    parser.add_argument("--workers", type=int, default=None,
                        help="fan the Monte-Carlo shards out over a process "
                             "pool with this many workers")
    args = parser.parse_args()

    print(run_scenario("table1", simulate=args.simulate, reps=args.intervals,
                       seed=2024, workers=args.workers).render(3))
    print()
    print(run_scenario("figure5").render(3))
    print()
    print(run_scenario("figure6").render(3))


if __name__ == "__main__":
    main()
