#!/usr/bin/env python
"""Declarative evaluation through the `repro.api` facade.

This walks the unified front door end to end:

1. declare *what* to evaluate as a `StudySpec` (system + metrics + budget);
2. evaluate it through all three engines — exact phase-type analysis,
   batched Monte-Carlo, and the discrete-event kernel — and compare;
3. fan a parameter sweep out through the facade, with a result store
   attached so a re-run is pure cache hits;
4. show that the spec predicts its own store address (`canonical_key`).

Run with:  python examples/study_evaluation.py
"""

import tempfile

import repro


def main() -> None:
    # 1. Declare the study: a symmetric five-process system, the paper's
    #    headline metrics, a Monte-Carlo budget and a fixed seed.
    spec = repro.StudySpec(
        system=repro.SystemSpec.symmetric(n=5, mu=1.0, lam=0.5),
        metrics=("mean", "variance", "rp_counts"),
        reps=20_000, seed=7)

    # 2. One entry point, three engines.
    exact = repro.evaluate(spec, method="analytic")
    mc = repro.evaluate(spec, method="mc")
    des = repro.evaluate(spec, method="des")
    print(f"analytic ({exact.backend:9s}): E[X] = {exact.mean:.4f}")
    print(f"mc       ({mc.backend:9s}): E[X] = {mc.mean:.4f} "
          f"± {mc.stderr:.4f}  ({mc.n_samples} intervals)")
    print(f"des      ({des.backend:9s}): E[X] = {des.mean:.4f} "
          f"± {des.stderr:.4f}")
    assert exact.agrees_with(mc) and exact.agrees_with(des)
    print("three-way agreement within the stated tolerance ✓")

    # 3. A sweep: same declaration plus axes.  With a store attached the
    #    second evaluation is served entirely from the cache.
    sweep = repro.StudySpec(
        system=repro.SystemSpec.symmetric(3, 1.0, 1.0),
        metrics=("mean", "std"), seed=7,
        sweep={"lam": (0.5, 1.0, 2.0), "n": (3, 4, 5)})
    with tempfile.TemporaryDirectory() as tmp:
        result = repro.evaluate(sweep, store=tmp)
        print()
        print(result.to_experiment_result().render())
        again = repro.evaluate(sweep, store=tmp)
        print(f"\nre-run: {again.cache_hits}/{len(again.cells)} cells "
              "served from the store")

    # 4. Specs are content-addressed: the key below is exactly the store
    #    cell a store-attached evaluation reads and writes.
    print(f"\ncanonical key (mc): {spec.canonical_key('mc')[:16]}…")

    # 5. Recovery strategies are study cells too: sweep the paper's three
    #    checkpointing schemes over one workload (common random numbers per
    #    replication), and cross-check the synchronized scheme's measured
    #    waiting loss against the Section 3 closed form.
    tradeoff = repro.StudySpec(
        system=repro.SystemSpec.strategy(
            "synchronized", 3, mu=1.0, lam=1.0, work=25.0, error_rate=0.04),
        metrics=("slowdown", "rollbacks", "mean_rollback_distance",
                 "sync_loss"),
        reps=5, seed=7,
        sweep={"scheme": ("asynchronous", "synchronized", "pseudo")})
    print()
    print(repro.evaluate(tradeoff, method="strategy")
          .to_experiment_result().render())
    closed_form = repro.evaluate(
        repro.StudySpec(system=repro.SystemSpec.strategy(
                            "synchronized", 3, mu=1.0, lam=1.0, work=25.0),
                        metrics=("sync_loss", "expected_wait")),
        method="analytic")
    print(f"\nSection 3 closed form: CL = "
          f"{closed_form.metrics['sync_loss']:.4f}, "
          f"E[Z] = {closed_form.metrics['expected_wait']:.4f}")


if __name__ == "__main__":
    main()
