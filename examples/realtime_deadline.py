#!/usr/bin/env python
"""Time-critical control tasks: why unbounded rollback is unacceptable.

The paper singles out "time-critical tasks in which a delay in system response
beyond a certain value, the system deadline, leads to a catastrophic failure" as
the case where the asynchronous method is not acceptable.  This example models a
small triple-redundant control loop (sensor fusion, control law, actuation) and
asks, for a range of recovery deadlines: which strategies can guarantee — in
expectation and at the 95th percentile — to recover in time?

Run with:  python examples/realtime_deadline.py
"""

import numpy as np

from repro.analysis.comparison import StrategyComparison
from repro.analysis.prp_overhead import PRPOverheadModel
from repro.analysis.rollback_distance import AsynchronousRollbackModel
from repro.util.tables import AsciiTable
from repro.workloads import realtime_control_workload


def main() -> None:
    workload = realtime_control_workload(n=3, cycle_rate=2.0, coupling=1.5,
                                         work=30.0, error_rate=0.05)
    params = workload.params
    print("Control workload:", params.describe())

    async_model = AsynchronousRollbackModel(params)
    prp_model = PRPOverheadModel(params, record_cost=workload.checkpoint_cost)
    comparison = StrategyComparison(params, record_cost=workload.checkpoint_cost,
                                    sync_period=1.0)

    async_mean = async_model.expected_distance_inspection_paradox()
    async_sim = async_model.simulate_distance(n_failures=4000, seed=3)
    prp_mean = prp_model.rollback_distance_bound()
    prp_p95 = prp_model.rollback_distance_bound_quantile(0.95)
    sync_mean = comparison.synchronized_costs().expected_rollback_distance

    print("\nExpected recovery delay after an error is detected:")
    table = AsciiTable(["scheme", "mean delay", "95th percentile"])
    table.add_row(["asynchronous", async_mean, async_sim["p95_distance"]])
    table.add_row(["synchronized (period 1.0)", sync_mean, 1.0 + prp_p95])
    table.add_row(["pseudo recovery points", prp_mean, prp_p95])
    print(table.render())

    print("\nWhich schemes meet a given recovery deadline (mean-delay criterion)?")
    deadlines = (0.5, 1.0, 1.5, 2.0, 3.0, 5.0)
    table = AsciiTable(["deadline", "asynchronous", "synchronized", "PRP"])
    for deadline in deadlines:
        table.add_row([
            f"{deadline:g}",
            "ok" if async_mean <= deadline else "MISS",
            "ok" if sync_mean <= deadline else "MISS",
            "ok" if prp_mean <= deadline else "MISS",
        ])
    print(table.render())

    overhead = prp_model.overhead_per_process_rate()
    print(f"\nPrice of the PRP guarantee: {overhead:.3f} extra state-saving time "
          f"per unit time per process ((n-1)·t_r per recovery point), and "
          f"{prp_model.steady_state_storage()} saved states retained system-wide.")
    print("The asynchronous scheme only meets loose deadlines; the synchronized "
          "scheme meets intermediate ones at the cost of waiting "
          f"(CL = {comparison.sync_model.expected_loss():.3f} per synchronisation); "
          "pseudo recovery points meet the tight ones without synchronisation — "
          "exactly the paper's conclusion.")


if __name__ == "__main__":
    main()
