#!/usr/bin/env python
"""Quickstart: analyse and simulate a small set of cooperating processes.

This walks through the public API end to end:

1. describe the system (recovery-point rates μ_i, interaction rates λ_ij);
2. get the paper's analytic quantities — the mean interval E[X] between recovery
   lines, the density f_X(t), the per-process recovery-point counts E[L_i];
3. cross-check them against a Monte-Carlo simulation of the same model;
4. run the asynchronous recovery-block *runtime* under fault injection and look at
   the measured rollback behaviour;
5. run a registered scenario through the experiment runner (`run_scenario`) —
   the same entry point as `python -m repro run <name>`, with serial and
   process-pool backends producing bit-identical tables.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import RecoveryLineIntervalModel, SystemParameters, run_scenario
from repro.recovery import AsynchronousRuntime
from repro.util.tables import AsciiTable
from repro.workloads import homogeneous_workload


def main() -> None:
    # 1. The system of Table 1, case 1: three processes, every rate equal to 1.
    params = SystemParameters.three_process(mu=(1.0, 1.0, 1.0),
                                            lam_12_23_31=(1.0, 1.0, 1.0))
    print("System:", params.describe())

    # 2. Analytic quantities (Section 2.3 of the paper).
    model = RecoveryLineIntervalModel(params)
    print(f"\nMean interval between recovery lines   E[X]  = {model.mean_interval():.4f}")
    print(f"Std deviation of the interval           σ[X]  = {model.interval_std():.4f}")
    counts = model.expected_rp_counts(counting="all")
    print(f"Mean recovery points saved per interval E[L_i] = {np.round(counts, 4)}")

    grid = np.linspace(0.0, 2.0, 9)
    table = AsciiTable(["t", "f_X(t)"])
    for t, f in zip(grid, np.asarray(model.pdf(grid))):
        table.add_row([f"{t:.2f}", float(f)])
    print("\nDensity of X (the Figure 6 curve for this case):")
    print(table.render())

    # 3. Monte-Carlo cross-check (the paper's own methodology for Table 1).
    report = model.validation_report(n_intervals=5000, seed=42)
    print(f"\nMonte-Carlo E[X] over {report['n_intervals']} intervals: "
          f"{report['simulated_mean_X']:.4f}  "
          f"(relative error {report['relative_error_X']:.2%})")

    # 4. Run the asynchronous recovery-block runtime with transient faults.
    workload = homogeneous_workload(n=3, mu=1.0, lam=1.0, work=40.0,
                                    error_rate=0.04)
    run = AsynchronousRuntime(workload, seed=7).run()
    print("\nAsynchronous runtime under fault injection:")
    print(f"  completed           : {run.completed}")
    print(f"  makespan            : {run.makespan:.2f} "
          f"(ideal {run.ideal_makespan:.2f}, slowdown {run.slowdown:.2f}x)")
    print(f"  rollbacks           : {run.rollback_count}")
    print(f"  mean/max rollback   : {run.mean_rollback_distance:.2f} / "
          f"{run.max_rollback_distance:.2f}")
    print(f"  lost work           : {run.lost_work_total:.2f}")
    print(f"  saved states (peak) : {run.peak_saved_states}")

    # 5. The experiment runner: any registered scenario by name, on any backend.
    #    (`python -m repro list` shows all of them; a process-pool run with the
    #    same seed reproduces this table bit for bit.)
    print("\nThree-way validation via the experiment runner:")
    print(run_scenario("validation", reps=2_000, seed=42).render(3))


if __name__ == "__main__":
    main()
