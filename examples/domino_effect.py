#!/usr/bin/env python
"""The domino effect, step by step (the paper's Figure 1 narrative).

Builds the exact history of Figure 1 — three processes, recovery points and
messages arranged so that a failure of P1 propagates through P2 and P3 back to an
early recovery line — then shows:

* the recovery lines present in the history (exact detector);
* the rollback propagation triggered by the failing acceptance test AT_1^4;
* what happens when the same history has *no* recovery points at all (the full
  domino collapse to the beginnings);
* how pseudo recovery points (Section 4) would have bounded the rollback.

Run with:  python examples/domino_effect.py
"""

from repro.core.recovery_line import ExactRecoveryLineDetector
from repro.core.rollback import propagate_rollback
from repro.core.history import HistoryDiagram
from repro.core.types import CheckpointKind
from repro.util.tables import AsciiTable
from repro.workloads.trace import domino_trace, figure1_trace


def main() -> None:
    trace = figure1_trace()
    history = trace.to_history()
    failure_time = 6.2

    print("History (o = recovery point, x = interaction endpoint):\n")
    print(history.render_ascii(width=70))

    lines = ExactRecoveryLineDetector().find_lines(history)
    print(f"\nRecovery lines present ({len(lines)} including the initial states):")
    for line in lines:
        members = ", ".join(line.points[p].label for p in line.processes)
        print(f"  t={line.formation_time:5.2f}  [{members}]")

    print(f"\nP1 fails its acceptance test at t = {failure_time}.")
    result = propagate_rollback(history, failed_process=0, failure_time=failure_time)
    table = AsciiTable(["process", "restart point", "restart time", "rollback distance"])
    for pid in sorted(result.affected):
        rp = result.restart_points[pid]
        table.add_row([f"P{pid + 1}", rp.label, rp.time, result.distance(pid)])
    print(table.render())
    print(f"Maximum rollback distance : {result.max_distance:.2f}")
    print(f"Total discarded computation: {result.total_lost_computation:.2f}")
    print(f"Domino effect (back to start)? {result.domino}")

    # Without any recovery points the same interactions drag everyone to t = 0.
    bare = HistoryDiagram(3)
    for interaction in history.interactions:
        bare.add_interaction(interaction.source, interaction.target, interaction.time)
    collapse = propagate_rollback(bare, failed_process=0, failure_time=failure_time)
    print(f"\nSame failure with no recovery points at all: domino={collapse.domino}, "
          f"every process restarts at t=0 and {collapse.total_lost_computation:.1f} "
          "units of computation are lost.")

    # With pseudo recovery points implanted for P1's last RP, the others restart
    # just after it instead of at the old recovery line.
    prp_history = figure1_trace().to_history()
    last_rp_p1 = prp_history.recovery_points(0)[-1]
    prp_history.add_recovery_point(1, last_rp_p1.time + 0.05,
                                   kind=CheckpointKind.PSEUDO,
                                   origin=(0, last_rp_p1.index))
    prp_history.add_recovery_point(2, last_rp_p1.time + 0.05,
                                   kind=CheckpointKind.PSEUDO,
                                   origin=(0, last_rp_p1.index))
    bounded = propagate_rollback(
        prp_history, failed_process=0, failure_time=failure_time,
        checkpoint_filter=lambda rp: rp.kind is CheckpointKind.REGULAR
        or rp.is_usable_for(0))
    print(f"\nWith pseudo recovery points implanted for {last_rp_p1.label}: "
          f"maximum rollback distance drops from {result.max_distance:.2f} to "
          f"{bounded.max_distance:.2f}.")

    # The scenario is not tied to three processes: domino_trace(n) lays out
    # the same msg/rp sandwich for any n (domino_trace(3) IS Figure 1, event
    # for event), and the rollback still reaches the early layer.
    print("\nThe same domino structure, generalized beyond Figure 1's n=3:")
    for n in (3, 5, 8):
        trace = domino_trace(n)
        deep = propagate_rollback(trace.to_history(), failed_process=0,
                                  failure_time=trace.duration + 0.4)
        print(f"  n={n}: {len(deep.affected)} processes rolled back, "
              f"max distance {deep.max_distance:.2f}, "
              f"lost computation {deep.total_lost_computation:.2f}")


if __name__ == "__main__":
    main()
