#!/usr/bin/env python
"""Compare the three recovery-block strategies on the same workload.

The paper's conclusion describes the selection trade-off qualitatively; this
example makes it concrete for two workloads:

* a loosely coupled compute job (few interactions, moderate checkpointing), and
* a tightly coupled producer/consumer pipeline (heavy neighbour traffic).

For each workload the analytic comparison (normal-operation overhead vs expected
rollback distance) is printed next to measured runtime results averaged over a few
replications, and the scheme the paper's guidance would recommend is reported.

Run with:  python examples/strategy_comparison.py
"""

from repro.analysis.comparison import StrategyComparison, recommend_scheme
from repro.experiments.strategy_comparison import run_strategy_comparison
from repro.util.tables import AsciiTable
from repro.workloads import homogeneous_workload, pipeline_workload


def analyse(name: str, workload, sync_period: float = 2.0,
            failure_rate: float = 0.04) -> None:
    print("=" * 78)
    print(f"Workload: {name} — {workload.params.describe()}")
    print("=" * 78)

    comparison = StrategyComparison(workload.params,
                                    record_cost=workload.checkpoint_cost,
                                    sync_period=sync_period)
    table = AsciiTable(["scheme", "normal overhead/time", "E[rollback distance]",
                        "steady storage (states)", "total cost rate"])
    for scheme, costs in comparison.all_costs().items():
        table.add_row([scheme, costs.normal_overhead_rate,
                       costs.expected_rollback_distance, costs.storage_states,
                       costs.total_cost(failure_rate)])
    print("\nAnalytic comparison (Sections 2-4):")
    print(table.render())
    print(f"\nRecommended scheme at failure rate {failure_rate}: "
          f"{recommend_scheme(workload.params, failure_rate=failure_rate, record_cost=workload.checkpoint_cost, sync_period=sync_period)}")
    print(f"Recommended with a hard 2.0-unit recovery deadline: "
          f"{recommend_scheme(workload.params, failure_rate=failure_rate, record_cost=workload.checkpoint_cost, sync_period=sync_period, deadline=2.0)}")

    print("\nMeasured (discrete-event runtimes, 3 replications, process pool):")
    result = run_strategy_comparison(workload, replications=3, base_seed=11,
                                     sync_interval=sync_period,
                                     backend="process")
    print(result.render(3))
    print()


def main() -> None:
    analyse("loosely coupled compute job",
            homogeneous_workload(n=3, mu=1.0, lam=0.4, work=30.0, error_rate=0.04))
    analyse("tightly coupled pipeline",
            pipeline_workload(n=4, mu=1.0, lam=2.5, work=25.0, error_rate=0.05))


if __name__ == "__main__":
    main()
