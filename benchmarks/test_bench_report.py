"""Micro-benchmarks for the result store and the report pipeline.

What matters for the persistence layer is not raw throughput — stored
objects are a few KB of JSON — but that a **cache hit costs milliseconds**
while the scenario it replaces costs anywhere from seconds to (at large n)
minutes.  The cache-speedup guard pins that contract; the store benchmarks
track put/get overhead so the write-through hook stays negligible next to
any real scenario.
"""

import time

import pytest

from repro.experiments.common import ExperimentResult
from repro.report import ResultStore, generate_report
from repro.runner import ExperimentRunner


def _payload(rows: int = 50) -> ExperimentResult:
    result = ExperimentResult(name="bench", paper_reference="(bench)",
                              columns=["a", "b", "c"])
    for index in range(rows):
        result.add_row(f"row {index}", a=index * 0.5, b=index ** 2,
                       c=1.0 / (index + 1))
    return result


@pytest.mark.benchmark(group="report-store")
def test_bench_store_put(benchmark, tmp_path):
    """Write-through cost per stored run (50-row result)."""
    store = ResultStore(str(tmp_path))
    payload = _payload()
    counter = iter(range(10 ** 9))

    def put():
        store.put("bench", {"cell": next(counter)}, seed=1, reps=None,
                  backend="serial", elapsed_seconds=0.0, result=payload)

    benchmark.pedantic(put, iterations=20, rounds=5)


@pytest.mark.benchmark(group="report-store")
def test_bench_store_get(benchmark, tmp_path):
    """Cache-hit lookup cost (the price of resuming instead of recomputing)."""
    store = ResultStore(str(tmp_path))
    record = store.put("bench", {}, seed=1, reps=None, backend="serial",
                       elapsed_seconds=0.0, result=_payload())
    loaded = benchmark.pedantic(store.get, args=(record.key, "bench"),
                                iterations=20, rounds=5)
    assert loaded is not None


def test_cache_hit_beats_recompute(tmp_path):
    """Acceptance guard: serving figure5_full_chain from the store is ≥5x
    faster than computing it (in practice it is orders of magnitude)."""
    store = ResultStore(str(tmp_path))
    runner = ExperimentRunner(seed=3, store=store)
    start = time.perf_counter()
    runner.run_record("figure5_full_chain", n_values=(6, 8), rho_values=(1.0,))
    computed = time.perf_counter() - start
    start = time.perf_counter()
    record = runner.run_record("figure5_full_chain", n_values=(6, 8),
                               rho_values=(1.0,))
    cached = time.perf_counter() - start
    assert record.cached
    assert cached * 5.0 < computed, (cached, computed)


@pytest.mark.benchmark(group="report-pipeline")
def test_bench_report_rerun_from_store(benchmark, tmp_path):
    """Full `report` pass over warm cells: pure render + markdown cost."""
    out = str(tmp_path / "reports")
    scenarios = ["table1", "figure6"]
    generate_report(scenarios, out_dir=out)          # warm the store
    summary = benchmark.pedantic(generate_report, args=(scenarios,),
                                 kwargs={"out_dir": out},
                                 iterations=1, rounds=5)
    assert summary.cache_hits == len(scenarios)
