"""Benchmark-suite configuration.

Every benchmark regenerates one paper artefact (table/figure) or exercises one
substrate hot path.  The regenerated rows are printed so that the benchmark log
doubles as the reproduction artefact; `pytest benchmarks/ --benchmark-only`
therefore both measures and reproduces.
"""

import pytest


def emit(result) -> None:
    """Print a regenerated experiment table underneath the benchmark output."""
    print()
    print(result.render())
