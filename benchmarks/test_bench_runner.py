"""Micro-benchmarks for the runner subsystem and the vectorized sampler.

Two perf trajectories this PR opens:

* **Sampler** — batched numpy draws vs the event-at-a-time legacy loop of
  :class:`~repro.markov.montecarlo.ModelSimulator` (acceptance floor: ≥3x on
  the ``n_intervals=20_000`` Table 1 simulation).
* **Backends** — serial vs process-pool execution of the Table 1 Monte-Carlo
  scenario through :func:`repro.runner.run_scenario` (the seam every later
  scaling PR plugs into).
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.markov.montecarlo import ModelSimulator
from repro.runner import run_scenario
from repro.workloads.generators import paper_table1_case

#: Budget of the acceptance comparison (the seed's Table 1 default).
N_INTERVALS = 20_000


@pytest.mark.benchmark(group="sampler")
def test_bench_sampler_vectorized(benchmark):
    """Batched sampler on the full 20k-interval Table 1 case 1 budget."""
    simulator = ModelSimulator(paper_table1_case(1), seed=5)
    samples = benchmark.pedantic(simulator.sample_intervals, args=(N_INTERVALS,),
                                 iterations=1, rounds=3)
    assert samples.n_samples == N_INTERVALS


@pytest.mark.benchmark(group="sampler")
def test_bench_sampler_legacy(benchmark):
    """Event-at-a-time reference sampler (smaller budget; it is ~40x slower)."""
    simulator = ModelSimulator(paper_table1_case(1), seed=5)
    samples = benchmark.pedantic(simulator.sample_intervals_legacy, args=(2_000,),
                                 iterations=1, rounds=1)
    assert samples.n_samples == 2_000


@pytest.mark.slow
def test_vectorized_sampler_speedup_and_accuracy():
    """Acceptance guard: ≥3x over legacy at 20k intervals, means still match."""
    params = paper_table1_case(1)
    analytic = RecoveryLineIntervalModel(params,
                                         prefer_simplified=False).mean_interval()

    start = time.perf_counter()
    fast = ModelSimulator(params, seed=3).sample_intervals(N_INTERVALS)
    fast_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    legacy = ModelSimulator(params, seed=3).sample_intervals_legacy(N_INTERVALS)
    legacy_elapsed = time.perf_counter() - start

    speedup = legacy_elapsed / fast_elapsed
    print(f"\nvectorized {fast_elapsed:.3f}s vs legacy {legacy_elapsed:.3f}s "
          f"-> {speedup:.1f}x")
    assert speedup >= 3.0
    # Both samplers draw from the identical process law.
    assert fast.mean_interval() == pytest.approx(analytic, rel=0.06)
    assert legacy.mean_interval() == pytest.approx(analytic, rel=0.06)


@pytest.mark.benchmark(group="runner-backends")
def test_bench_table1_scenario_serial(benchmark):
    """Full Table 1 Monte-Carlo scenario on the serial backend."""
    result = benchmark.pedantic(
        run_scenario, args=("table1",),
        kwargs=dict(simulate=True, reps=N_INTERVALS, seed=7),
        iterations=1, rounds=1)
    emit(result)
    for row in result.rows:
        assert row.get("sim E[X]") == pytest.approx(row.get("E[X]"), rel=0.1)


@pytest.mark.benchmark(group="runner-backends")
def test_bench_table1_scenario_process_pool(benchmark):
    """Same scenario fanned out across a process pool (bit-identical output)."""
    result = benchmark.pedantic(
        run_scenario, args=("table1",),
        kwargs=dict(simulate=True, reps=N_INTERVALS, seed=7,
                    backend="process", workers=4),
        iterations=1, rounds=1)
    serial = run_scenario("table1", simulate=True, reps=N_INTERVALS, seed=7)
    assert [row.values for row in result.rows] == \
        [row.values for row in serial.rows]


@pytest.mark.benchmark(group="runner-backends")
def test_bench_strategy_scenario_process_pool(benchmark):
    """Runtime-heavy scenario (3 schemes x reps) through the process backend."""
    result = benchmark.pedantic(
        run_scenario, args=("strategy_comparison",),
        kwargs=dict(reps=6, seed=21, work=20.0, backend="process", workers=4),
        iterations=1, rounds=1)
    assert result.row("synchronized").get("waiting_time") > 0.0
