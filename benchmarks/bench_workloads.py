"""The two acceptance bench workloads of the perf-trajectory suite.

Defined once so the baseline ("before") and every future ("after")
measurement run the *same* work — the committed hex snapshots under
``benchmarks/snapshots/`` pin these specs bit-for-bit, so changing a spec
here requires re-recording its snapshot and restarting its BENCH trajectory
(see docs/RUNNER.md).

``STRATEGY_SPEC`` is the ISSUE-6 acceptance shape — 3 schemes × 4 workload
cells at the default strategy budget — and ``ANALYTIC_SPEC`` the 100-cell
rates-only heterogeneous sweep that exercises the structure cache (one
structural miss, 99 hits).
"""

STRATEGY_SPEC = {
    "system": {"kind": "strategy", "scheme": "synchronized", "n": 4,
               "mu": 1.0, "lam": 1.0, "work": 25.0, "error_rate": 0.05,
               "sync_interval": 2.0},
    "metrics": ["makespan", "slowdown", "rollbacks", "lost_work",
                "total_saves"],
    "seed": 1234,
    "sweep": {"scheme": ["asynchronous", "synchronized", "pseudo"],
              "lam": [0.5, 1.0, 1.5, 2.0]},
}

#: Replications per strategy cell (the spec carries no ``reps``, so the
#: engine default applies; stated here for the throughput bookkeeping).
STRATEGY_REPS_PER_CELL = 5

ANALYTIC_SPEC = {
    "system": {"kind": "heterogeneous", "n": 9, "mu_base": 1.0,
               "mu_gradient": 2.0, "lam_base": 0.5, "locality": 1.0},
    "metrics": ["mean", "variance"],
    "sweep": {"lam_base": [round(0.2 + 0.008 * i, 6) for i in range(100)]},
}


def hexify(value):
    """Floats to ``float.hex()`` recursively — the bit-identity currency."""
    if isinstance(value, float):
        return float(value).hex()
    if isinstance(value, (list, tuple)):
        return [hexify(v) for v in value]
    if isinstance(value, dict):
        return {k: hexify(v) for k, v in value.items()}
    return value
