"""Benchmarks regenerating the paper's quantitative artefacts.

E3 (Figure 5), E4 (Figure 6), E5 (Table 1), E6 (Section 3 CL), E7 (Section 4 PRP
costs) from the DESIGN.md experiment index.  Each benchmark times the regeneration
and prints the regenerated rows.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.prp_costs import run_prp_costs
from repro.experiments.sync_loss import run_sync_loss
from repro.experiments.table1 import PAPER_TABLE1, run_table1


@pytest.mark.benchmark(group="paper-tables")
def test_bench_table1(benchmark):
    """E5 — Table 1: E[X] and E[L_i] for the five parameter cases."""
    result = benchmark(run_table1, simulate=False)
    emit(result)
    # Reproduction guard: the E[L] columns must match the paper.
    for case in range(1, 6):
        assert result.rows[case - 1].get("sum E[L]") == pytest.approx(
            PAPER_TABLE1[case][4], abs=5e-3)


@pytest.mark.benchmark(group="paper-tables")
def test_bench_table1_montecarlo(benchmark):
    """E5 (paper methodology) — Table 1 via Monte-Carlo simulation of the model."""
    result = benchmark.pedantic(run_table1, kwargs=dict(simulate=True,
                                                        n_intervals=4000, seed=7),
                                iterations=1, rounds=1)
    emit(result)
    for row in result.rows:
        assert row.get("sim E[X]") == pytest.approx(row.get("E[X]"), rel=0.12)


@pytest.mark.benchmark(group="paper-figures")
def test_bench_figure5(benchmark):
    """E3 — Figure 5: E[X] versus the number of processes at constant rho."""
    result = benchmark(run_figure5, (2, 3, 4, 5, 6, 7, 8), (0.5, 1.0, 2.0, 4.0))
    emit(result)
    high = result.column("E[X] rho=4")
    assert high[-1] > high[0] * 10.0          # drastic growth with n


@pytest.mark.benchmark(group="paper-figures")
def test_bench_figure6(benchmark):
    """E4 — Figure 6: the density f_X(t) of the inter-recovery-line interval."""
    result = benchmark(run_figure6)
    emit(result)
    for row in result.rows:
        assert row.get("f(0)") > row.get("f(2)")


@pytest.mark.benchmark(group="paper-sections")
def test_bench_sync_loss(benchmark):
    """E6 — Section 3: mean computation-power loss CL of synchronized RBs."""
    result = benchmark(run_sync_loss)
    emit(result)
    assert result.column("CL h=1") == sorted(result.column("CL h=1"))


@pytest.mark.benchmark(group="paper-sections")
def test_bench_prp_costs(benchmark):
    """E7 — Section 4: PRP overhead, storage and rollback-distance bound."""
    result = benchmark(run_prp_costs)
    emit(result)
    ratios = result.column("bound / E[X]")
    assert ratios[-1] < ratios[0]
