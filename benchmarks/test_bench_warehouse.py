"""Warehouse ETL throughput on the perf trajectory.

Builds a synthetic result store of :data:`N_CELLS` cells (a scheme x n x
lam grid with realistic metric rows), loads it into a fresh SQLite
warehouse :data:`BENCH_REPEATS` times and takes the best wall time.  The
correctness half — every load sees and inserts all cells, a re-load
inserts zero — runs on every invocation (PR smoke included); the perf half
follows the standard trajectory toggles:

``REPRO_BENCH_RECORD=1``
    append cells/s to ``BENCH_warehouse.json`` via :mod:`repro.bench`.
``REPRO_BENCH_GUARD=1``
    fail on a >25% throughput drop vs. the latest same-machine entry.
"""

import os
import sqlite3
import time

from repro import bench
from repro.experiments.common import ExperimentResult
from repro.report.store import ResultStore
from repro.warehouse import load_store

from test_bench_trajectory import GUARD_TOLERANCE, check_guard  # noqa: F401

#: Cells in the synthetic store; small enough for PR smoke, large enough
#: that the per-cell INSERT path dominates the measured wall.
N_CELLS = 120

BENCH_REPEATS = 3


def _build_store(root):
    store = ResultStore(root)
    schemes = ("synchronized", "asynchronous", "pseudo")
    index = 0
    for scheme in schemes:
        for n in (3, 5, 7, 9):
            for lam_tenths in range(1, 11):
                if index >= N_CELLS:
                    return store
                index += 1
                lam = lam_tenths / 10.0
                result = ExperimentResult(
                    name="api_evaluation", paper_reference="",
                    columns=["value"],
                    notes='{"method": "strategy", "backend": "serial"}')
                result.add_row("makespan", value=15.0 + index / 7.0)
                result.add_row("slowdown", value=1.0 + index / 97.0)
                result.add_row("stderr_makespan", value=0.5 / (index + 1))
                result.add_row("rollbacks", value=float(index % 5))
                store.put(
                    "evaluate",
                    {"method": "strategy",
                     "spec": {"system": {"kind": "strategy",
                                         "scheme": scheme, "n": n,
                                         "mu": 1.0, "lam": lam,
                                         "work": 15.0,
                                         "checkpoint_cost": 0.02},
                              "metrics": ["makespan", "slowdown",
                                          "rollbacks"],
                              "counting": "per_process"}},
                    seed=11, reps=3, backend="serial",
                    elapsed_seconds=0.01, result=result)
    return store


class TestWarehouseLoadTrajectory:
    def test_load_throughput_and_idempotence(self, tmp_path):
        root = str(tmp_path / "store")
        _build_store(root)
        wall = float("inf")
        for repeat in range(BENCH_REPEATS):
            db = str(tmp_path / f"wh{repeat}.sqlite")
            start = time.perf_counter()
            summary = load_store(root, db)
            wall = min(wall, time.perf_counter() - start)
            assert summary.cells_seen == summary.cells_inserted == N_CELLS
            again = load_store(root, db)
            assert again.cells_inserted == 0
            conn = sqlite3.connect(db)
            cells, axes, metrics = (
                conn.execute(f"SELECT COUNT(*) FROM {t}").fetchone()[0]
                for t in ("cells", "axes", "metrics"))
            conn.close()
            assert cells == N_CELLS
            assert axes == N_CELLS * 10      # method/kind + 6 args + 3 spec
            assert metrics == N_CELLS * 4
        print(f"\n[warehouse] {N_CELLS} cells loaded in {wall*1e3:.1f} ms "
              f"({N_CELLS / wall:.0f} cells/s)")
        check_guard("warehouse", f"etl_load_{N_CELLS}cells", wall, N_CELLS)
