"""Benchmarks for the validation (E10) and ablation experiments."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablation import run_detector_ablation, run_solver_ablation
from repro.experiments.sync_loss import run_sync_loss_validation
from repro.experiments.validation import run_validation


@pytest.mark.benchmark(group="validation")
def test_bench_validation_three_way(benchmark):
    """E10 — analytic vs Monte-Carlo vs history-level agreement on E[X]."""
    result = benchmark.pedantic(run_validation,
                                kwargs=dict(cases=(1, 2), n_intervals=3000,
                                            history_duration=250.0, seed=17),
                                iterations=1, rounds=1)
    emit(result)
    for row in result.rows:
        assert row.get("MC rel err") < 0.12


@pytest.mark.benchmark(group="validation")
def test_bench_sync_loss_runtime_validation(benchmark):
    """E6 cross-check — measured waiting loss of the synchronized runtime vs CL."""
    result = benchmark.pedantic(run_sync_loss_validation,
                                kwargs=dict(n=3, work=300.0, seed=13),
                                iterations=1, rounds=1)
    emit(result)
    assert result.rows[0].get("relative error") < 0.3


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_detectors(benchmark):
    """Ablation — exact vs latest-RP (paper model) recovery-line detection."""
    result = benchmark.pedantic(run_detector_ablation,
                                kwargs=dict(cases=(1, 2), duration=200.0, seed=19),
                                iterations=1, rounds=1)
    emit(result)
    for row in result.rows:
        assert row.get("conservatism") >= 1.0


@pytest.mark.benchmark(group="ablation")
def test_bench_ablation_solvers(benchmark):
    """Ablation — matrix-exponential vs Chapman-Kolmogorov ODE evaluation."""
    result = benchmark(run_solver_ablation, 1)
    emit(result)
    assert max(result.column("abs diff")) < 1e-6
