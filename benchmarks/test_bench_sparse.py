"""Micro-benchmarks for the TransientOperator backends (dense vs sparse).

Records the dense/sparse crossover on the full recovery-line chain and pins
the capability the sparse backend opens: heterogeneous full-chain moments at
n = 14 (16 384 transient states), where the dense path would need a 2 GB
``(2^14+1)²`` array and a matrix exponential that never finishes.

The measured pipeline is the analytic hot path of the new scenarios: CSR (or
dense) generator assembly → ``E[X]``/``Var[X]`` solves → a 101-point density
grid.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.parameters import SystemParameters
from repro.experiments.heterogeneous_sweep import (heterogeneous_parameters,
                                                   run_heterogeneous_sweep)
from repro.markov.generator import build_phase_type

#: Heterogeneous family used throughout (gradient + locality decay) — the
#: workload the lumped chain cannot represent.
def _hetero(n: int) -> SystemParameters:
    return heterogeneous_parameters(n, mu_gradient=2.0, lam_base=0.5,
                                    locality=1.0)


def _analytic_pipeline(params: SystemParameters, backend: str) -> float:
    ph = build_phase_type(params, backend=backend)
    assert ph.backend == backend      # forced backends are really honoured
    mean = ph.mean()
    ph.variance()
    ph.pdf(np.linspace(0.0, 4.0, 101))
    return mean


@pytest.mark.benchmark(group="analytic-operators")
def test_bench_dense_pipeline_n10(benchmark):
    """Dense expm/LU pipeline at n=10 (1024 transient states)."""
    params = _hetero(10)
    mean = benchmark.pedantic(_analytic_pipeline, args=(params, "dense"),
                              iterations=1, rounds=3)
    assert mean > 0.0


@pytest.mark.benchmark(group="analytic-operators")
def test_bench_sparse_pipeline_n10(benchmark):
    """Sparse CSR/Krylov pipeline at n=10 (the auto-selection crossover)."""
    params = _hetero(10)
    mean = benchmark.pedantic(_analytic_pipeline, args=(params, "sparse"),
                              iterations=1, rounds=3)
    assert mean > 0.0


@pytest.mark.benchmark(group="analytic-operators")
def test_bench_sparse_pipeline_n12(benchmark):
    """Sparse pipeline at n=12 (4096 states — dense takes seconds here)."""
    params = _hetero(12)
    mean = benchmark.pedantic(_analytic_pipeline, args=(params, "sparse"),
                              iterations=1, rounds=2)
    assert mean > 0.0


@pytest.mark.slow
def test_sparse_speedup_over_dense_at_n11():
    """Acceptance guard: the sparse pipeline beats dense ≥3x at n=11 and the
    two backends agree at solver precision.

    n=11 keeps the guard fast (dense ~3 s); the gap widens steeply from there
    (measured: 2.7x at n=10, 13x at n=11, 62x at n=12 — where dense needs
    ~22 s — and dense cannot run at all at n=14).
    """
    params = _hetero(11)

    start = time.perf_counter()
    sparse_mean = _analytic_pipeline(params, "sparse")
    sparse_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    dense_mean = _analytic_pipeline(params, "dense")
    dense_elapsed = time.perf_counter() - start

    assert sparse_mean == pytest.approx(dense_mean, rel=1e-9)
    speedup = dense_elapsed / sparse_elapsed
    print(f"\nn=11 analytic pipeline: dense {dense_elapsed:.2f}s, "
          f"sparse {sparse_elapsed:.2f}s, speedup {speedup:.1f}x")
    # Measured ~13x; the floor is conservative against machine noise.
    assert speedup >= 3.0


@pytest.mark.slow
def test_sparse_full_chain_moments_n14_heterogeneous():
    """ISSUE acceptance: full-chain PhaseType moments at n=14 heterogeneous
    complete — the dense path cannot even allocate this system."""
    params = _hetero(14)
    start = time.perf_counter()
    ph = build_phase_type(params, backend="auto")
    assert ph.backend == "sparse"
    assert ph.order == 2 ** 14
    mean = ph.mean()
    second = ph.moment(2)
    elapsed = time.perf_counter() - start
    assert np.isfinite(mean) and mean > 0.0
    assert second > mean ** 2          # Var[X] > 0
    # Wald cross-check ties the sparse solves to an independent identity:
    # E[L_i] = mu_i * E[X] under "all" counting.
    from repro.markov.split_chain import expected_rp_counts
    counts = expected_rp_counts(params, counting="all")
    assert np.allclose(counts, params.mu * mean, rtol=1e-6)
    print(f"\nn=14 heterogeneous full chain: E[X]={mean:.4f}, "
          f"E[X^2]={second:.1f}, total {elapsed:.2f}s")
    assert elapsed < 60.0


@pytest.mark.benchmark(group="analytic-operators")
def test_bench_heterogeneous_sweep_scenario(benchmark):
    """The registered heterogeneous_sweep scenario end to end (n=9, serial)."""
    result = benchmark.pedantic(
        run_heterogeneous_sweep,
        kwargs={"n": 9, "mu_gradients": (1.0, 2.0)},
        iterations=1, rounds=1)
    emit(result)
    assert len(result.rows) == 2
