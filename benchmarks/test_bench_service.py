"""Service throughput trajectory: multi-tenant burst vs direct evaluation.

The workload models the service's reason to exist: T tenants each submit
the same C-cell sweep concurrently (T·C submissions, C unique cells).

``direct_sequential``  (the *before*)
    Every tenant evaluates every cell through :func:`repro.evaluate`,
    cell at a time — no sharing, T·C engine executions.
``service_burst``  (the *after*)
    The same submissions through one :class:`EvaluationService` — the
    single-flight registry collapses the duplicates, the admission window
    coalesces the unique cells into one backend fan-out, and the recorded
    ``extra`` carries the dedup hit rate and mean batch occupancy.

Both measure submissions/second over the identical submission stream, so
the two BENCH entries are directly comparable.  Bit-identity runs on every
invocation: each service-served evaluation must be hex-identical to its
direct counterpart.  Recording/guarding follows the trajectory pattern
(``REPRO_BENCH_RECORD`` / ``REPRO_BENCH_GUARD``, see
``test_bench_trajectory``).
"""

import asyncio
import os
import time

import pytest

from bench_workloads import hexify

from repro import bench
from repro.api import StudySpec, evaluate
from repro.service import EvaluationService, ServiceClient

#: Allowed throughput drop vs. the latest same-machine trajectory entry.
GUARD_TOLERANCE = 0.25

RECORDING = bool(os.environ.get("REPRO_BENCH_RECORD"))
GUARDING = bool(os.environ.get("REPRO_BENCH_GUARD"))

#: Tenants submitting concurrently and unique cells per tenant's sweep.
TENANTS = 3
SWEEP_CELLS = 20

SERVICE_SPEC = {
    "system": {"kind": "heterogeneous", "n": 9, "mu_base": 1.0,
               "mu_gradient": 2.0, "lam_base": 0.5, "locality": 1.0},
    "metrics": ["mean", "variance"],
    "sweep": {"lam_base": [round(0.3 + 0.02 * i, 6)
                           for i in range(SWEEP_CELLS)]},
}

#: Timed repetitions; the recorded wall is the best of these.
BENCH_REPEATS = 3


def check_guard(op, wall, n, extra=None):
    baseline = bench.latest("service", op, same_machine=True)
    if RECORDING:
        bench.record("service", op, n, wall, unit="submissions",
                     note="nightly trajectory run", extra=extra)
    if not GUARDING:
        return
    if baseline is None:
        pytest.skip(f"no service/{op} trajectory entry for this machine yet; "
                    "this run seeds it" if RECORDING else
                    f"no same-machine baseline for service/{op} and "
                    "REPRO_BENCH_RECORD is off")
    throughput = n / wall
    floor = baseline["throughput"] * (1.0 - GUARD_TOLERANCE)
    assert throughput >= floor, (
        f"service/{op} throughput regressed: {throughput:.1f}/s vs the "
        f"recorded {baseline['throughput']:.1f}/s "
        f"(tolerance {GUARD_TOLERANCE:.0%}, recorded "
        f"{baseline['timestamp']} at version {baseline['code_version']})")


def run_direct():
    """The before: every tenant evaluates every cell, no sharing."""
    spec = StudySpec.from_dict(SERVICE_SPEC)
    cells = list(spec.cells())
    metrics, wall = None, float("inf")
    for _ in range(BENCH_REPEATS):
        start = time.perf_counter()
        evaluations = [evaluate(cell, "analytic")
                       for _tenant in range(TENANTS) for cell in cells]
        wall = min(wall, time.perf_counter() - start)
        if metrics is None:
            metrics = [e.metrics for e in evaluations]
    return metrics, wall


def run_service():
    """The after: the same T·C submissions through one shared service."""
    spec = StudySpec.from_dict(SERVICE_SPEC)

    async def burst():
        # A fresh service per repeat: cold LRU, so dedup does the work.
        service = EvaluationService(batch_window=0.02,
                                    max_batch=TENANTS * SWEEP_CELLS + 1)
        clients = [ServiceClient(service, tenant=f"tenant-{i}")
                   for i in range(TENANTS)]
        start = time.perf_counter()
        outcomes = await asyncio.gather(
            *(client.submit(spec, "analytic") for client in clients))
        wall = time.perf_counter() - start
        return outcomes, wall, service.stats()

    metrics, best_wall, stats = None, float("inf"), None
    for _ in range(BENCH_REPEATS):
        outcomes, wall, run_stats = asyncio.run(burst())
        if wall < best_wall:
            best_wall, stats = wall, run_stats
        if metrics is None:
            metrics = [cell.evaluation.metrics
                       for outcome in outcomes for cell in outcome.cells]
    return metrics, best_wall, stats


class TestServiceTrajectory:
    def test_bit_identity_and_throughput(self):
        direct_metrics, direct_wall = run_direct()
        service_metrics, service_wall, stats = run_service()
        assert hexify(service_metrics) == hexify(direct_metrics), (
            "service-served evaluations drifted from direct evaluation — "
            "the dedup/batching path broke bit-identity")
        n = TENANTS * SWEEP_CELLS
        check_guard("direct_sequential_3tenants_20cells", direct_wall, n)
        check_guard("service_burst_3tenants_20cells", service_wall, n,
                    extra={
                        "dedup_hit_rate": round(stats["dedup_hit_rate"], 4),
                        "mean_batch_occupancy":
                            stats["batching"]["mean_occupancy"],
                        "cells_executed": stats["cells_executed"],
                        "dispatches": stats["dispatches"],
                    })
        print(f"\n[service] direct: {n / direct_wall:.1f} subs/s; "
              f"service: {n / service_wall:.1f} subs/s; "
              f"dedup hit rate {stats['dedup_hit_rate']:.2%}; "
              f"mean batch occupancy "
              f"{stats['batching']['mean_occupancy']:.1f}")

    def test_dedup_collapses_duplicate_submissions(self):
        _metrics, _wall, stats = run_service()
        assert stats["cells_executed"] == SWEEP_CELLS
        assert stats["cells_submitted"] == TENANTS * SWEEP_CELLS
        expected = (TENANTS - 1) * SWEEP_CELLS / (TENANTS * SWEEP_CELLS)
        assert stats["dedup_hit_rate"] >= expected
