"""Benchmarks of the executable recovery schemes and the simulation substrate.

E8/E9 — the runtime counterpart of the paper's trade-off discussion — plus
microbenchmarks of the hot substrate paths (event queue, model sampler, rollback
propagation) so performance regressions in the kernel are visible.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.rollback import propagate_rollback
from repro.experiments.strategy_comparison import run_strategy_comparison
from repro.markov.montecarlo import ModelSimulator
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.recovery.asynchronous import AsynchronousRuntime
from repro.recovery.pseudo import PseudoRecoveryPointRuntime
from repro.recovery.synchronized import SynchronizedRuntime
from repro.sim.engine import SimulationEngine
from repro.workloads.generators import homogeneous_workload, paper_table1_case


@pytest.mark.benchmark(group="runtimes")
def test_bench_strategy_comparison(benchmark):
    """E9 — the three schemes on the same workload (averaged replications)."""
    workload = homogeneous_workload(n=3, mu=1.0, lam=1.0, work=25.0,
                                    error_rate=0.04)
    result = benchmark.pedantic(run_strategy_comparison, args=(workload,),
                                kwargs=dict(replications=3, base_seed=7),
                                iterations=1, rounds=1)
    emit(result)
    assert result.row("synchronized").get("waiting_time") > 0.0
    assert result.row("asynchronous").get("peak_saved_states") >= \
        result.row("pseudo").get("peak_saved_states")


@pytest.mark.benchmark(group="runtimes")
@pytest.mark.parametrize("scheme,cls", [
    ("asynchronous", AsynchronousRuntime),
    ("pseudo", PseudoRecoveryPointRuntime),
    ("synchronized", SynchronizedRuntime),
])
def test_bench_single_runtime(benchmark, scheme, cls):
    """E8 — one full run of each scheme under fault injection."""
    workload = homogeneous_workload(n=3, mu=1.0, lam=1.0, work=30.0,
                                    error_rate=0.05)

    def run_once():
        return cls(workload, seed=3).run()

    report = benchmark.pedantic(run_once, iterations=1, rounds=3)
    assert report.completed


@pytest.mark.benchmark(group="substrate")
def test_bench_event_queue_throughput(benchmark):
    """Kernel microbenchmark: schedule/execute 20k timer events."""

    def run_events():
        engine = SimulationEngine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                engine.schedule(0.001, tick)

        engine.schedule(0.0, tick)
        engine.drain()
        return count[0]

    assert benchmark(run_events) == 20_000


@pytest.mark.benchmark(group="substrate")
def test_bench_model_sampler(benchmark):
    """Model-level Monte-Carlo sampling rate (intervals per call)."""
    simulator = ModelSimulator(paper_table1_case(1), seed=5)
    samples = benchmark.pedantic(simulator.sample_intervals, args=(1500,),
                                 iterations=1, rounds=3)
    assert samples.n_samples == 1500


@pytest.mark.benchmark(group="substrate")
def test_bench_phase_type_solution(benchmark):
    """Analytic pipeline: build the chain and compute E[X] + E[L_i] for n=3."""

    def solve():
        model = RecoveryLineIntervalModel(paper_table1_case(2),
                                          prefer_simplified=False)
        return model.mean_interval(), model.expected_rp_counts("all")

    mean, counts = benchmark(solve)
    assert mean == pytest.approx(3.231, abs=1e-3)


@pytest.mark.benchmark(group="substrate")
def test_bench_rollback_propagation(benchmark):
    """Rollback propagation over a long generated history."""
    history = ModelSimulator(paper_table1_case(1), seed=11).generate_history(300.0)
    failure_time = history.end_time

    result = benchmark(propagate_rollback, history, 0, failure_time)
    assert result.affected
