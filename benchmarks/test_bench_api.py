"""Facade dispatch overhead: `evaluate()` must cost ~nothing over the model.

The facade's value is declarative dispatch — spec parsing, engine
resolution, runner bookkeeping, result encoding.  None of that may tax the
actual numerics: the guard below pins the end-to-end `evaluate()` path to
within 5% of calling :class:`RecoveryLineIntervalModel` directly on the
same system (amortised over a batch of calls, since a single analytic solve
at n=6 costs only a few hundred microseconds).
"""

import time

import pytest

from repro.api import StudySpec, SystemSpec, evaluate
from repro.core.parameters import SystemParameters
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel

#: The guarded budget: facade time <= (1 + OVERHEAD_BUDGET) * direct time.
OVERHEAD_BUDGET = 0.05

#: System under test — big enough that the phase-type solve dominates
#: microseconds of Python dispatch, small enough to iterate quickly.
_N, _MU, _LAM = 7, 1.0, 1.0


#: Specs are frozen and reusable; the guard times `evaluate()` dispatch, not
#: spec construction (benchmarked separately below).  Both paths still build
#: their `SystemParameters` and model afresh on every call — with the
#: structure cache pinned OFF on both sides: a cached refill shrinks the
#: numerics to near nothing at n=7, and a dispatch/numerics *ratio* guard
#: only means something while the denominator is a real fresh build.
_SPEC = StudySpec(system=SystemSpec.symmetric(_N, _MU, _LAM),
                  metrics=("mean", "variance"),
                  options={"prefer_simplified": False,
                           "structure_cache": False})


def _direct_once() -> float:
    model = RecoveryLineIntervalModel(
        SystemParameters.symmetric(_N, _MU, _LAM), prefer_simplified=False,
        structure_cache=False)
    mean = model.mean_interval()
    variance = model.interval_variance()
    return mean + variance


def _facade_once() -> float:
    evaluation = evaluate(_SPEC, method="analytic")
    return evaluation.mean + evaluation.metrics["variance"]


def _timed(func, calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        func()
    return time.perf_counter() - start


def _paired_overhead(calls: int = 10, rounds: int = 11):
    """Median paired overhead fraction of the facade over the direct path.

    Each round times both paths back to back (order alternating per round,
    so drift cancels) and contributes one paired difference; the *median*
    over rounds discards the noise spikes a loaded machine injects, which
    min-of-rounds ratios are vulnerable to.  GC is paused so allocation
    pressure from earlier rounds cannot bill a collection to either side.
    """
    import gc
    import statistics
    directs, overheads = [], []
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for round_index in range(rounds):
            if round_index % 2 == 0:
                direct = _timed(_direct_once, calls)
                facade = _timed(_facade_once, calls)
            else:
                facade = _timed(_facade_once, calls)
                direct = _timed(_direct_once, calls)
            directs.append(direct)
            overheads.append(facade - direct)
    finally:
        if gc_was_enabled:
            gc.enable()
    return statistics.median(overheads) / statistics.median(directs)


@pytest.mark.slow
def test_facade_dispatch_overhead_under_budget():
    """Acceptance guard: evaluate() ≤ 5% over direct model calls.

    Wall-clock measurements are noise-prone on loaded machines, so the
    guard is slow-marked (nightly CI, not the per-push smoke pass), uses a
    paired-median estimator, and re-measures once before declaring a
    regression.
    """
    assert _facade_once() == _direct_once()      # same numbers, first of all
    _timed(_facade_once, 3)                      # warm caches/imports
    overhead = _paired_overhead()
    if overhead > OVERHEAD_BUDGET:
        overhead = _paired_overhead(rounds=21)
    assert overhead <= OVERHEAD_BUDGET, (
        f"facade dispatch overhead {overhead:+.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} over direct model calls")


@pytest.mark.benchmark(group="api-facade")
def test_bench_evaluate_analytic(benchmark):
    """Absolute facade cost per analytic evaluation (n=6 full chain)."""
    benchmark.pedantic(_facade_once, iterations=5, rounds=5)


@pytest.mark.benchmark(group="api-facade")
def test_bench_direct_model(benchmark):
    """Baseline: the same numbers straight from the model."""
    benchmark.pedantic(_direct_once, iterations=5, rounds=5)


@pytest.mark.benchmark(group="api-facade")
def test_bench_spec_construction(benchmark):
    """Cost of declaring a spec (validation + canonical normalisation)."""

    def build():
        return StudySpec(system=SystemSpec.symmetric(_N, _MU, _LAM),
                         metrics=("mean", "variance"),
                         options={"prefer_simplified": False,
                                  "structure_cache": False})

    assert benchmark(build) == _SPEC


@pytest.mark.benchmark(group="api-facade")
def test_bench_spec_canonical_key(benchmark):
    """Spec hashing cost (the store-addressing hot path of big sweeps)."""
    spec = StudySpec(system=SystemSpec.symmetric(8, 1.0, 0.5),
                     metrics=("mean", "variance", "rp_counts"),
                     reps=20_000, seed=7)
    key = benchmark(spec.canonical_key)
    assert len(key) == 64
