"""The persistent perf trajectory: measure, pin bit-identity, guard.

Every test here runs one of the two acceptance workloads of
``bench_workloads`` end to end and asserts the results are bit-for-bit the
committed pre-optimization snapshot — the correctness half runs on every
invocation (PR smoke included).  The perf half is opt-in via environment:

``REPRO_BENCH_RECORD=1``
    append the measured wall time to ``BENCH_<area>.json`` at the repo root
    (or ``$REPRO_BENCH_DIR``) through :mod:`repro.bench`.
``REPRO_BENCH_GUARD=1``
    fail when throughput drops more than :data:`GUARD_TOLERANCE` below the
    latest trajectory entry recorded *on this machine* (cross-machine wall
    times are not comparable; with no same-machine baseline the guard
    skips — the recording run seeds it).

The nightly CI job sets both, persisting the trajectory between nights, so
a regression against the previous night fails the build.  To refresh the
committed baseline after an intentional perf change, run::

    REPRO_BENCH_RECORD=1 python -m pytest benchmarks/test_bench_trajectory.py -q

and commit the rewritten ``BENCH_*.json``.
"""

import json
import os
import pickle
import time

import pytest

from bench_workloads import (ANALYTIC_SPEC, STRATEGY_REPS_PER_CELL,
                             STRATEGY_SPEC, hexify)

from repro import bench
from repro.api import StudySpec
from repro.api.evaluators import get_evaluator
from repro.api.facade import evaluate_in_context
from repro.api.strategy import StrategyEvaluator
from repro.markov.structure_cache import cache_info, clear_structure_cache
from repro.runner import ExecutionContext

#: Allowed throughput drop vs. the latest same-machine trajectory entry.
GUARD_TOLERANCE = 0.25

SNAPSHOT_DIR = os.path.join(os.path.dirname(__file__), "snapshots")

RECORDING = bool(os.environ.get("REPRO_BENCH_RECORD"))
GUARDING = bool(os.environ.get("REPRO_BENCH_GUARD"))


def load_snapshot(name):
    with open(os.path.join(SNAPSHOT_DIR, name), "r", encoding="utf-8") as fh:
        return json.load(fh)


#: Timed repetitions per sweep; the recorded wall is the best of these.
#: A single shot is at the mercy of machine drift, which at the guard's
#: tolerance would flag noise as regression.
BENCH_REPEATS = 3


def run_sweep(spec_dict, method, prepare=None):
    """The acceptance sweep through the facade's in-context path, timed.

    Runs :data:`BENCH_REPEATS` times (calling *prepare* before each timed
    run) and returns the first run's metrics with the best wall time; the
    determinism contract makes every repeat's metrics identical.
    """
    spec = StudySpec.from_dict(spec_dict)
    cells = list(spec.cells())
    metrics, wall = None, float("inf")
    for _ in range(BENCH_REPEATS):
        if prepare is not None:
            prepare()
        start = time.perf_counter()
        evaluations = evaluate_in_context(ExecutionContext(seed=spec.seed),
                                          cells, method=method)
        wall = min(wall, time.perf_counter() - start)
        if metrics is None:
            metrics = [e.metrics for e in evaluations]
    return metrics, wall


def check_guard(area, op, wall, n):
    """Record and/or guard this measurement, per the environment toggles."""
    baseline = bench.latest(area, op, same_machine=True)
    if RECORDING:
        bench.record(area, op, n, wall,
                     unit="replications" if area == "strategy" else "cells",
                     note="nightly trajectory run")
    if not GUARDING:
        return
    if baseline is None:
        pytest.skip(f"no {area}/{op} trajectory entry for this machine yet; "
                    "this run seeds it" if RECORDING else
                    f"no same-machine baseline for {area}/{op} and "
                    "REPRO_BENCH_RECORD is off")
    throughput = n / wall
    floor = baseline["throughput"] * (1.0 - GUARD_TOLERANCE)
    assert throughput >= floor, (
        f"{area}/{op} throughput regressed: {throughput:.1f}/s vs the "
        f"recorded {baseline['throughput']:.1f}/s "
        f"(tolerance {GUARD_TOLERANCE:.0%}, recorded "
        f"{baseline['timestamp']} at version {baseline['code_version']})")


class TestStrategySweepTrajectory:
    def test_bit_identity_and_throughput(self):
        metrics, wall = run_sweep(STRATEGY_SPEC, "strategy")
        snapshot = load_snapshot("strategy_sweep.json")
        assert hexify(metrics) == snapshot["metrics_hex"], (
            "strategy sweep results drifted from the pinned pre-optimization "
            "snapshot — the chunked replication path broke bit-identity")
        n_reps = snapshot["n_cells"] * STRATEGY_REPS_PER_CELL
        check_guard("strategy", "strategy_sweep_3schemes_x4lam", wall, n_reps)


class TestAnalyticSweepTrajectory:
    def test_bit_identity_and_throughput(self):
        # Clearing before every timed repeat keeps the measured work
        # identical: one structural miss + 99 value refills per sweep.
        metrics, wall = run_sweep(ANALYTIC_SPEC, "analytic",
                                  prepare=clear_structure_cache)
        snapshot = load_snapshot("analytic_sweep.json")
        assert hexify(metrics) == snapshot["metrics_hex"], (
            "analytic sweep results drifted from the pinned pre-optimization "
            "snapshot — the structure-cached assembly broke bit-identity")
        # A rates-only sweep shares one structure: 1 miss, 99 refills.
        info = cache_info()
        assert info["misses"] == 1 and info["hits"] == snapshot["n_cells"] - 1
        check_guard("analytic", "analytic_sweep_rates_only_100cells_n9",
                    wall, snapshot["n_cells"])


class TestPayloadDedup:
    """The chunked task layout pays one system dict per chunk, not per rep."""

    def test_chunked_pickle_smaller_than_per_rep(self):
        spec = StudySpec.from_dict(STRATEGY_SPEC)
        cells = list(spec.cells())
        evaluator = get_evaluator("strategy")
        assert isinstance(evaluator, StrategyEvaluator)
        chunked, _ = evaluator.cell_tasks(cells, ExecutionContext(seed=spec.seed))
        per_rep, _ = evaluator.cell_tasks(_with_rep_chunk(cells, 1),
                                          ExecutionContext(seed=spec.seed))
        # One dumps per task, the way a process pool actually ships them —
        # pickling the whole list at once would memoize the shared dicts and
        # hide the per-task payload cost.
        chunked_bytes = sum(len(pickle.dumps(t)) for t in chunked)
        per_rep_bytes = sum(len(pickle.dumps(t)) for t in per_rep)
        assert len(per_rep) > len(chunked)
        assert chunked_bytes < per_rep_bytes / 2, (
            f"chunked payload {chunked_bytes}B should undercut the "
            f"one-task-per-rep layout {per_rep_bytes}B by at least 2x")
        print(f"\n[payload] chunked: {len(chunked)} tasks, {chunked_bytes} B; "
              f"one-per-rep: {len(per_rep)} tasks, {per_rep_bytes} B")

    def test_chunks_share_one_system_dict_per_cell(self):
        spec = StudySpec.from_dict(STRATEGY_SPEC)
        cells = list(spec.cells())
        evaluator = get_evaluator("strategy")
        ctx = ExecutionContext(seed=spec.seed)
        tasks, bounds = evaluator.cell_tasks(cells, ctx)
        for lo, hi in zip(bounds, bounds[1:]):
            systems = {id(task.system) for task in tasks[lo:hi]}
            assert len(systems) == 1, "chunks of one cell must share the dict"


def _with_rep_chunk(cells, chunk):
    """Copies of *cells* carrying ``options.rep_chunk = chunk``."""
    from dataclasses import replace
    return [replace(c, options={**dict(c.options), "rep_chunk": chunk})
            for c in cells]
