"""Interaction-pattern builders.

The analytic model only needs the pairwise rate matrix ``λ_ij``; real workloads
rarely interact all-to-all, so these helpers build the rate matrices of common
topologies.  Every function returns an ``n × n`` symmetric matrix with zero
diagonal, directly usable as ``SystemParameters.lam``.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_non_negative

__all__ = ["all_pairs_rates", "ring_rates", "producer_consumer_rates", "star_rates"]


def _empty(n: int) -> np.ndarray:
    if n < 1:
        raise ValueError("need at least one process")
    return np.zeros((int(n), int(n)))


def all_pairs_rates(n: int, rate: float) -> np.ndarray:
    """Every pair of processes interacts at the same rate (the paper's default)."""
    check_non_negative(rate, "rate")
    matrix = np.full((int(n), int(n)), float(rate))
    np.fill_diagonal(matrix, 0.0)
    return matrix


def ring_rates(n: int, rate: float) -> np.ndarray:
    """Each process interacts only with its two ring neighbours."""
    check_non_negative(rate, "rate")
    matrix = _empty(n)
    if n < 2:
        return matrix
    for i in range(n):
        j = (i + 1) % n
        if i != j:
            matrix[i, j] = matrix[j, i] = float(rate)
    return matrix


def producer_consumer_rates(n: int, rate: float) -> np.ndarray:
    """A pipeline: process ``i`` exchanges data with ``i+1`` only (open chain).

    Russell's producer/consumer systems (reference [13] of the paper) have this
    topology; rollback propagation along a chain is the classic domino example.
    """
    check_non_negative(rate, "rate")
    matrix = _empty(n)
    for i in range(int(n) - 1):
        matrix[i, i + 1] = matrix[i + 1, i] = float(rate)
    return matrix


def star_rates(n: int, rate: float, hub: int = 0) -> np.ndarray:
    """A coordinator (``hub``) interacts with every worker; workers never directly."""
    check_non_negative(rate, "rate")
    matrix = _empty(n)
    if not (0 <= hub < n):
        raise ValueError("hub out of range")
    for i in range(int(n)):
        if i != hub:
            matrix[hub, i] = matrix[i, hub] = float(rate)
    return matrix
