"""Process behaviour models.

The recovery block is "a sequential program structure that consists of an
acceptance test, a recovery point and alternative algorithms" (Section 1).  This
package models that structure:

* :mod:`~repro.processes.program` — recovery-block specifications (primary +
  alternates) and their simulated execution;
* :mod:`~repro.processes.acceptance` — acceptance-test models (perfect, as assumed
  in Section 2.1, and imperfect variants with bounded coverage);
* :mod:`~repro.processes.communication` — interaction-pattern builders (all-pairs,
  ring, producer/consumer, star) that produce the pairwise rate matrices consumed
  by :class:`~repro.core.parameters.SystemParameters`.
"""

from repro.processes.program import Alternate, RecoveryBlockSpec, RecoveryBlockExecutor, BlockOutcome
from repro.processes.acceptance import AcceptanceTestModel, PerfectAcceptanceTest, CoverageAcceptanceTest
from repro.processes.communication import (
    all_pairs_rates,
    ring_rates,
    producer_consumer_rates,
    star_rates,
)

__all__ = [
    "Alternate",
    "RecoveryBlockSpec",
    "RecoveryBlockExecutor",
    "BlockOutcome",
    "AcceptanceTestModel",
    "PerfectAcceptanceTest",
    "CoverageAcceptanceTest",
    "all_pairs_rates",
    "ring_rates",
    "producer_consumer_rates",
    "star_rates",
]
