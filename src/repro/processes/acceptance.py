"""Acceptance-test models.

Assumption 2 of Section 2.1: acceptance tests detect *all* errors local to the
process ("perfect acceptance test") but "may or may not detect external errors or
erroneous messages".  The models here encode exactly that split: a detection
probability for locally originated errors and another for contamination received
from other processes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_probability

__all__ = ["AcceptanceTestModel", "PerfectAcceptanceTest", "CoverageAcceptanceTest"]


class AcceptanceTestModel(abc.ABC):
    """Decides whether an acceptance test flags the current process state."""

    @abc.abstractmethod
    def detects(self, *, has_local_error: bool, has_external_error: bool,
                rng: np.random.Generator) -> bool:
        """Return True when the test rejects the state (an error is flagged)."""

    def false_alarm(self, rng: np.random.Generator) -> bool:
        """Whether the test rejects a perfectly good state (default: never)."""
        return False


@dataclass(frozen=True)
class PerfectAcceptanceTest(AcceptanceTestModel):
    """The paper's baseline: every local error is caught, external ones too.

    ``external_detection`` tunes the "may or may not" clause for errors that were
    propagated from another process; 1.0 (the default) is the most favourable case.
    """

    external_detection: float = 1.0

    def __post_init__(self) -> None:
        check_probability(self.external_detection, "external_detection")

    def detects(self, *, has_local_error: bool, has_external_error: bool,
                rng: np.random.Generator) -> bool:
        if has_local_error:
            return True
        if has_external_error:
            return bool(rng.random() < self.external_detection)
        return False


@dataclass(frozen=True)
class CoverageAcceptanceTest(AcceptanceTestModel):
    """Imperfect acceptance test with independent detection coverages.

    Used by the sensitivity experiments: lowering ``local_coverage`` below 1 lets
    contaminated recovery points be saved, which lengthens rollbacks — the effect
    the paper's "perfect acceptance test" assumption deliberately excludes.
    """

    local_coverage: float = 1.0
    external_coverage: float = 0.5
    false_alarm_probability: float = 0.0

    def __post_init__(self) -> None:
        check_probability(self.local_coverage, "local_coverage")
        check_probability(self.external_coverage, "external_coverage")
        check_probability(self.false_alarm_probability, "false_alarm_probability")

    def detects(self, *, has_local_error: bool, has_external_error: bool,
                rng: np.random.Generator) -> bool:
        if has_local_error and rng.random() < self.local_coverage:
            return True
        if has_external_error and rng.random() < self.external_coverage:
            return True
        return False

    def false_alarm(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.false_alarm_probability)
