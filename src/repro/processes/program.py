"""Recovery-block program structure: primary, alternates, acceptance test.

Horning/Randell's recovery block is::

    ensure <acceptance test>
    by     <primary alternate>
    else by <alternate 2>
    ...
    else error

A :class:`RecoveryBlockSpec` captures this structure symbolically (each alternate is
characterised by its execution-time factor and its probability of producing an
acceptable result); :class:`RecoveryBlockExecutor` simulates one execution of the
block — including local retries with the alternates — and reports the outcome and
the total time consumed.  The concurrent-process runtimes use the executor at every
recovery-block boundary; the *inter-process* consequences of a failed block
(rollback propagation) are handled by :mod:`repro.recovery`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.validation import check_positive, check_probability

__all__ = ["Alternate", "RecoveryBlockSpec", "BlockOutcome", "RecoveryBlockExecutor"]


@dataclass(frozen=True)
class Alternate:
    """One alternate algorithm of a recovery block.

    Attributes
    ----------
    name:
        Label for reports.
    duration_factor:
        Execution time of this alternate relative to the primary's nominal
        duration (the primary usually has factor 1.0; degraded alternates are often
        faster but less capable).
    success_probability:
        Probability that this alternate's result passes the acceptance test when
        the process state it starts from is not contaminated.
    """

    name: str
    duration_factor: float = 1.0
    success_probability: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.duration_factor, "duration_factor")
        check_probability(self.success_probability, "success_probability")


@dataclass(frozen=True)
class RecoveryBlockSpec:
    """A recovery block: an ordered list of alternates plus acceptance-test data.

    The default spec has a single always-successful primary, which matches the
    Section 2.1 assumptions (the analytic models do not charge for alternate
    retries); richer specs are used by the runtime experiments and examples.
    """

    alternates: Tuple[Alternate, ...] = (Alternate(name="primary"),)
    local_retry_cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.alternates:
            raise ValueError("a recovery block needs at least one alternate")
        if self.local_retry_cost < 0.0:
            raise ValueError("local_retry_cost must be non-negative")
        object.__setattr__(self, "alternates", tuple(self.alternates))

    @classmethod
    def with_alternates(cls, n_alternates: int, *, primary_success: float = 0.98,
                        alternate_success: float = 0.9,
                        alternate_slowdown: float = 0.7,
                        local_retry_cost: float = 0.0) -> "RecoveryBlockSpec":
        """Convenience builder for a primary plus ``n_alternates - 1`` degraded ones."""
        if n_alternates < 1:
            raise ValueError("need at least one alternate")
        alternates: List[Alternate] = [Alternate(name="primary",
                                                 success_probability=primary_success)]
        for k in range(1, n_alternates):
            alternates.append(Alternate(name=f"alternate-{k}",
                                        duration_factor=alternate_slowdown,
                                        success_probability=alternate_success))
        return cls(alternates=tuple(alternates), local_retry_cost=local_retry_cost)

    @property
    def depth(self) -> int:
        return len(self.alternates)


class BlockOutcome:
    """Result of executing one recovery block.

    Hand-written (``__slots__`` + plain ``__init__``) instead of a frozen
    dataclass: one outcome is created per simulated block execution, and the
    generated frozen initialiser's per-field ``object.__setattr__`` shows up in
    replication-sweep profiles.  Treated as immutable by convention.
    """

    __slots__ = ("passed", "alternate_used", "elapsed", "attempts",
                 "detected_contamination")

    def __init__(self, passed: bool, alternate_used: int, elapsed: float,
                 attempts: int, detected_contamination: bool) -> None:
        self.passed = passed
        self.alternate_used = alternate_used   # index into alternates, -1 if exhausted
        self.elapsed = elapsed                 # total simulated time consumed
        self.attempts = attempts               # number of alternates tried
        self.detected_contamination = detected_contamination

    def __eq__(self, other: object) -> bool:
        if other.__class__ is BlockOutcome:
            return (self.passed == other.passed
                    and self.alternate_used == other.alternate_used
                    and self.elapsed == other.elapsed
                    and self.attempts == other.attempts
                    and self.detected_contamination == other.detected_contamination)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"BlockOutcome(passed={self.passed!r}, "
                f"alternate_used={self.alternate_used!r}, "
                f"elapsed={self.elapsed!r}, attempts={self.attempts!r}, "
                f"detected_contamination={self.detected_contamination!r})")

    @property
    def exhausted(self) -> bool:
        """True when every alternate failed — the block raises an error upwards."""
        return not self.passed


class RecoveryBlockExecutor:
    """Simulates executions of a :class:`RecoveryBlockSpec`.

    Parameters
    ----------
    spec:
        The block structure.
    rng:
        Random generator used for alternate success draws.
    """

    def __init__(self, spec: RecoveryBlockSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng
        self._executions = 0
        self._alternate_uses = [0] * spec.depth
        self._failures = 0
        # Uniform draws served from a pre-sampled block: the executor owns its
        # generator exclusively, and ``rng.random(size=k)`` consumes the
        # bitstream exactly like k successive scalar draws, so the values are
        # identical to unbuffered operation — only the per-draw numpy dispatch
        # overhead goes away.
        self._uniforms: list = []
        self._uniform_pos = 0

    def _random(self) -> float:
        pos = self._uniform_pos
        buf = self._uniforms
        if pos >= len(buf):
            # tolist() yields the exact same values as scalar draws, already
            # unboxed to Python floats.
            buf = self.rng.random(64).tolist()
            self._uniforms = buf
            pos = 0
        self._uniform_pos = pos + 1
        return buf[pos]

    # ------------------------------------------------------------------ execution
    def execute(self, nominal_duration: float, *,
                state_contaminated: bool = False,
                detect_contamination_probability: float = 1.0) -> BlockOutcome:
        """Execute the block once.

        Parameters
        ----------
        nominal_duration:
            Nominal (primary) execution time of the block body.
        state_contaminated:
            Whether the process state entering the block carries an undetected
            error (local fault or contamination received through a message).  A
            contaminated state cannot produce an acceptable result: the best the
            block can do is *detect* the problem at its acceptance test.
        detect_contamination_probability:
            Probability that the acceptance test flags the contaminated result
            (assumption 2 of Section 2.1 makes this 1.0 for local errors; external
            errors "may or may not" be detected).
        """
        # Inlined check_positive / check_probability (one block execution per
        # simulated boundary makes the helper frames measurable): a float is
        # finite and positive iff 0 < v < inf, and NaN fails both chains.
        if not 0.0 < nominal_duration < math.inf:
            raise ValueError("nominal_duration must be a finite positive "
                             f"number, got {nominal_duration!r}")
        if not 0.0 <= detect_contamination_probability <= 1.0:
            raise ValueError("detect_contamination_probability must lie in "
                             f"[0, 1], got {detect_contamination_probability!r}")
        self._executions += 1
        elapsed = 0.0
        attempts = 0

        if state_contaminated:
            # The primary runs, the acceptance test then either flags the bad state
            # or erroneously accepts it; alternates cannot help because the *input*
            # state is bad, not the algorithm.
            elapsed += nominal_duration * self.spec.alternates[0].duration_factor
            attempts = 1
            detected = bool(self._random() < detect_contamination_probability)
            if detected:
                self._failures += 1
            return BlockOutcome(passed=not detected, alternate_used=0,
                                elapsed=elapsed, attempts=attempts,
                                detected_contamination=detected)

        for idx, alternate in enumerate(self.spec.alternates):
            attempts += 1
            elapsed += nominal_duration * alternate.duration_factor
            if idx > 0:
                elapsed += self.spec.local_retry_cost
            if self._random() < alternate.success_probability:
                self._alternate_uses[idx] += 1
                return BlockOutcome(passed=True, alternate_used=idx, elapsed=elapsed,
                                    attempts=attempts, detected_contamination=False)
        self._failures += 1
        return BlockOutcome(passed=False, alternate_used=-1, elapsed=elapsed,
                            attempts=attempts, detected_contamination=False)

    # ------------------------------------------------------------------ statistics
    @property
    def executions(self) -> int:
        return self._executions

    @property
    def failures(self) -> int:
        """Executions in which every alternate failed or contamination was flagged."""
        return self._failures

    def alternate_usage(self) -> List[int]:
        """How many successful executions each alternate provided."""
        return list(self._alternate_uses)

    def expected_elapsed(self, nominal_duration: float) -> float:
        """Analytic mean time of a clean execution of the block.

        Derived from the geometric structure of alternate retries; used by tests to
        cross-check the sampled behaviour.
        """
        expected = 0.0
        prob_reach = 1.0
        for idx, alternate in enumerate(self.spec.alternates):
            step = nominal_duration * alternate.duration_factor
            if idx > 0:
                step += self.spec.local_retry_cost
            expected += prob_reach * step
            prob_reach *= (1.0 - alternate.success_probability)
        return expected
