"""Seeded random-number streams for reproducible simulations.

Each logical source of randomness (per-process recovery-point timers, per-pair
interaction timers, fault injection, …) gets its own independent child generator
spawned from a single root seed, so that changing the amount of randomness one
component consumes does not perturb the others — the standard variance-reduction
hygiene for discrete-event simulation studies.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["RandomStreams"]


def _stable_digest(name: str) -> int:
    """Deterministic 32-bit digest of a stream name.

    ``hash()`` is randomised per interpreter process (PYTHONHASHSEED), which would
    silently break cross-run reproducibility of seeded simulations; CRC32 is stable.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class RandomStreams:
    """A family of named, independent random generators derived from one seed."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed_seq = np.random.SeedSequence(seed)
        self._root = np.random.default_rng(self._seed_seq)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root(self) -> np.random.Generator:
        """The root generator (use sparingly; prefer named streams)."""
        return self._root

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the named independent stream.

        The stream is derived deterministically from the root seed and the name, so
        the same name always yields the same sequence for a given root seed.
        """
        if name not in self._streams:
            # Derive a child seed from the name so stream identity is stable even
            # if creation order changes between runs.  The parent's own spawn key is
            # included so that spawned families stay independent of each other.
            digest = _stable_digest(name)
            child = np.random.SeedSequence(entropy=self._seed_seq.entropy,
                                           spawn_key=tuple(self._seed_seq.spawn_key)
                                           + (digest,))
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    # ------------------------------------------------------------------ helpers
    def exponential(self, name: str, rate: float) -> float:
        """One exponential variate with the given *rate* from the named stream."""
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        return float(self.stream(name).exponential(1.0 / rate))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def choice(self, name: str, options: Sequence, p: Optional[Sequence[float]] = None):
        """Pick one element of *options* (optionally weighted)."""
        idx = int(self.stream(name).choice(len(options), p=p))
        return options[idx]

    def bernoulli(self, name: str, probability: float) -> bool:
        if not (0.0 <= probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        return bool(self.stream(name).random() < probability)

    def spawn(self, name: str) -> "RandomStreams":
        """Create an independent sub-family (e.g. one per replication)."""
        digest = _stable_digest(f"spawn::{name}")
        child = RandomStreams.__new__(RandomStreams)
        child._seed_seq = np.random.SeedSequence(entropy=self._seed_seq.entropy,
                                                 spawn_key=(digest, 1))
        child._root = np.random.default_rng(child._seed_seq)
        child._streams = {}
        return child
