"""Seeded random-number streams for reproducible simulations.

Each logical source of randomness (per-process recovery-point timers, per-pair
interaction timers, fault injection, …) gets its own independent child generator
spawned from a single root seed, so that changing the amount of randomness one
component consumes does not perturb the others — the standard variance-reduction
hygiene for discrete-event simulation studies.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["RandomStreams"]

#: Variates pre-drawn per named stream by the buffered helpers below.  A
#: vectorised ``Generator.exponential(scale, size=k)`` (or ``random(size=k)``)
#: consumes the underlying bitstream exactly like ``k`` successive scalar
#: draws and returns the same values, so serving calls from a buffer changes
#: no results — it only removes the per-call numpy dispatch overhead.  Any
#: bitstream over-consumed at the end of a run is harmless because every
#: named stream is independent and is never read by anything else.
_BUFFER_SIZE = 64


def _stable_digest(name: str) -> int:
    """Deterministic 32-bit digest of a stream name.

    ``hash()`` is randomised per interpreter process (PYTHONHASHSEED), which would
    silently break cross-run reproducibility of seeded simulations; CRC32 is stable.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class RandomStreams:
    """A family of named, independent random generators derived from one seed."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed_seq = np.random.SeedSequence(seed)
        self._root = np.random.default_rng(self._seed_seq)
        self._streams: Dict[str, np.random.Generator] = {}
        # name -> [scale, values, next position] / [values, next position] /
        # [(param, param), values, next position].
        self._exp_buffers: Dict[str, List] = {}
        self._uniform_buffers: Dict[str, List] = {}
        self._law_buffers: Dict[str, List] = {}

    @property
    def root(self) -> np.random.Generator:
        """The root generator (use sparingly; prefer named streams)."""
        return self._root

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the named independent stream.

        The stream is derived deterministically from the root seed and the name, so
        the same name always yields the same sequence for a given root seed.
        """
        if name not in self._streams:
            # Derive a child seed from the name so stream identity is stable even
            # if creation order changes between runs.  The parent's own spawn key is
            # included so that spawned families stay independent of each other.
            digest = _stable_digest(name)
            child = np.random.SeedSequence(entropy=self._seed_seq.entropy,
                                           spawn_key=tuple(self._seed_seq.spawn_key)
                                           + (digest,))
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    # ------------------------------------------------------------------ helpers
    def exponential(self, name: str, rate: float) -> float:
        """One exponential variate with the given *rate* from the named stream.

        Draws are served from a pre-sampled buffer (see :data:`_BUFFER_SIZE`),
        which requires the rate of a named stream to stay constant — the
        schedulers all use one name per (process/pair, rate) source, so this
        holds by construction.  A changed rate raises rather than silently
        returning variates drawn at the old scale.
        """
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        scale = 1.0 / rate
        buf = self._exp_buffers.get(name)
        if buf is None:
            # tolist() converts the float64 block to Python floats exactly
            # (same bits); per-draw indexing then skips numpy scalar boxing.
            buf = [scale,
                   self.stream(name).exponential(scale, _BUFFER_SIZE).tolist(), 0]
            self._exp_buffers[name] = buf
        elif buf[0] != scale:
            raise ValueError(
                f"stream {name!r} was buffered at rate {1.0 / buf[0]}, got "
                f"{rate}; buffered exponential streams need a constant rate "
                "per name — use one stream name per rate source")
        elif buf[2] >= _BUFFER_SIZE:
            buf[1] = self.stream(name).exponential(scale, _BUFFER_SIZE).tolist()
            buf[2] = 0
        value = buf[1][buf[2]]
        buf[2] += 1
        return value

    def _law_variate(self, name: str, params, sampler) -> float:
        """Serve one variate of a pinned-parameter law from a named buffer.

        Shared machinery of :meth:`weibull` and :meth:`lognormal`: like
        :meth:`exponential`, the distribution parameters of a named stream are
        pinned at first use and a change raises instead of silently serving
        variates drawn under the old parameters.
        """
        buf = self._law_buffers.get(name)
        if buf is None:
            buf = [params, sampler(self.stream(name), _BUFFER_SIZE).tolist(), 0]
            self._law_buffers[name] = buf
        elif buf[0] != params:
            raise ValueError(
                f"stream {name!r} was buffered with parameters {buf[0]}, got "
                f"{params}; buffered law streams need constant parameters per "
                "name — use one stream name per source")
        elif buf[2] >= _BUFFER_SIZE:
            buf[1] = sampler(self.stream(name), _BUFFER_SIZE).tolist()
            buf[2] = 0
        value = buf[1][buf[2]]
        buf[2] += 1
        return value

    def weibull(self, name: str, shape: float, scale: float) -> float:
        """One Weibull(*shape*, *scale*) variate from the named stream.

        Buffered like :meth:`exponential`; the variate is
        ``scale · Generator.weibull(shape)``, identical bit-for-bit to the
        scalar numpy draw sequence.
        """
        if shape <= 0.0 or scale <= 0.0:
            raise ValueError("shape and scale must be positive")
        return self._law_variate(
            name, ("weibull", float(shape), float(scale)),
            lambda rng, k: rng.weibull(shape, k) * scale)

    def lognormal(self, name: str, mu: float, sigma: float) -> float:
        """One lognormal variate (log-mean *mu*, log-sd *sigma*), buffered."""
        if sigma <= 0.0:
            raise ValueError("sigma must be positive")
        return self._law_variate(
            name, ("lognormal", float(mu), float(sigma)),
            lambda rng, k: rng.lognormal(mu, sigma, k))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def choice(self, name: str, options: Sequence, p: Optional[Sequence[float]] = None):
        """Pick one element of *options* (optionally weighted)."""
        idx = int(self.stream(name).choice(len(options), p=p))
        return options[idx]

    def bernoulli(self, name: str, probability: float) -> bool:
        # Buffered like the exponential helper; the uniforms do not depend on
        # the probability, so it is free to vary between calls.
        if not (0.0 <= probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        buf = self._uniform_buffers.get(name)
        if buf is None or buf[1] >= _BUFFER_SIZE:
            buf = [self.stream(name).random(_BUFFER_SIZE).tolist(), 0]
            self._uniform_buffers[name] = buf
        value = buf[0][buf[1]]
        buf[1] += 1
        return value < probability

    def spawn(self, name: str) -> "RandomStreams":
        """Create an independent sub-family (e.g. one per replication)."""
        digest = _stable_digest(f"spawn::{name}")
        child = RandomStreams.__new__(RandomStreams)
        child._seed_seq = np.random.SeedSequence(entropy=self._seed_seq.entropy,
                                                 spawn_key=(digest, 1))
        child._root = np.random.default_rng(child._seed_seq)
        child._streams = {}
        child._exp_buffers = {}
        child._uniform_buffers = {}
        child._law_buffers = {}
        return child
