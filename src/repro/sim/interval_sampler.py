"""Recovery-line interval sampling on the discrete-event kernel.

:class:`DESIntervalSampler` estimates the same observable as the analytic
chain and the batched :class:`~repro.markov.montecarlo.ModelSimulator` — the
interval ``X`` between successive recovery lines and the per-process
recovery-point counts — but does it the discrete-event way: per-process
recovery-point timers and per-pair interaction timers are scheduled on a
:class:`~repro.sim.engine.SimulationEngine`, each drawing from its own named
:class:`~repro.sim.random_streams.RandomStreams` stream (the variance-
reduction hygiene of the runtime layer), and the recovery-line condition is
tracked per event exactly as the Markov model defines it: a line forms when
every process's most recent action is a recovery point.

Because the exponential timers are memoryless, the sampled law is identical
to the CTMC's — the estimates converge to the phase-type results, which is
what the ``des`` engine of :mod:`repro.api` relies on.  The RNG layout
(per-stream, not per-event-batch) differs from :class:`ModelSimulator`, so
the two samplers give *independent* stochastic cross-checks of the same
distribution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.parameters import SystemParameters
from repro.markov.montecarlo import SimulatedIntervals
from repro.sim.engine import SimulationEngine
from repro.sim.random_streams import RandomStreams

__all__ = ["DESIntervalSampler"]


class DESIntervalSampler:
    """Sample inter-recovery-line intervals with the discrete-event engine.

    Parameters
    ----------
    params:
        System parameters (``μ_i``, ``λ_ij``) — the same object the analytic
        model and the Monte-Carlo sampler consume.
    seed:
        Root seed for the named random streams (``rp.<i>`` per process,
        ``interaction.<i>.<j>`` per pair).  Runs with the same seed are
        bit-for-bit reproducible.
    max_events_per_interval:
        Safety valve against parameterisations whose intervals never close.
    failure_law / failure_shape:
        Recovery-point interarrival law.  The default ``exponential`` is the
        memoryless model above, bit-identical to what this sampler always
        produced.  ``weibull``/``lognormal`` make the per-process timers a
        renewal process of that law with mean ``1/μ_i`` (drawn from the same
        named ``rp.<i>`` streams via the buffered law helpers); every timer
        is redrawn when a recovery line forms.  Pending timers superseded by
        such a reset are retired by an epoch counter — a stale event no-ops —
        rather than by engine-level cancellation, which keeps the hot path
        allocation-free.
    """

    def __init__(self, params: SystemParameters, seed: Optional[int] = None,
                 max_events_per_interval: int = 10_000_000,
                 failure_law: str = "exponential",
                 failure_shape: Optional[float] = None) -> None:
        if max_events_per_interval < 1:
            raise ValueError("max_events_per_interval must be >= 1")
        if failure_law not in ("exponential", "weibull", "lognormal"):
            raise ValueError(f"unknown failure law {failure_law!r}")
        if failure_law != "exponential" and not (failure_shape or 0) > 0:
            raise ValueError(f"failure_law {failure_law!r} needs a positive "
                             "failure_shape")
        self.params = params
        self.streams = RandomStreams(seed)
        self.max_events_per_interval = int(max_events_per_interval)
        self.failure_law = failure_law
        self.failure_shape = None if failure_shape is None \
            else float(failure_shape)

    # ------------------------------------------------------------------ sampling
    def sample_intervals(self, n_intervals: int) -> SimulatedIntervals:
        """Run the event loop until *n_intervals* recovery lines have formed."""
        if n_intervals < 1:
            raise ValueError("need at least one interval")
        params = self.params
        n = params.n
        full_mask = (1 << n) - 1
        pairs = [(i, j, params.pair_rate(i, j))
                 for i in range(n) for j in range(i + 1, n)
                 if params.pair_rate(i, j) > 0.0]
        if float(params.mu.sum()) <= 0.0 and not pairs:
            raise ValueError("the system has no events (all rates zero)")

        engine = SimulationEngine()
        lengths = np.empty(n_intervals)
        counts = np.zeros((n_intervals, n), dtype=np.int64)
        completing = np.empty(n_intervals, dtype=np.int64)

        # Mutable event-loop state, boxed so the scheduled callbacks share it.
        state = {
            "mask": full_mask,          # bit i set: last action of P_i is an RP
            "row": [0] * n,
            "collected": 0,
            "interval_start": 0.0,
            "events": 0,
        }

        renewal = self.failure_law != "exponential"
        if renewal:
            shape = self.failure_shape
            means = 1.0 / np.asarray(params.mu, dtype=float)
            if self.failure_law == "weibull":
                from scipy.special import gamma as _gamma_fn
                scales = (means / _gamma_fn(1.0 + 1.0 / shape)).tolist()

                def draw_rp_delay(i: int) -> float:
                    return self.streams.weibull(f"rp.{i}", shape, scales[i])
            else:
                log_means = (np.log(means) - 0.5 * shape * shape).tolist()

                def draw_rp_delay(i: int) -> float:
                    return self.streams.lognormal(f"rp.{i}", log_means[i],
                                                  shape)
            state["epoch"] = 0

        def schedule_rp(i: int) -> None:
            delay = self.streams.exponential(f"rp.{i}", float(params.mu[i]))
            engine.schedule(delay, fire_rp, i)

        def schedule_rp_renewal(i: int) -> None:
            engine.schedule(draw_rp_delay(i), fire_rp_renewal, i,
                            state["epoch"])

        def schedule_interaction(i: int, j: int, rate: float) -> None:
            delay = self.streams.exponential(f"interaction.{i}.{j}", rate)
            engine.schedule(delay, fire_interaction, i, j, rate)

        def bump_events() -> None:
            state["events"] += 1
            if state["events"] > self.max_events_per_interval:
                raise RuntimeError("interval did not close; check the rates")

        def fire_rp(i: int) -> None:
            if state["collected"] >= n_intervals:
                return
            bump_events()
            state["row"][i] += 1
            state["mask"] |= 1 << i
            if state["mask"] == full_mask:
                r = state["collected"]
                lengths[r] = engine.now - state["interval_start"]
                counts[r] = state["row"]
                completing[r] = i
                state["collected"] = r + 1
                state["interval_start"] = engine.now
                state["row"] = [0] * n
                state["events"] = 0
            schedule_rp(i)

        def fire_rp_renewal(i: int, epoch: int) -> None:
            if state["collected"] >= n_intervals:
                return
            if epoch != state["epoch"]:
                return                  # superseded by a line-formation reset
            bump_events()
            state["row"][i] += 1
            state["mask"] |= 1 << i
            if state["mask"] == full_mask:
                r = state["collected"]
                lengths[r] = engine.now - state["interval_start"]
                counts[r] = state["row"]
                completing[r] = i
                state["collected"] = r + 1
                state["interval_start"] = engine.now
                state["row"] = [0] * n
                state["events"] = 0
                # The line resets *every* renewal timer; pending ones are
                # retired by the epoch bump and fresh ones scheduled in
                # process order (part of the determinism contract).
                state["epoch"] = epoch + 1
                for p in range(n):
                    schedule_rp_renewal(p)
            else:
                schedule_rp_renewal(i)

        def fire_interaction(i: int, j: int, rate: float) -> None:
            if state["collected"] >= n_intervals:
                return
            bump_events()
            state["mask"] &= full_mask & ~((1 << i) | (1 << j))
            schedule_interaction(i, j, rate)

        for i in range(n):
            schedule_rp_renewal(i) if renewal else schedule_rp(i)
        for i, j, rate in pairs:
            schedule_interaction(i, j, rate)

        while state["collected"] < n_intervals:
            if not engine.step():      # pragma: no cover - defensive
                raise RuntimeError("event queue drained before the intervals "
                                   "closed")
        return SimulatedIntervals(lengths=lengths, rp_counts=counts,
                                  completing_process=completing)

    def estimate_mean_interval(self, n_intervals: int) -> float:
        """Convenience shortcut for ``E[X]`` estimation."""
        return self.sample_intervals(n_intervals).mean_interval()
