"""Generator-based simulation processes.

A :class:`SimProcess` drives a Python generator: every value the generator yields
must be a *waitable* (:class:`~repro.sim.engine.Timeout`,
:class:`~repro.sim.engine.SimEvent`, or another :class:`SimProcess`), and the
generator resumes — receiving the waitable's value — once it fires.  The process
itself is a waitable, so processes can ``yield`` each other to join.

Interruption (used by the rollback machinery to abort in-progress computation) is
modelled by throwing :class:`Interrupt` into the generator at its next resumption
point.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.sim.engine import ProcessExit, SimEvent, SimulationEngine, Timeout

__all__ = ["SimProcess", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process generator when the process is interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class SimProcess:
    """A running generator inside a :class:`~repro.sim.engine.SimulationEngine`."""

    def __init__(self, engine: SimulationEngine,
                 generator: Generator[Any, Any, Any], name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError("SimProcess requires a generator (did you call the function?)")
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._finished = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._completion_callbacks: List[Callable[[Any, Optional[BaseException]], None]] = []
        self._pending_interrupt: Optional[Interrupt] = None
        self._waiting = False
        # Wait-token: resumptions carry the token of the wait they belong to, so a
        # stale waitable firing after an interrupt cannot resume the process twice.
        self._wait_token = 0
        # Handle of the currently pending Timeout (cancelled on interrupt so a
        # stale timer cannot keep dragging the simulation clock forward).
        self._timeout_handle = None
        # Kick off at the current time (but asynchronously, preserving determinism).
        engine.schedule(0.0, self._resume_with_token(self._wait_token), None, None)

    # ------------------------------------------------------------------ state
    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> Any:
        if not self._finished:
            raise RuntimeError(f"process {self.name} has not finished")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def failed(self) -> bool:
        return self._finished and self._error is not None

    # ------------------------------------------------------------------ driving
    def _resume_with_token(self, token: int) -> Callable[[Any, Optional[BaseException]], None]:
        def callback(value: Any, exception: Optional[BaseException]) -> None:
            if token != self._wait_token:
                return  # stale wake-up from a wait that was superseded (interrupt)
            self._resume(value, exception)
        return callback

    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        if self._finished:
            return
        self._waiting = False
        try:
            if self._pending_interrupt is not None:
                interrupt, self._pending_interrupt = self._pending_interrupt, None
                yielded = self.generator.throw(interrupt)
            elif exception is not None:
                yielded = self.generator.throw(exception)
            else:
                yielded = self.generator.send(value)
        except StopIteration as stop:
            self._complete(getattr(stop, "value", None), None)
            return
        except ProcessExit as exit_:
            self._complete(exit_.value, None)
            return
        except BaseException as error:  # noqa: BLE001 - propagate to joiners
            self._complete(None, error)
            return
        self._wait_on(yielded)

    def _wait_on(self, waitable: Any) -> None:
        self._waiting = True
        self._wait_token += 1
        self._timeout_handle = None
        callback = self._resume_with_token(self._wait_token)
        if isinstance(waitable, Timeout):
            self._timeout_handle = waitable._subscribe(callback, engine=self.engine)
        elif isinstance(waitable, (SimEvent, SimProcess)):
            waitable._subscribe(callback)
        else:
            self._complete(None, TypeError(
                f"process {self.name} yielded a non-waitable: {waitable!r}"))

    def _complete(self, result: Any, error: Optional[BaseException]) -> None:
        self._finished = True
        self._result = result
        self._error = error
        for callback in self._completion_callbacks:
            self.engine.schedule(0.0, callback, result, error)
        self._completion_callbacks.clear()

    # ------------------------------------------------------------------ waitable
    def _subscribe(self, callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        if self._finished:
            self.engine.schedule(0.0, callback, self._result, self._error)
        else:
            self._completion_callbacks.append(callback)

    # ------------------------------------------------------------------ control
    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process at its next resumption point.

        If the process is currently waiting, it is resumed immediately (at the
        current virtual time) with :class:`Interrupt` raised inside the generator.
        """
        if self._finished:
            return
        self._pending_interrupt = Interrupt(cause)
        if self._waiting:
            # Supersede the current wait: bump the token so the original waitable's
            # eventual firing is ignored, then wake the process up immediately.
            self._waiting = False
            self._wait_token += 1
            if self._timeout_handle is not None:
                self._timeout_handle.cancel()
                self._timeout_handle = None
            self.engine.schedule(0.0, self._resume_with_token(self._wait_token),
                                 None, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else "running"
        return f"SimProcess({self.name}, {state})"
