"""Trace recording: from runtime callbacks to event logs and history diagrams.

The recovery-block runtimes report what happens (recovery points, pseudo recovery
points, interactions, acceptance tests, errors, rollbacks, synchronisation) to a
:class:`Tracer`.  The tracer maintains both an :class:`~repro.core.events.EventLog`
(the flat, replayable record) and a live :class:`~repro.core.history.HistoryDiagram`
(what the rollback and recovery-line algorithms consume), keeping the two
consistent by construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.events import EventLog
from repro.core.history import HistoryDiagram
from repro.core.types import CheckpointKind, EventKind, ProcessId, RecoveryPoint

__all__ = ["Tracer"]


class Tracer:
    """Collects the execution history of a recovery-block run.

    The event log is materialised lazily: record calls buffer cheap tuples, and
    the full :class:`EventLog` (identical to one built eagerly — same events,
    same sequence numbers) is assembled on first access to :attr:`log`.  The
    history diagram is always live because the rollback and recovery-line
    algorithms consume it during the run, whereas the flat log is only read by
    post-run analysis — the strategy sweeps never touch it, and per-event
    ``Event`` construction is a measurable slice of the simulation cost.
    """

    def __init__(self, n_processes: int) -> None:
        self.n = int(n_processes)
        self.history = HistoryDiagram(self.n)
        self._log: Optional[EventLog] = None
        self._pending: list = []
        self._log_disabled = False

    def disable_log(self) -> None:
        """Drop event-log recording entirely (history stays live).

        For replication sweeps that only consume run reports: buffering one
        tuple plus a kwargs dict per event is pure overhead when the flat log
        is never read.  After this call, record methods update only the
        history diagram, and accessing :attr:`log` raises — a silently empty
        or partial log would be worse than a loud one.
        """
        self._log_disabled = True
        self._pending.clear()

    @property
    def log(self) -> EventLog:
        """The flat event log (materialised from the buffer on first access)."""
        if self._log_disabled:
            raise RuntimeError("the event log was disabled for this tracer "
                               "(Tracer.disable_log); only the history diagram "
                               "is available")
        if self._log is None:
            log = EventLog()
            for time, kind, process, data in self._pending:
                log.append(time, kind, process, **data)
            self._pending.clear()
            self._log = log
        return self._log

    def _record(self, time: float, kind: EventKind, process: ProcessId,
                **data: object) -> None:
        if self._log_disabled:
            return
        if self._log is not None:
            self._log.append(time, kind, process, **data)
        else:
            self._pending.append((time, kind, process, data))

    # ------------------------------------------------------------------ checkpoints
    def record_recovery_point(self, process: ProcessId, time: float) -> RecoveryPoint:
        """Record a regular recovery point (post-acceptance-test state save)."""
        rp = self.history.add_recovery_point(process, time,
                                             kind=CheckpointKind.REGULAR)
        # The guard is repeated at the hot call sites (here and below) rather
        # than only inside _record so a disabled tracer skips the kwargs-dict
        # build as well as the call.
        if not self._log_disabled:
            self._record(time, EventKind.RECOVERY_POINT, process, index=rp.index)
        return rp

    def record_pseudo_recovery_point(self, process: ProcessId, time: float,
                                     origin: Tuple[ProcessId, int]) -> RecoveryPoint:
        """Record a pseudo recovery point implanted on behalf of *origin*."""
        rp = self.history.add_recovery_point(process, time,
                                             kind=CheckpointKind.PSEUDO,
                                             origin=origin)
        if not self._log_disabled:
            self._record(time, EventKind.PSEUDO_RECOVERY_POINT, process,
                         index=rp.index, origin=origin)
        return rp

    # ------------------------------------------------------------------ messages
    def record_interaction(self, source: ProcessId, target: ProcessId,
                           send_time: float, receive_time: Optional[float] = None,
                           *, tainted: bool = False) -> None:
        """Record a delivered message between two processes."""
        receive_time = send_time if receive_time is None else receive_time
        self.history.add_interaction(source, target, send_time,
                                     receive_time=receive_time)
        if not self._log_disabled:
            self._record(receive_time, EventKind.INTERACTION, source, peer=target,
                         initiator=True, receive_time=receive_time, tainted=tainted)

    # ------------------------------------------------------------------ verdicts
    def record_acceptance_test(self, process: ProcessId, time: float,
                               passed: bool) -> None:
        if not self._log_disabled:
            self._record(time, EventKind.ACCEPTANCE_TEST, process, passed=passed)

    def record_error(self, process: ProcessId, time: float, *, local: bool = True,
                     origin: Optional[ProcessId] = None) -> None:
        self._record(time, EventKind.ERROR, process, local=local,
                     origin=origin if origin is not None else process)

    def record_rollback(self, process: ProcessId, time: float,
                        restart_time: float, *, cause: ProcessId) -> None:
        self._record(time, EventKind.ROLLBACK, process,
                     restart_time=restart_time, cause=cause,
                     distance=time - restart_time)

    def record_sync_request(self, process: ProcessId, time: float) -> None:
        self._record(time, EventKind.SYNC_REQUEST, process)

    def record_sync_commit(self, process: ProcessId, time: float) -> None:
        self._record(time, EventKind.SYNC_COMMIT, process)

    def record_recovery_line(self, time: float, processes: Tuple[ProcessId, ...]) -> None:
        self._record(time, EventKind.RECOVERY_LINE, processes[0] if processes else 0,
                     members=tuple(processes))

    # ------------------------------------------------------------------ queries
    def rollback_count(self) -> int:
        return self.log.count(EventKind.ROLLBACK)

    def recovery_point_count(self, process: Optional[ProcessId] = None) -> int:
        return self.log.count(EventKind.RECOVERY_POINT, process=process)

    def interaction_count(self) -> int:
        return self.log.count(EventKind.INTERACTION)

    def summary(self) -> Dict[str, int]:
        return self.log.summary()
