"""Measurement utilities for simulation runs.

A :class:`Monitor` groups named statistics of three kinds:

* :class:`Counter` — monotone event counts (recovery points taken, rollbacks, …);
* :class:`Tally` — samples of a quantity observed at discrete moments (rollback
  distances, waiting times, …);
* :class:`TimeWeightedStat` — piecewise-constant quantities integrated over time
  (number of saved states held, processes blocked, …).

All of them are deliberately simple and allocation-light so that measurement does
not dominate the simulation cost (cf. the profiling-first guidance of the
scientific-Python optimisation notes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.stats import OnlineMoments, SummaryStats

__all__ = ["Counter", "Tally", "TimeWeightedStat", "Monitor"]


class Counter:
    """A monotone event counter."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self._count = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters only increase")
        self._count += by

    @property
    def value(self) -> int:
        return self._count


class Tally:
    """Discrete samples of a quantity (wraps :class:`OnlineMoments`)."""

    def __init__(self, name: str = "tally", keep_samples: bool = False) -> None:
        self.name = name
        self._moments = OnlineMoments()
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        self._moments.add(float(value))
        if self._samples is not None:
            self._samples.append(float(value))

    @property
    def count(self) -> int:
        return self._moments.count

    @property
    def mean(self) -> float:
        return self._moments.mean

    @property
    def std(self) -> float:
        return self._moments.std

    @property
    def maximum(self) -> float:
        return self._moments.maximum

    @property
    def samples(self) -> List[float]:
        if self._samples is None:
            raise RuntimeError(f"tally {self.name} was created without keep_samples")
        return list(self._samples)

    def summary(self) -> SummaryStats:
        return self._moments.summary()


class TimeWeightedStat:
    """Time average of a piecewise-constant quantity."""

    def __init__(self, name: str = "level", initial: float = 0.0,
                 start_time: float = 0.0) -> None:
        self.name = name
        self._level = float(initial)
        self._last_time = float(start_time)
        self._area = 0.0
        self._max = float(initial)

    def update(self, time: float, level: float) -> None:
        """Record that the quantity changed to *level* at *time*."""
        if time < self._last_time - 1e-12:
            raise ValueError("time must be non-decreasing")
        self._area += self._level * (time - self._last_time)
        self._last_time = float(time)
        self._level = float(level)
        if self._level > self._max:
            self._max = self._level

    def add(self, time: float, delta: float) -> None:
        """Record an increment/decrement at *time*."""
        self.update(time, self._level + delta)

    @property
    def current(self) -> float:
        return self._level

    @property
    def maximum(self) -> float:
        return self._max

    def time_average(self, now: float) -> float:
        """Average level over ``[start, now]``."""
        if now < self._last_time:
            raise ValueError("now precedes the last recorded change")
        total = self._area + self._level * (now - self._last_time)
        elapsed = now if now > 0 else 1e-300
        return total / elapsed


@dataclass
class Monitor:
    """A named collection of statistics for one simulation run."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    tallies: Dict[str, Tally] = field(default_factory=dict)
    levels: Dict[str, TimeWeightedStat] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def tally(self, name: str, keep_samples: bool = False) -> Tally:
        if name not in self.tallies:
            self.tallies[name] = Tally(name, keep_samples=keep_samples)
        return self.tallies[name]

    def level(self, name: str, initial: float = 0.0,
              start_time: float = 0.0) -> TimeWeightedStat:
        if name not in self.levels:
            self.levels[name] = TimeWeightedStat(name, initial=initial,
                                                 start_time=start_time)
        return self.levels[name]

    def report(self, now: float) -> Dict[str, float]:
        """Flat dictionary of every statistic, for experiment tables and tests."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[f"count.{name}"] = float(counter.value)
        for name, tally in self.tallies.items():
            if tally.count:
                out[f"mean.{name}"] = tally.mean
                out[f"max.{name}"] = tally.maximum
                out[f"n.{name}"] = float(tally.count)
        for name, level in self.levels.items():
            out[f"avg.{name}"] = level.time_average(now)
            out[f"peak.{name}"] = level.maximum
        return out
