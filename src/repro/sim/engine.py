"""The discrete-event simulation kernel.

A :class:`SimulationEngine` owns a virtual clock and a binary-heap event queue.
Work is expressed either as plain callbacks (:meth:`SimulationEngine.schedule`) or
as generator-based processes (:meth:`SimulationEngine.launch`) that ``yield``
*waitables*:

* :class:`Timeout` — resume after a virtual-time delay;
* :class:`SimEvent` — resume when another party calls :meth:`SimEvent.succeed`
  (or fail with :meth:`SimEvent.fail`);
* another :class:`~repro.sim.process.SimProcess` — resume when it terminates.

The kernel is single-threaded and deterministic: events at equal times fire in the
order they were scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["SimulationEngine", "Timeout", "SimEvent", "ProcessExit", "ScheduledCall"]


class ProcessExit(Exception):
    """Raised inside a process generator to terminate it early with a value."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class SimEvent:
    """A one-shot triggerable event processes can wait on.

    Waiters registered via :meth:`wait` are resumed (in registration order) when the
    event is triggered.  Triggering twice is an error; waiting on an already
    triggered event resumes immediately.
    """

    __slots__ = ("engine", "_callbacks", "_triggered", "_value", "_failed", "name")

    def __init__(self, engine: "SimulationEngine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._callbacks: List[Callable[[Any, Optional[BaseException]], None]] = []
        self._triggered = False
        self._failed: Optional[BaseException] = None
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully, resuming every waiter."""
        if self._triggered:
            raise RuntimeError(f"event {self.name or id(self)} already triggered")
        self._triggered = True
        self._value = value
        for callback in self._callbacks:
            self.engine.schedule(0.0, callback, value, None)
        self._callbacks.clear()
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event as a failure; waiters receive the exception."""
        if self._triggered:
            raise RuntimeError(f"event {self.name or id(self)} already triggered")
        self._triggered = True
        self._failed = exception
        for callback in self._callbacks:
            self.engine.schedule(0.0, callback, None, exception)
        self._callbacks.clear()
        return self

    def wait(self, callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        """Register *callback(value, exception)*; called when the event triggers."""
        if self._triggered:
            self.engine.schedule(0.0, callback, self._value, self._failed)
        else:
            self._callbacks.append(callback)

    # The waitable protocol used by SimProcess.
    def _subscribe(self, callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        self.wait(callback)


class Timeout:
    """Waitable that fires after a fixed virtual-time delay."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0.0:
            raise ValueError("timeout delay must be non-negative")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, callback, *, engine: "SimulationEngine") -> "ScheduledCall":
        return engine.schedule(self.delay, callback, self.value, None)


class ScheduledCall:
    """Handle returned by :meth:`SimulationEngine.schedule`; supports cancellation."""

    __slots__ = ("time", "seq", "cancelled")

    def __init__(self, time: float, seq: int) -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        self.cancelled = True


class SimulationEngine:
    """Event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial clock value (default 0).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, ScheduledCall, Callable, tuple]] = []
        self._seq = itertools.count()
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of live events still queued.

        Cancelled entries stay in the heap until popped (cancellation only flags
        the handle), so they are filtered out here rather than counted.
        """
        return sum(1 for _time, _seq, handle, _cb, _args in self._queue
                   if handle is None or not handle.cancelled)

    # ------------------------------------------------------------------ scheduling
    def schedule(self, delay: float, callback: Callable, *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` after *delay* units of virtual time."""
        if delay < 0.0:
            raise ValueError("cannot schedule into the past")
        # Inlined schedule_at: a non-negative delay can never land in the past,
        # and this is the hottest allocation site of the kernel.
        handle = ScheduledCall(self._now + delay, next(self._seq))
        heapq.heappush(self._queue, (handle.time, handle.seq, handle, callback, args))
        return handle

    def schedule_fire(self, delay: float, callback: Callable, *args: Any) -> None:
        """Like :meth:`schedule`, but fire-and-forget: no cancellation handle.

        The recurring timer chains of the recovery runtimes never cancel their
        events, and the :class:`ScheduledCall` allocation is pure overhead at
        tens of thousands of events per run — queue entries carry ``None`` in
        the handle slot instead.
        """
        if delay < 0.0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue,
                       (self._now + delay, next(self._seq), None, callback, args))

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> ScheduledCall:
        """Run ``callback(*args)`` at absolute virtual time *time*."""
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule at {time} < now ({self._now})")
        handle = ScheduledCall(time, next(self._seq))
        heapq.heappush(self._queue, (time, handle.seq, handle, callback, args))
        return handle

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh :class:`SimEvent` bound to this engine."""
        return SimEvent(self, name=name)

    def launch(self, generator, name: str = ""):
        """Start a generator-based process; returns the :class:`SimProcess`."""
        from repro.sim.process import SimProcess

        return SimProcess(self, generator, name=name)

    # ------------------------------------------------------------------ running
    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._queue:
            time, _seq, handle, callback, args = heapq.heappop(self._queue)
            if handle is not None and handle.cancelled:
                continue
            if time < self._now - 1e-12:  # pragma: no cover - defensive
                raise RuntimeError("event queue produced a time in the past")
            if time > self._now:
                self._now = time
            self._processed += 1
            callback(*args)
            return True
        return False

    def run_while(self, keep_going: Callable[[], bool], until: float) -> None:
        """Step until the queue drains, the clock reaches *until*, or
        ``keep_going()`` turns False (checked once before every event, exactly
        like an external ``while keep_going(): step()`` loop, minus the
        per-event function-call overhead of :meth:`step`).
        """
        queue = self._queue
        pop = heapq.heappop
        while queue and self._now < until and keep_going():
            time, _seq, handle, callback, args = pop(queue)
            if handle is not None and handle.cancelled:
                continue
            if time > self._now:
                self._now = time
            self._processed += 1
            callback(*args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, *until* is reached, or *max_events* executed.

        Returns the clock value when the run stops.  When *until* is given the
        clock is advanced to exactly *until* even if the last event fired earlier.
        """
        if self._running:
            raise RuntimeError("run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                next_time = self._peek_time()
                if until is not None and next_time is not None and next_time > until:
                    break
                if not self.step():
                    break
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)
        return self._now

    def _peek_time(self) -> Optional[float]:
        while self._queue:
            time, _seq, handle, _cb, _args = self._queue[0]
            if handle is not None and handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return time
        return None

    def drain(self) -> float:
        """Run until no events remain; returns the final clock value."""
        return self.run(until=None)
