"""Message channels between simulated processes.

The paper's "consistent communications" assumption (Section 2.1) requires that
messages between a pair of processes be delivered reliably and in FIFO order; the
:class:`Channel` here guarantees both.  A :class:`MessageRouter` maintains one
channel per ordered pair of processes and notifies an observer (usually the
:class:`~repro.sim.tracer.Tracer`) of every delivery, which is how interactions end
up in the history diagram.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.engine import SimEvent, SimulationEngine

__all__ = ["Message", "Channel", "MessageRouter"]


@dataclass(frozen=True)
class Message:
    """A message in flight between two processes."""

    source: int
    target: int
    payload: Any
    send_time: float
    sequence: int
    tainted: bool = field(default=False, compare=False)


class Channel:
    """Reliable FIFO channel with optional fixed latency.

    ``send`` never blocks; ``receive`` returns a :class:`SimEvent` that fires when a
    message is available (immediately if one is already queued).  Messages are
    delivered in send order — the paper's consistency requirement (ii).
    """

    def __init__(self, engine: SimulationEngine, source: int, target: int,
                 latency: float = 0.0) -> None:
        if latency < 0.0:
            raise ValueError("latency must be non-negative")
        self.engine = engine
        self.source = int(source)
        self.target = int(target)
        self.latency = float(latency)
        self._queue: Deque[Message] = deque()
        self._waiting: Deque[SimEvent] = deque()
        self._sequence = 0
        self._delivery_callbacks: List[Callable[[Message, float], None]] = []

    # ------------------------------------------------------------------ observers
    def on_delivery(self, callback: Callable[[Message, float], None]) -> None:
        """Register ``callback(message, delivery_time)`` for every delivery."""
        self._delivery_callbacks.append(callback)

    # ------------------------------------------------------------------ transfer
    def send(self, payload: Any, *, tainted: bool = False) -> Message:
        """Send *payload*; returns the in-flight :class:`Message`."""
        message = Message(source=self.source, target=self.target, payload=payload,
                          send_time=self.engine.now, sequence=self._sequence,
                          tainted=tainted)
        self._sequence += 1
        self.engine.schedule(self.latency, self._deliver, message)
        return message

    def _deliver(self, message: Message) -> None:
        now = self.engine.now
        for callback in self._delivery_callbacks:
            callback(message, now)
        if self._waiting:
            waiter = self._waiting.popleft()
            waiter.succeed(message)
        else:
            self._queue.append(message)

    def receive(self) -> SimEvent:
        """Waitable that fires with the next delivered message."""
        event = self.engine.event(name=f"recv[{self.source}->{self.target}]")
        if self._queue:
            event.succeed(self._queue.popleft())
        else:
            self._waiting.append(event)
        return event

    def try_receive(self) -> Optional[Message]:
        """Non-blocking receive; None when no message is queued."""
        if self._queue:
            return self._queue.popleft()
        return None

    @property
    def pending(self) -> int:
        """Messages delivered but not yet received."""
        return len(self._queue)

    def drop_pending(self, predicate: Callable[[Message], bool]) -> int:
        """Discard queued messages matching *predicate* (used on rollback).

        Returns the number of messages dropped.
        """
        kept = deque(m for m in self._queue if not predicate(m))
        dropped = len(self._queue) - len(kept)
        self._queue = kept
        return dropped


class MessageRouter:
    """Pairwise channels for ``n`` processes plus convenience broadcast.

    One :class:`Channel` exists per ordered pair ``(i, j)``; observers can be
    attached globally so that every delivery in the system is traced.
    """

    def __init__(self, engine: SimulationEngine, n_processes: int,
                 latency: float = 0.0) -> None:
        if n_processes < 1:
            raise ValueError("need at least one process")
        self.engine = engine
        self.n = int(n_processes)
        self.latency = float(latency)
        self._channels: Dict[Tuple[int, int], Channel] = {}
        self._observers: List[Callable[[Message, float], None]] = []

    def channel(self, source: int, target: int) -> Channel:
        """The channel from *source* to *target* (created lazily)."""
        if source == target:
            raise ValueError("no self-channel")
        for p in (source, target):
            if not (0 <= p < self.n):
                raise ValueError(f"process {p} out of range")
        key = (int(source), int(target))
        if key not in self._channels:
            channel = Channel(self.engine, source, target, latency=self.latency)
            for observer in self._observers:
                channel.on_delivery(observer)
            self._channels[key] = channel
        return self._channels[key]

    def on_delivery(self, callback: Callable[[Message, float], None]) -> None:
        """Observe deliveries on every (present and future) channel."""
        self._observers.append(callback)
        for channel in self._channels.values():
            channel.on_delivery(callback)

    def send(self, source: int, target: int, payload: Any, *,
             tainted: bool = False) -> Message:
        return self.channel(source, target).send(payload, tainted=tainted)

    def broadcast(self, source: int, payload: Any, *, tainted: bool = False
                  ) -> List[Message]:
        """Send *payload* from *source* to every other process."""
        return [self.send(source, target, payload, tainted=tainted)
                for target in range(self.n) if target != source]

    def pending_for(self, target: int) -> int:
        """Total undelivered-to-receiver messages destined to *target*."""
        return sum(ch.pending for (s, t), ch in self._channels.items() if t == target)
