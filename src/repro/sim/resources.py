"""Shared resources with FIFO queuing.

The paper motivates uncertainty in interaction timing partly by "locking and
waiting at shared resources"; this module provides the corresponding substrate so
that workloads can model resource contention explicitly (used by the
shared-resource example and the workload generators' contention mode).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.sim.engine import SimEvent, SimulationEngine

__all__ = ["Resource"]


@dataclass
class _Request:
    owner: int
    event: SimEvent


class Resource:
    """A counted resource with FIFO granting.

    ``request`` returns a waitable event that fires when a unit of the resource is
    granted; ``release`` returns a unit.  Utilisation statistics are tracked so
    experiments can report contention.
    """

    def __init__(self, engine: SimulationEngine, capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.engine = engine
        self.capacity = int(capacity)
        self.name = name
        self._in_use = 0
        self._queue: Deque[_Request] = deque()
        self._busy_time = 0.0
        self._last_change = engine.now
        self._grants = 0

    # ------------------------------------------------------------------ accounting
    def _account(self) -> None:
        now = self.engine.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def grants(self) -> int:
        """Total number of granted requests so far."""
        return self._grants

    def utilisation(self) -> float:
        """Time-average utilisation (busy unit-time / capacity / elapsed)."""
        self._account()
        elapsed = max(self.engine.now, 1e-300)
        return self._busy_time / (self.capacity * elapsed)

    # ------------------------------------------------------------------ protocol
    def request(self, owner: int = -1) -> SimEvent:
        """Request one unit; the returned event fires when it is granted."""
        event = self.engine.event(name=f"{self.name}.request")
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            self._grants += 1
            event.succeed(self)
        else:
            self._queue.append(_Request(owner=owner, event=event))
        return event

    def release(self) -> None:
        """Return one unit; grants the oldest queued request, if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release of {self.name} without a matching request")
        self._account()
        if self._queue:
            request = self._queue.popleft()
            self._grants += 1
            request.event.succeed(self)
            # The unit changes hands without becoming idle; in_use is unchanged.
        else:
            self._in_use -= 1

    def cancel_waiters(self, owner: int) -> int:
        """Drop queued requests issued by *owner* (used when a process rolls back)."""
        before = len(self._queue)
        self._queue = deque(r for r in self._queue if r.owner != owner)
        return before - len(self._queue)
