"""Discrete-event simulation substrate.

The paper's authors evaluated their models with an in-house simulation whose code
is not available; this package provides the replacement substrate: a deterministic,
seedable discrete-event kernel with generator-based processes, message channels,
shared resources and measurement utilities.  The recovery-block runtimes of
:mod:`repro.recovery` are ordinary users of this kernel.

Design notes
------------
* Concurrency is *simulated*: a single event loop advances virtual time.  This is
  deliberate — the paper's quantities depend only on the stochastic model, and a
  real-thread implementation in CPython would add GIL noise without adding fidelity.
* Determinism: given a seed, every run is bit-for-bit reproducible; the event queue
  breaks ties by insertion order.
* The generator protocol is a deliberately small subset of the SimPy idiom
  (``yield Timeout(d)``, ``yield event``, ``yield channel.receive()``) so that the
  recovery runtimes stay readable.
"""

from repro.sim.engine import SimulationEngine, Timeout, SimEvent, ProcessExit
from repro.sim.process import SimProcess
from repro.sim.random_streams import RandomStreams
from repro.sim.channels import Channel, Message, MessageRouter
from repro.sim.resources import Resource
from repro.sim.monitor import Counter, TimeWeightedStat, Tally, Monitor
from repro.sim.tracer import Tracer

__all__ = [
    "SimulationEngine",
    "Timeout",
    "SimEvent",
    "ProcessExit",
    "SimProcess",
    "RandomStreams",
    "Channel",
    "Message",
    "MessageRouter",
    "Resource",
    "Counter",
    "TimeWeightedStat",
    "Tally",
    "Monitor",
    "Tracer",
]
