"""The report pipeline: run (or reload) scenarios, render, write ``REPORT.md``.

:func:`generate_report` is the programmatic face of ``python -m repro
report``.  It owns the glue and nothing else: the
:class:`~repro.runner.runner.ExperimentRunner` decides whether each
``(scenario, params, seed, reps)`` cell is computed or served from the
:class:`~repro.report.store.ResultStore`, the renderer registry
(:mod:`repro.report.figures`) turns results into figure/table files, and
:mod:`repro.report.markdown` assembles the provenance-stamped document.

Because the store lives *inside* the output directory by default
(``<out>/store``), re-running the same report command is idempotent: every
cell hits the cache, the figures are re-rendered from stored results, and no
scenario executes twice.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.runner import ExperimentRunner, list_scenarios, load_builtin_scenarios
from repro.runner.backends import ExecutionBackend
from repro.report.figures import render_artifacts
from repro.report.markdown import (ReportSection, render_report,
                                   report_provenance)
from repro.report.store import ResultStore

__all__ = ["ReportSummary", "default_scenario_order", "generate_report"]

#: Scenarios whose outputs are the paper's own artifacts, in reading order;
#: ``--all`` reports lead with these and append the remaining scenarios
#: alphabetically.
PAPER_ORDER = ("table1", "figure5", "figure5_full_chain", "figure6",
               "heterogeneous_sweep")


def default_scenario_order(names: Sequence[str]) -> List[str]:
    """Order *names* paper-artifacts-first, the rest alphabetically."""
    names = list(names)
    ordered = [name for name in PAPER_ORDER if name in names]
    ordered += sorted(name for name in names if name not in PAPER_ORDER)
    return ordered


@dataclass
class ReportSummary:
    """What :func:`generate_report` produced, for callers and tests."""

    report_path: str
    out_dir: str
    store_root: str
    sections: List[ReportSection] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(section.cached for section in self.sections)

    @property
    def computed(self) -> int:
        return sum(not section.cached for section in self.sections)

    @property
    def artifact_paths(self) -> List[str]:
        return [artifact.path for section in self.sections
                for artifact in section.artifacts]


def generate_report(scenarios: Optional[Sequence[str]] = None, *,
                    out_dir: str = "reports",
                    store: Union[ResultStore, str, None] = None,
                    backend: Union[str, ExecutionBackend, None] = None,
                    workers: Optional[int] = None,
                    seed: Optional[int] = 2024,
                    reps: Optional[int] = None,
                    force: bool = False,
                    digits: int = 6) -> ReportSummary:
    """Run (or reload) *scenarios* and write a self-contained report.

    Parameters
    ----------
    scenarios:
        Scenario names to include; ``None`` means every registered scenario,
        paper artifacts first (:func:`default_scenario_order`).
    out_dir:
        Report directory; receives ``REPORT.md``, ``figures/``, ``tables/``
        and (by default) the result store under ``store/``.
    store:
        A :class:`ResultStore`, a path to one, or ``None`` for
        ``<out_dir>/store``.  Cells already in the store are *not* re-run
        unless ``force`` is given.
    backend / workers / seed / reps:
        Execution knobs, with the same meaning as on ``python -m repro run``.
        ``seed`` defaults to 2024 (the CLI default) so reports are
        reproducible unless fresh entropy is requested with ``seed=None``.
    force:
        Recompute every cell even on a cache hit (results are re-written
        through to the store).
    digits:
        Significant digits in the report's markdown tables.
    """
    load_builtin_scenarios()
    known = [spec.name for spec in list_scenarios()]
    if scenarios is None:
        names = default_scenario_order(known)
    else:
        names = list(scenarios)
        # Internal scenarios (the facade's 'evaluate') need caller-supplied
        # parameters and have no renderable default — refuse them up front
        # instead of crashing after the other sections computed.
        from repro.runner import get_scenario
        internal = [name for name in names
                    if name not in known and get_scenario(name).internal]
        if internal:
            raise ValueError(
                f"scenario(s) {internal} are internal infrastructure and "
                "cannot be rendered into a report; evaluate them with "
                "`python -m repro eval`")

    os.makedirs(out_dir, exist_ok=True)
    if store is None:
        store = ResultStore(os.path.join(out_dir, "store"))
    elif isinstance(store, str):
        store = ResultStore(store)

    runner = ExperimentRunner(backend, workers=workers, seed=seed, reps=reps,
                              store=store)
    sections: List[ReportSection] = []
    for name in names:
        record = runner.run_record(name, force=force)
        artifacts = render_artifacts(record.spec.renderer, record.result,
                                     out_dir, name, digits)
        sections.append(ReportSection(
            name=name,
            title=record.spec.description or record.result.name,
            paper_reference=record.spec.paper_reference,
            result=record.result,
            artifacts=artifacts,
            cached=record.cached,
            elapsed_seconds=record.elapsed_seconds,
            key=record.key,
            reps=record.reps,
        ))

    # Display the store relative to the report when it lives inside it
    # (the default layout); otherwise show it as given.
    store_display = os.path.relpath(os.path.abspath(store.root),
                                    os.path.abspath(out_dir))
    if store_display.startswith(os.pardir):
        store_display = store.root
    provenance = report_provenance(seed, runner.backend.describe(), extras={
        "result store": store_display,
        "scenarios": str(len(sections)),
    })
    report_path = os.path.join(out_dir, "REPORT.md")
    document = render_report(sections, out_dir, provenance, digits=digits)
    with open(report_path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return ReportSummary(report_path=report_path, out_dir=out_dir,
                         store_root=store.root, sections=sections)
