"""Renderers turning :class:`ExperimentResult` objects into paper artifacts.

A *renderer* is a registered function ``(result, out_dir, basename) ->
[Artifact]``; scenarios declare which renderer applies to them via
``ScenarioSpec.renderer`` (:mod:`repro.runner.registry`), and the report
pipeline (:mod:`repro.report.pipeline`) calls :func:`render_artifacts` with
whatever the runner produced — fresh or cache-served, the rendering is
identical because it only sees the result.

Two figure backends are supported transparently:

* **matplotlib** (when importable) — PNG output via the headless ``Agg``
  canvas, never a GUI backend;
* **builtin SVG** (:mod:`repro.report.svg`) — dependency-free fallback, so
  the report command works on a bare numpy/scipy install.

:func:`figure_backend` reports which one is active; the report's provenance
block records it.
"""

from __future__ import annotations

import importlib.util
import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments.common import ExperimentResult
from repro.report.svg import (PALETTE, LineChart, render_line_chart_svg)

__all__ = [
    "Artifact",
    "figure_backend",
    "register_renderer",
    "render_artifacts",
    "renderer_names",
]

#: Lazily resolved matplotlib availability.  Kept out of module import so
#: that ``import repro`` neither pays the matplotlib import cost nor touches
#: any global matplotlib state; rendering itself draws on an explicit Agg
#: canvas per figure rather than switching the process-wide backend.
_HAVE_MPL: Optional[bool] = None


def _matplotlib_available() -> bool:
    global _HAVE_MPL
    if _HAVE_MPL is None:
        _HAVE_MPL = importlib.util.find_spec("matplotlib") is not None
    return _HAVE_MPL


def figure_backend() -> str:
    """The active figure backend: ``"matplotlib"`` or ``"builtin-svg"``."""
    return "matplotlib" if _matplotlib_available() else "builtin-svg"


@dataclass(frozen=True)
class Artifact:
    """One rendered output file plus how the report should present it."""

    path: str
    kind: str            # "figure" | "table"
    caption: str


#: ``(result, out_dir, basename, digits) -> [Artifact]``; figure renderers
#: may ignore *digits*, table renderers honour it.
Renderer = Callable[[ExperimentResult, str, str, int], List[Artifact]]

_RENDERERS: Dict[str, Renderer] = {}


def register_renderer(name: str) -> Callable[[Renderer], Renderer]:
    """Register a renderer under *name* (the value scenarios declare)."""

    def decorate(func: Renderer) -> Renderer:
        _RENDERERS[name] = func
        return func

    return decorate


def renderer_names() -> List[str]:
    """All registered renderer names, sorted."""
    return sorted(_RENDERERS)


def render_artifacts(renderer: Optional[str], result: ExperimentResult,
                     out_dir: str, basename: str,
                     digits: int = 6) -> List[Artifact]:
    """Run the named renderer; ``None`` renders nothing (table stays inline)."""
    if renderer is None:
        return []
    try:
        func = _RENDERERS[renderer]
    except KeyError:
        known = ", ".join(renderer_names()) or "(none)"
        raise KeyError(f"unknown renderer {renderer!r}; known: {known}") \
            from None
    return func(result, out_dir, basename, digits)


# --------------------------------------------------------------------------
# shared chart emission
# --------------------------------------------------------------------------

def _emit_line_chart(chart: LineChart, out_dir: str, basename: str,
                     caption: str) -> Artifact:
    """Write *chart* with the active backend and return its artifact."""
    if len(chart.series) > len(PALETTE):
        # Same failure on both backends; without this the matplotlib path
        # would die on a bare IndexError at PALETTE[idx].
        raise ValueError(f"at most {len(PALETTE)} series per chart; "
                         "fold the rest or split the figure")
    figures_dir = os.path.join(out_dir, "figures")
    os.makedirs(figures_dir, exist_ok=True)
    if _matplotlib_available():
        path = os.path.join(figures_dir, f"{basename}.png")
        _render_matplotlib(chart, path)
    else:
        path = os.path.join(figures_dir, f"{basename}.svg")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_line_chart_svg(chart))
    return Artifact(path=path, kind="figure", caption=caption)


def _render_matplotlib(chart: LineChart, path: str) -> None:  # pragma: no cover
    # Draw on an explicit Agg canvas: headless, and it leaves the process-wide
    # matplotlib backend (a notebook's inline backend, say) untouched.
    from matplotlib.backends.backend_agg import FigureCanvasAgg
    from matplotlib.figure import Figure

    fig = Figure(figsize=(7.6, 4.4), dpi=150)
    FigureCanvasAgg(fig)
    ax = fig.add_subplot()
    fig.patch.set_facecolor("#fcfcfb")
    ax.set_facecolor("#fcfcfb")
    for idx, series in enumerate(chart.series):
        ax.plot(chart.x, series.y, color=PALETTE[idx], linewidth=2,
                marker="o", markersize=5, markeredgecolor="#fcfcfb",
                markeredgewidth=1.0, label=series.label)
    if chart.log_y:
        ax.set_yscale("log")
    ax.set_title(chart.title, loc="left", fontsize=12, fontweight="semibold",
                 color="#0b0b0b")
    ax.set_xlabel(chart.x_label, color="#52514e")
    ax.set_ylabel(chart.y_label, color="#52514e")
    ax.grid(True, color="#e7e6e2", linewidth=0.8)
    ax.set_axisbelow(True)
    for spine in ("top", "right"):
        ax.spines[spine].set_visible(False)
    for spine in ("left", "bottom"):
        ax.spines[spine].set_color("#b5b4ae")
    ax.tick_params(colors="#52514e", labelsize=9)
    if len(chart.series) > 1:
        ax.legend(frameon=False, fontsize=9, labelcolor="#52514e")
    fig.tight_layout()
    fig.savefig(path)


def _label_number(label: str, prefix: str) -> float:
    """Extract the number following *prefix* from a row label like ``n=12``."""
    match = re.search(re.escape(prefix) + r"([-+0-9.eE]+)", label)
    if match is None:
        raise ValueError(f"row label {label!r} carries no {prefix!r} value")
    return float(match.group(1))


# --------------------------------------------------------------------------
# paper renderers
# --------------------------------------------------------------------------

def _mean_interval_vs_n(result: ExperimentResult, out_dir: str, basename: str,
                        caption: str) -> List[Artifact]:
    """Shared shape of Figure 5 variants: E[X] vs n, one line per rho."""
    n_values = [_label_number(row.label, "n=") for row in result.rows]
    chart = LineChart(
        title=caption,
        subtitle=result.paper_reference,
        x_label="number of processes n",
        y_label="E[X] (log scale)",
        x=n_values,
        log_y=True,
    )
    for column in result.columns:
        if not column.startswith("E[X] rho="):
            continue
        rho = column.split("rho=", 1)[1]
        chart.add_series(f"ρ = {rho}", result.column(column))
    return [_emit_line_chart(chart, out_dir, basename, caption)]


@register_renderer("figure5")
def render_figure5(result: ExperimentResult, out_dir: str,
                   basename: str, digits: int = 6) -> List[Artifact]:
    """Figure 5: mean recovery-line interval vs number of processes."""
    return _mean_interval_vs_n(result, out_dir, basename,
                               "Figure 5 — mean interval E[X] vs n")


@register_renderer("figure5_full_chain")
def render_figure5_full_chain(result: ExperimentResult, out_dir: str,
                              basename: str,
                              digits: int = 6) -> List[Artifact]:
    """Figure 5 on the full 2^n chain (sparse backend, large n)."""
    return _mean_interval_vs_n(
        result, out_dir, basename,
        "Figure 5 (full chain) — E[X] vs n, sparse backend")


@register_renderer("figure6")
def render_figure6(result: ExperimentResult, out_dir: str,
                   basename: str, digits: int = 6) -> List[Artifact]:
    """Figure 6: the interval density f_X(t), one line per paper case."""
    times = []
    density_columns = []
    for column in result.columns:
        match = re.fullmatch(r"f\(([-+0-9.eE]+)\)", column)
        if match:
            times.append(float(match.group(1)))
            density_columns.append(column)
    if not density_columns:
        raise ValueError("figure6 renderer found no f(t) columns")
    chart = LineChart(
        title="Figure 6 — density f_X(t) of the recovery-line interval",
        subtitle=result.paper_reference,
        x_label="t",
        y_label="f_X(t)",
        x=times,
    )
    for row in result.rows:
        label = row.label.split(" mu=", 1)[0]     # "case 1 mu=(...)" -> "case 1"
        chart.add_series(label, [row.get(c) for c in density_columns])
    caption = "Figure 6 — interval density, three paper cases"
    return [_emit_line_chart(chart, out_dir, basename, caption)]


@register_renderer("heterogeneous_sweep")
def render_heterogeneous_sweep(result: ExperimentResult, out_dir: str,
                               basename: str,
                               digits: int = 6) -> List[Artifact]:
    """Heterogeneous sweep: interval statistics and completion imbalance."""
    gradients = [_label_number(row.label, "gradient=") for row in result.rows]
    stats = LineChart(
        title="Heterogeneous sweep — interval statistics vs μ gradient",
        subtitle=result.paper_reference,
        x_label="checkpoint-rate gradient g",
        y_label="value",
        x=gradients,
    )
    for column in ("E[X]", "std[X]", "E[sum L]"):
        if column in result.columns:
            stats.add_series(column, result.column(column))
    artifacts = [_emit_line_chart(
        stats, out_dir, basename,
        "Heterogeneous sweep — E[X], std[X], E[Σ L] vs gradient")]
    if "q max/min" in result.columns:
        imbalance = LineChart(
            title="Heterogeneous sweep — completion imbalance vs μ gradient",
            subtitle="max q_i / min q_i of the line-completion probabilities",
            x_label="checkpoint-rate gradient g",
            y_label="q max/min",
            x=gradients,
        )
        imbalance.add_series("q max/min", result.column("q max/min"))
        artifacts.append(_emit_line_chart(
            imbalance, out_dir, f"{basename}_imbalance",
            "Heterogeneous sweep — line-completion imbalance vs gradient"))
    return artifacts


@register_renderer("sync_loss")
def render_sync_loss(result: ExperimentResult, out_dir: str,
                     basename: str, digits: int = 6) -> List[Artifact]:
    """Section 3: computation-power loss CL vs n, one line per heterogeneity."""
    n_values = [_label_number(row.label, "n=") for row in result.rows]
    chart = LineChart(
        title="Section 3 — synchronisation loss CL vs n",
        subtitle=result.paper_reference,
        x_label="number of processes n",
        y_label="CL (computation-power loss per line)",
        x=n_values,
    )
    for column in result.columns:
        if column.startswith("CL h="):
            chart.add_series(f"h = {column.split('h=', 1)[1]}",
                             result.column(column))
    if "E[Z] h=1" in result.columns:
        chart.add_series("E[Z] (h = 1)", result.column("E[Z] h=1"))
    caption = "Section 3 — mean loss CL vs n and rate heterogeneity"
    return [_emit_line_chart(chart, out_dir, basename, caption)]


@register_renderer("strategy_tradeoff")
def render_strategy_tradeoff(result: ExperimentResult, out_dir: str,
                             basename: str, digits: int = 6) -> List[Artifact]:
    """The conclusion's trade-off: overheads and rollbacks per scheme.

    Schemes are categorical, so they sit at integer x positions with the
    mapping spelled out on the axis label; two figures separate the
    time-overhead decomposition from the rollback behaviour (their scales
    have nothing to do with each other), and the full metric table is
    emitted alongside.
    """
    schemes = [row.label for row in result.rows]
    positions = list(range(1, len(schemes) + 1))
    x_label = "scheme: " + ", ".join(f"{i}={s}"
                                     for i, s in zip(positions, schemes))
    overheads = LineChart(
        title="Strategy trade-off — where the time goes",
        subtitle=result.paper_reference,
        x_label=x_label,
        y_label="time (simulated units)",
        x=positions,
    )
    for column in ("lost_work", "checkpoint_overhead", "waiting_time"):
        if column in result.columns:
            overheads.add_series(column, result.column(column))
    artifacts = [_emit_line_chart(
        overheads, out_dir, basename,
        "Strategy trade-off — lost work, checkpointing and waiting per scheme")]
    rollbacks = LineChart(
        title="Strategy trade-off — rollback behaviour",
        subtitle="asynchronous rollbacks are unbounded; the other schemes bound them",
        x_label=x_label,
        y_label="count / distance",
        x=positions,
    )
    for column in ("rollbacks", "mean_rollback_distance",
                   "max_rollback_distance"):
        if column in result.columns:
            rollbacks.add_series(column, result.column(column))
    artifacts.append(_emit_line_chart(
        rollbacks, out_dir, f"{basename}_rollbacks",
        "Strategy trade-off — rollback count and distances per scheme"))
    artifacts.extend(render_table(result, out_dir, basename, digits))
    return artifacts


@register_renderer("cascading_faults")
def render_cascading_faults(result: ExperimentResult, out_dir: str,
                            basename: str, digits: int = 6) -> List[Artifact]:
    """Cascading-fault sweep: scheme degradation vs propagation probability.

    Rows are labelled ``p=<probability>``; columns pair a metric with a
    scheme (``"makespan asynchronous"``).  One figure per metric, one line
    per scheme, plus the standalone metric table.
    """
    probabilities = [_label_number(row.label, "p=") for row in result.rows]
    metrics = sorted({column.split(" ", 1)[0] for column in result.columns})
    artifacts: List[Artifact] = []
    for idx, metric in enumerate(metrics):
        chart = LineChart(
            title=f"Cascading faults — {metric} vs propagation probability",
            subtitle=result.paper_reference,
            x_label="cascade propagation probability p",
            y_label=metric,
            x=probabilities,
        )
        for column in result.columns:
            head, _, scheme = column.partition(" ")
            if head == metric and scheme:
                chart.add_series(scheme, result.column(column))
        name = basename if idx == 0 else f"{basename}_{metric}"
        artifacts.append(_emit_line_chart(
            chart, out_dir, name,
            f"Cascading faults — {metric} per scheme as common-mode strikes "
            "propagate"))
    artifacts.extend(render_table(result, out_dir, basename, digits))
    return artifacts


@register_renderer("table")
def render_table(result: ExperimentResult, out_dir: str,
                 basename: str, digits: int = 6) -> List[Artifact]:
    """Standalone markdown table file (e.g. Table 1)."""
    from repro.report.markdown import result_to_markdown_table
    tables_dir = os.path.join(out_dir, "tables")
    os.makedirs(tables_dir, exist_ok=True)
    path = os.path.join(tables_dir, f"{basename}.md")
    lines = [f"# {result.name}", "", f"Reproduces: {result.paper_reference}",
             "", result_to_markdown_table(result, digits)]
    if result.notes:
        lines += ["", f"*{result.notes}*"]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return [Artifact(path=path, kind="table",
                     caption=f"{result.name} (standalone table)")]
