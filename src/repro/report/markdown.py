"""Markdown emission: result tables and the self-contained ``REPORT.md``.

The report is written to be committed or archived as-is: artifact links are
relative to the report file, every section carries the provenance of the run
that produced it (seed, replication budget, backend, cache status, store
key), and the header pins the package and dependency versions plus the
figure backend — enough to reproduce any number in the document.
"""

from __future__ import annotations

import math
import os
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro._version import __version__
from repro.experiments.common import ExperimentResult
from repro.report.figures import Artifact, figure_backend

__all__ = ["ReportSection", "render_report", "report_provenance",
           "result_to_markdown_table"]


def _fmt_value(value: float, digits: int) -> str:
    if not math.isfinite(value):
        return str(value)                  # "inf" / "-inf" / "nan"
    if value != int(value) or abs(value) >= 1e16:
        return f"{value:.{digits}g}"
    return str(int(value))


def result_to_markdown_table(result: ExperimentResult, digits: int = 6) -> str:
    """GitHub-flavoured markdown table of an :class:`ExperimentResult`."""
    header = ["case", *result.columns]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in result.rows:
        cells = [row.label] + [_fmt_value(row.values[c], digits)
                               for c in result.columns]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def report_provenance(seed: Optional[int], backend: str,
                      extras: Optional[Dict[str, str]] = None
                      ) -> Dict[str, str]:
    """The version/seed/backend facts pinned in the report header."""
    import numpy
    facts = {
        "repro version": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "figure backend": figure_backend(),
        "execution backend": backend,
        "root seed": "fresh entropy" if seed is None else str(seed),
    }
    try:
        import scipy
        facts["scipy"] = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dep in practice
        facts["scipy"] = "not installed"
    if extras:
        facts.update(extras)
    return facts


@dataclass
class ReportSection:
    """One scenario's slice of the report."""

    name: str
    title: str
    paper_reference: str
    result: ExperimentResult
    artifacts: List[Artifact] = field(default_factory=list)
    cached: bool = False
    elapsed_seconds: float = 0.0
    key: Optional[str] = None
    reps: Optional[int] = None


def _relpath(path: str, report_dir: str) -> str:
    return os.path.relpath(path, report_dir).replace(os.sep, "/")


def render_report(sections: Sequence[ReportSection], report_dir: str,
                  provenance: Dict[str, str], digits: int = 6) -> str:
    """Assemble the full ``REPORT.md`` document text."""
    lines: List[str] = []
    lines.append("# Reproduction report — Shin & Lee (1983)")
    lines.append("")
    lines.append("Backward error recovery for concurrent processes with "
                 "recovery blocks (ICPP 1983): regenerated paper artifacts "
                 "with full provenance.")
    lines.append("")
    lines.append("## Provenance")
    lines.append("")
    lines.append("| fact | value |")
    lines.append("|---|---|")
    for fact, value in provenance.items():
        lines.append(f"| {fact} | {value} |")
    lines.append("")
    lines.append("## Contents")
    lines.append("")
    for section in sections:
        # GitHub heading anchors preserve underscores ("## figure5_full_chain"
        # -> "#figure5_full_chain"); scenario names are already slug-safe.
        anchor = section.name
        source = "store cache" if section.cached else \
            f"computed in {section.elapsed_seconds:.2f}s"
        lines.append(f"- [`{section.name}`](#{anchor}) — {section.title} "
                     f"({source})")
    lines.append("")

    for section in sections:
        lines.append(f"## {section.name}")
        lines.append("")
        lines.append(f"**{section.title}**")
        if section.paper_reference:
            lines.append("")
            lines.append(f"Reproduces: {section.paper_reference}")
        lines.append("")
        for artifact in section.artifacts:
            rel = _relpath(artifact.path, report_dir)
            if artifact.kind == "figure":
                lines.append(f"![{artifact.caption}]({rel})")
            else:
                lines.append(f"- [{artifact.caption}]({rel})")
            lines.append("")
        lines.append(result_to_markdown_table(section.result, digits))
        lines.append("")
        if section.result.notes:
            lines.append(f"*{section.result.notes}*")
            lines.append("")
        run_facts = ["cache hit" if section.cached
                     else f"computed, {section.elapsed_seconds:.2f}s"]
        if section.reps is not None:
            run_facts.append(f"reps={section.reps}")
        if section.key:
            run_facts.append(f"store key `{section.key[:12]}…`")
        lines.append(f"<sub>run: {', '.join(run_facts)}</sub>")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
