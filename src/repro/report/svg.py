"""Dependency-free SVG line charts — the fallback figure backend.

The report pipeline prefers matplotlib when it is importable
(:mod:`repro.report.figures`); this module is the fallback that keeps
``python -m repro report`` fully functional on a bare numpy/scipy install.
It renders a deliberately small vocabulary — multi-series line charts with
linear or logarithmic y axes — as standalone ``.svg`` files that GitHub and
any browser display inline.

Styling follows a fixed design: categorical series colors assigned in a
fixed order (never cycled past the palette), 2px lines with 8px markers,
a recessive grid, text in neutral ink rather than series colors, and a
legend whenever more than one series is drawn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["ChartSeries", "LineChart", "render_line_chart_svg"]

#: Fixed categorical hue order (validated light-mode palette); series beyond
#: the palette length are an error at the call site, not a cycled hue.
PALETTE = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
           "#e87ba4", "#008300", "#4a3aa7", "#e34948")

SURFACE = "#fcfcfb"
GRID = "#e7e6e2"
AXIS = "#b5b4ae"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
FONT = "system-ui, 'Segoe UI', Helvetica, Arial, sans-serif"

WIDTH, HEIGHT = 760, 440
MARGIN_LEFT, MARGIN_RIGHT = 70, 24
MARGIN_TOP, MARGIN_BOTTOM = 78, 58


@dataclass(frozen=True)
class ChartSeries:
    """One polyline: a label plus y values aligned with the chart's x grid."""

    label: str
    y: Sequence[float]


@dataclass
class LineChart:
    """Declarative description of a multi-series line chart."""

    title: str
    x_label: str
    y_label: str
    x: Sequence[float]
    series: List[ChartSeries] = field(default_factory=list)
    log_y: bool = False
    subtitle: str = ""

    def add_series(self, label: str, y: Sequence[float]) -> None:
        self.series.append(ChartSeries(label=label, y=list(y)))


def _nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Round tick positions on a 1-2-5 ladder covering ``[lo, hi]``."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(target, 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mult * mag
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-9 * span:
        ticks.append(0.0 if abs(value) < 1e-12 * span else value)
        value += step
    return ticks


def _log_ticks(lo: float, hi: float) -> List[float]:
    """Decade ticks covering a strictly positive ``[lo, hi]``."""
    ticks = [10.0 ** e for e in range(math.floor(math.log10(lo)),
                                      math.ceil(math.log10(hi)) + 1)]
    return ticks


def _fmt(value: float) -> str:
    if value != 0.0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
        return f"{value:.0e}".replace("e+0", "e").replace("e-0", "e-")
    text = f"{value:.6g}"
    return text


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def render_line_chart_svg(chart: LineChart) -> str:
    """Render *chart* to a standalone SVG document string."""
    if not chart.series:
        raise ValueError("a chart needs at least one series")
    if len(chart.series) > len(PALETTE):
        raise ValueError(f"at most {len(PALETTE)} series per chart; "
                         "fold the rest or split the figure")

    xs = [float(v) for v in chart.x]
    ys = [float(v) for s in chart.series for v in s.y
          if math.isfinite(float(v))]
    if not ys:
        raise ValueError("no finite y values to plot")

    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if chart.log_y:
        positive = [v for v in ys if v > 0.0]
        if not positive:
            raise ValueError("log-scale chart needs positive values")
        y_lo, y_hi = min(positive), max(positive)
        if y_lo == y_hi:                 # constant series: pad a decade around
            y_lo, y_hi = y_lo / 10.0, y_hi * 10.0
        y_ticks = _log_ticks(y_lo, y_hi)
        y_lo, y_hi = min(y_ticks[0], y_lo), max(y_ticks[-1], y_hi)

        def y_pos(v: float) -> Optional[float]:
            if v <= 0.0 or not math.isfinite(v):
                return None
            frac = (math.log10(v) - math.log10(y_lo)) / \
                   (math.log10(y_hi) - math.log10(y_lo))
            return HEIGHT - MARGIN_BOTTOM - frac * (HEIGHT - MARGIN_TOP - MARGIN_BOTTOM)
    else:
        y_lo, y_hi = min(ys + [0.0]) if min(ys) >= 0.0 else min(ys), max(ys)
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        y_ticks = _nice_ticks(y_lo, y_hi)
        y_lo = min(y_lo, y_ticks[0])
        y_hi = max(y_hi, y_ticks[-1])

        def y_pos(v: float) -> Optional[float]:
            if not math.isfinite(v):
                return None
            frac = (v - y_lo) / (y_hi - y_lo)
            return HEIGHT - MARGIN_BOTTOM - frac * (HEIGHT - MARGIN_TOP - MARGIN_BOTTOM)

    def x_pos(v: float) -> float:
        frac = (v - x_lo) / (x_hi - x_lo)
        return MARGIN_LEFT + frac * (WIDTH - MARGIN_LEFT - MARGIN_RIGHT)

    x_ticks = [t for t in _nice_ticks(x_lo, x_hi, target=7)
               if x_lo - 1e-9 <= t <= x_hi + 1e-9]

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" role="img" '
        f'aria-label="{_escape(chart.title)}">')
    parts.append(f'<rect width="{WIDTH}" height="{HEIGHT}" fill="{SURFACE}"/>')
    parts.append(f'<text x="{MARGIN_LEFT}" y="26" font-family="{FONT}" '
                 f'font-size="16" font-weight="600" fill="{TEXT_PRIMARY}">'
                 f'{_escape(chart.title)}</text>')
    if chart.subtitle:
        parts.append(f'<text x="{MARGIN_LEFT}" y="44" font-family="{FONT}" '
                     f'font-size="12" fill="{TEXT_SECONDARY}">'
                     f'{_escape(chart.subtitle)}</text>')

    # Legend: one row of swatches under the title (only with >= 2 series; a
    # single series is named by the title).
    if len(chart.series) > 1:
        x_cursor = MARGIN_LEFT
        legend_y = 60 if chart.subtitle else 48
        for idx, series in enumerate(chart.series):
            color = PALETTE[idx]
            parts.append(f'<rect x="{x_cursor}" y="{legend_y - 9}" width="14" '
                         f'height="4" rx="2" fill="{color}"/>')
            label = _escape(series.label)
            parts.append(f'<text x="{x_cursor + 19}" y="{legend_y}" '
                         f'font-family="{FONT}" font-size="12" '
                         f'fill="{TEXT_SECONDARY}">{label}</text>')
            x_cursor += 19 + 7 * len(series.label) + 22

    # Grid + y axis labels (recessive).
    for tick in y_ticks:
        y = y_pos(tick)
        if y is None or not (MARGIN_TOP - 1 <= y <= HEIGHT - MARGIN_BOTTOM + 1):
            continue
        parts.append(f'<line x1="{MARGIN_LEFT}" y1="{y:.1f}" '
                     f'x2="{WIDTH - MARGIN_RIGHT}" y2="{y:.1f}" '
                     f'stroke="{GRID}" stroke-width="1"/>')
        parts.append(f'<text x="{MARGIN_LEFT - 8}" y="{y + 4:.1f}" '
                     f'font-family="{FONT}" font-size="11" text-anchor="end" '
                     f'fill="{TEXT_SECONDARY}">{_fmt(tick)}</text>')

    # x axis baseline, ticks and labels.
    base_y = HEIGHT - MARGIN_BOTTOM
    parts.append(f'<line x1="{MARGIN_LEFT}" y1="{base_y}" '
                 f'x2="{WIDTH - MARGIN_RIGHT}" y2="{base_y}" '
                 f'stroke="{AXIS}" stroke-width="1"/>')
    for tick in x_ticks:
        x = x_pos(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{base_y}" x2="{x:.1f}" '
                     f'y2="{base_y + 4}" stroke="{AXIS}" stroke-width="1"/>')
        parts.append(f'<text x="{x:.1f}" y="{base_y + 18}" '
                     f'font-family="{FONT}" font-size="11" text-anchor="middle" '
                     f'fill="{TEXT_SECONDARY}">{_fmt(tick)}</text>')
    parts.append(f'<text x="{(MARGIN_LEFT + WIDTH - MARGIN_RIGHT) / 2:.1f}" '
                 f'y="{HEIGHT - 16}" font-family="{FONT}" font-size="12" '
                 f'text-anchor="middle" fill="{TEXT_SECONDARY}">'
                 f'{_escape(chart.x_label)}</text>')
    mid_y = (MARGIN_TOP + HEIGHT - MARGIN_BOTTOM) / 2
    parts.append(f'<text x="18" y="{mid_y:.1f}" font-family="{FONT}" '
                 f'font-size="12" text-anchor="middle" fill="{TEXT_SECONDARY}" '
                 f'transform="rotate(-90 18 {mid_y:.1f})">'
                 f'{_escape(chart.y_label)}</text>')

    # Series polylines + markers (2px lines, 8px markers).
    for idx, series in enumerate(chart.series):
        color = PALETTE[idx]
        points: List[Tuple[float, float]] = []
        for xv, yv in zip(xs, series.y):
            y = y_pos(float(yv))
            if y is not None:
                points.append((x_pos(xv), y))
        if not points:
            continue
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        parts.append(f'<polyline points="{path}" fill="none" stroke="{color}" '
                     f'stroke-width="2" stroke-linejoin="round" '
                     f'stroke-linecap="round"/>')
        for x, y in points:
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                         f'fill="{color}" stroke="{SURFACE}" stroke-width="1.5"/>')

    parts.append("</svg>")
    return "\n".join(parts) + "\n"
