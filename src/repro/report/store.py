"""The content-addressed result store.

Every experiment run is a *cell*: a scenario name plus its canonicalised
parameters, root seed, replication budget and the code version that produced
it.  :class:`ResultStore` addresses cells by the SHA-256 of that canonical
identity, so

* re-running an identical cell is a **cache hit** — the stored
  :class:`~repro.experiments.common.ExperimentResult` is reloaded instead of
  recomputed, which is what lets interrupted large-n sweeps resume;
* any change to the parameters, the seed, the budget or the package version
  yields a **different key**, so stale results can never shadow fresh ones.

The execution backend is deliberately *not* part of the key: the runner
guarantees bit-identical results across serial and process-pool execution
(see :mod:`repro.runner.runner`), so a cell computed on one backend is valid
for all of them.  The backend that actually produced a record is still kept
in its metadata for provenance.

On-disk layout (all JSON, human-diffable)::

    <root>/
        index.jsonl                     append-only run log (metadata only)
        objects/<scenario>/<key>.json   full envelope incl. the result

Writes are atomic (temp file + ``os.replace``), so a killed sweep never
leaves a truncated object behind; at worst the index lags the objects, and
the index is only advisory — lookups go straight to the object files.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, Iterator, List, Optional

try:                                    # POSIX inter-process file locking
    import fcntl
except ImportError:                     # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro._version import __version__
from repro.experiments.common import ExperimentResult

__all__ = ["FileLock", "ResultStore", "StoreRecord", "canonical_params",
           "store_key", "strict_jsonable"]

#: Bumped when the envelope layout changes incompatibly.
STORE_FORMAT = 1


class FileLock:
    """Advisory inter-process mutex over a sidecar lock file.

    Two processes appending to the same ``index.jsonl`` concurrently could
    interleave their lines (a single ``write`` is only atomic up to
    ``PIPE_BUF``), so every index append happens under an exclusive
    ``flock`` on ``<index>.lock``.  Re-entrant use within one process is not
    supported (and not needed — the store takes the lock around one append).

    On platforms without :mod:`fcntl` the lock degrades to a no-op: the
    atomic object writes still guarantee the *objects* are never partial,
    and the index is advisory (lookups go to the object files).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fd: Optional[int] = None

    def __enter__(self) -> "FileLock":
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        if fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


def strict_jsonable(value):
    """Recursively replace non-finite floats with ``"inf"``-style strings.

    Strict JSON has no NaN/Infinity literals, and ``json.dump`` would emit
    Python-only tokens that jq/browsers reject.  String stand-ins keep the
    files standard; ``float("inf")``/``float("nan")`` parse them right back
    (which is what :meth:`ExperimentResult.from_dict` does).
    """
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)                       # 'inf' / '-inf' / 'nan'
    if isinstance(value, dict):
        return {k: strict_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [strict_jsonable(v) for v in value]
    return value


def canonical_params(value):
    """Reduce a parameter value to a canonical JSON-stable form.

    Tuples become lists, numpy scalars become Python scalars, mapping keys
    become strings — so ``(1, 2)`` and ``[1, 2]`` (or ``np.float64(0.5)`` and
    ``0.5``) address the same cell, and the canonical form survives a JSON
    round trip unchanged.

    Non-finite floats are rejected: the key digest would hash them as raw
    ``NaN``/``Infinity`` JSON tokens while :func:`strict_jsonable` persists
    them as ``"nan"``-style strings, so a stored envelope could never
    re-derive its own key.  They are never legitimate cell parameters.
    """
    if isinstance(value, dict):
        return {str(k): canonical_params(v) for k, v in sorted(value.items(),
                                                               key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical_params(v) for v in value]
    if hasattr(value, "item") and callable(value.item):    # numpy scalars
        return canonical_params(value.item())
    if isinstance(value, float) and not math.isfinite(value):
        raise TypeError(
            f"parameter value {value!r} is not a finite number; non-finite "
            "floats cannot address a store cell (their canonical JSON and "
            "their persisted form diverge, so the stored envelope could "
            "never re-derive its key)")
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"parameter value {value!r} ({type(value).__name__}) is "
                    "not storable; use JSON-representable scenario parameters")


def store_key(scenario: str, params: Dict[str, object],
              seed: Optional[int], reps: Optional[int],
              version: str = __version__) -> str:
    """SHA-256 content address of one ``(scenario, params, seed, reps)`` cell.

    The digest covers the canonical JSON of the full identity, including
    *version*, so results produced by different releases of the code never
    collide.
    """
    identity = {
        "scenario": scenario,
        "params": canonical_params(dict(params)),
        # seed/reps go through the same canonicalisation as params so that
        # numpy integers (np.int64 from an arange sweep, say) key — and
        # serialize — identically to plain ints.
        "seed": canonical_params(seed),
        "reps": canonical_params(reps),
        "version": version,
    }
    # canonical_params already rejected non-finite floats; allow_nan=False
    # keeps that invariant load-bearing (a bypass fails loudly, not quietly
    # minting a key no stored envelope can re-derive).
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreRecord:
    """One stored run: the result plus the metadata that addressed it."""

    key: str
    scenario: str
    params: Dict[str, object]
    seed: Optional[int]
    reps: Optional[int]
    backend: str
    elapsed_seconds: float
    version: str
    created_at: str
    result: ExperimentResult

    def to_envelope(self) -> Dict[str, object]:
        """The full JSON object file, result included."""
        return {
            "format": STORE_FORMAT,
            "key": self.key,
            "scenario": self.scenario,
            "params": self.params,
            "seed": self.seed,
            "reps": self.reps,
            "backend": self.backend,
            "elapsed_seconds": self.elapsed_seconds,
            "version": self.version,
            "created_at": self.created_at,
            "result": self.result.to_dict(),
        }

    def metadata(self) -> Dict[str, object]:
        """The ``index.jsonl`` line: everything except the result rows."""
        meta = self.to_envelope()
        del meta["result"]
        return meta

    @classmethod
    def from_envelope(cls, envelope: Dict[str, object]) -> "StoreRecord":
        return cls(
            key=str(envelope["key"]),
            scenario=str(envelope["scenario"]),
            params=dict(envelope["params"]),
            seed=envelope["seed"],
            reps=envelope["reps"],
            backend=str(envelope["backend"]),
            elapsed_seconds=float(envelope["elapsed_seconds"]),
            version=str(envelope["version"]),
            created_at=str(envelope["created_at"]),
            result=ExperimentResult.from_dict(envelope["result"]),
        )


class ResultStore:
    """Content-addressed artifact directory for experiment results.

    The three-method surface the runner's persistence hook consumes is
    :meth:`key` / :meth:`get` / :meth:`put`; everything else is inspection
    convenience.  A store is cheap to construct — directories are created
    lazily on first write, so pointing one at a read-only location is fine
    as long as only lookups happen.

    >>> store = ResultStore("reports/store")                # doctest: +SKIP
    >>> runner = ExperimentRunner(seed=7, store=store)      # doctest: +SKIP
    >>> runner.run("table1")   # computed, then written through
    >>> runner.run("table1")   # served from the store, not re-run
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)

    # ------------------------------------------------------------------ paths
    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.jsonl")

    @property
    def index_lock_path(self) -> str:
        return self.index_path + ".lock"

    def object_path(self, key: str, scenario: str) -> str:
        return os.path.join(self.root, "objects", scenario, f"{key}.json")

    # ------------------------------------------------------------------ hook surface
    def key(self, scenario: str, params: Dict[str, object],
            seed: Optional[int], reps: Optional[int]) -> str:
        """Content address of the cell under the *current* code version."""
        return store_key(scenario, params, seed, reps)

    def get(self, key: str, scenario: Optional[str] = None
            ) -> Optional[StoreRecord]:
        """Load a stored record by key, or ``None`` when absent.

        ``scenario`` narrows the lookup to one object subdirectory; without
        it every scenario directory is scanned (keys are globally unique, so
        the first match is the only match).
        """
        for path in self._candidate_paths(key, scenario):
            if os.path.isfile(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return StoreRecord.from_envelope(json.load(handle))
        return None

    def put(self, scenario: str, params: Dict[str, object],
            seed: Optional[int], reps: Optional[int], *, backend: str,
            elapsed_seconds: float, result: ExperimentResult) -> StoreRecord:
        """Persist one run atomically and append it to the index."""
        record = StoreRecord(
            key=self.key(scenario, params, seed, reps),
            scenario=scenario,
            params=canonical_params(dict(params)),
            seed=canonical_params(seed),
            reps=canonical_params(reps),
            backend=backend,
            elapsed_seconds=float(elapsed_seconds),
            version=__version__,
            created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            result=result,
        )
        path = self.object_path(record.key, scenario)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._write_atomic(path, record.to_envelope())
        line = json.dumps(strict_jsonable(record.metadata()),
                          sort_keys=True, allow_nan=False) + "\n"
        # The lock serialises concurrent writers (processes *and* threads)
        # on this index, so lines never interleave however large they are.
        with FileLock(self.index_lock_path):
            with open(self.index_path, "a", encoding="utf-8") as handle:
                handle.write(line)
        return record

    # ------------------------------------------------------------------ inspection
    def contains(self, key: str) -> bool:
        return any(os.path.isfile(p) for p in self._candidate_paths(key, None))

    def records(self) -> Iterator[Dict[str, object]]:
        """Iterate the index metadata lines, oldest first.

        A process killed mid-append leaves a truncated (or otherwise
        undecodable) trailing line behind; the index is advisory — the
        object files are the authority — so such lines are *skipped*, not
        raised, and :meth:`compact` rebuilds a clean index from the objects.
        """
        if not os.path.isfile(self.index_path):
            return
        with open(self.index_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue                      # crash-truncated append
                if isinstance(entry, dict):
                    yield entry

    def envelopes(self) -> Iterator[Dict[str, object]]:
        """Iterate the full object envelopes (result included), sorted by
        scenario then key.

        Unlike :meth:`records` this reads the **object files** — the
        authority — so a truncated or lagging ``index.jsonl`` never hides a
        stored cell.  This is the read path of the analytics warehouse ETL
        (:mod:`repro.warehouse`), which must see exactly the cells
        :meth:`compact` would rebuild the index from.
        """
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return
        for scenario in sorted(os.listdir(objects)):
            subdir = os.path.join(objects, scenario)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if not name.endswith(".json"):
                    continue
                with open(os.path.join(subdir, name), "r",
                          encoding="utf-8") as handle:
                    yield json.load(handle)

    def __len__(self) -> int:
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return 0
        return sum(name.endswith(".json")
                   for _, _, files in os.walk(objects) for name in files)

    def compact(self) -> int:
        """Rewrite ``index.jsonl`` from the object files; return the count.

        The objects are the source of truth (every write lands there
        atomically before the index append), so compaction repairs any
        index damage — truncated trailing lines, appends lost to a crash
        between object write and index append — and drops duplicate lines
        left by forced re-runs.  Entries are ordered by ``created_at`` then
        key, so a compacted index is deterministic for a given object set.
        """
        entries: List[Dict[str, object]] = []
        objects = os.path.join(self.root, "objects")
        if os.path.isdir(objects):
            for scenario in sorted(os.listdir(objects)):
                subdir = os.path.join(objects, scenario)
                if not os.path.isdir(subdir):
                    continue
                for name in sorted(os.listdir(subdir)):
                    if not name.endswith(".json"):
                        continue
                    with open(os.path.join(subdir, name), "r",
                              encoding="utf-8") as handle:
                        envelope = json.load(handle)
                    envelope.pop("result", None)
                    entries.append(envelope)
        entries.sort(key=lambda e: (str(e.get("created_at", "")),
                                    str(e.get("key", ""))))
        os.makedirs(self.root, exist_ok=True)
        with FileLock(self.index_lock_path):
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    for entry in entries:
                        handle.write(json.dumps(strict_jsonable(entry),
                                                sort_keys=True,
                                                allow_nan=False) + "\n")
                os.replace(tmp, self.index_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        return len(entries)

    # ------------------------------------------------------------------ internals
    def _candidate_paths(self, key: str, scenario: Optional[str]) -> List[str]:
        if scenario is not None:
            return [self.object_path(key, scenario)]
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return []
        return [os.path.join(objects, sub, f"{key}.json")
                for sub in sorted(os.listdir(objects))]

    @staticmethod
    def _write_atomic(path: str, payload: Dict[str, object]) -> None:
        directory = os.path.dirname(path)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(strict_jsonable(payload), handle, indent=2,
                          sort_keys=True, allow_nan=False)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
