"""Keyspace-sharded result store: many writers, no single index bottleneck.

:class:`ShardedResultStore` partitions the content-addressed keyspace of
:class:`~repro.report.store.ResultStore` into a fixed number of shards, each
an ordinary flat store (its own ``index.jsonl``, its own index lock, its own
``objects/`` tree).  Cells land in the shard selected by their key prefix, so

* concurrent writers only contend when they hit the *same* shard — with the
  default 16 shards a pool of workers appending results no longer serialises
  on one index file;
* millions of cached cells split their index across shards instead of
  growing one ``index.jsonl`` without bound.

Because the SHA-256 keys are uniformly distributed, the prefix partition is
balanced by construction and — crucially — *pure*: a key always maps to the
same shard, so lookups are a single path probe, exactly like the flat store.

On-disk layout::

    <root>/
        sharding.json                   {"format": 1, "shards": 16}
        shards/00/index.jsonl           shard 0 (an ordinary flat store)
        shards/00/objects/<scenario>/<key>.json
        ...
        shards/0f/...
        index.jsonl                     optional: a pre-sharding legacy store
        objects/<scenario>/<key>.json   (read through transparently)

The shard count is persisted in ``sharding.json`` on first write and honoured
on reopen — reopening with a conflicting explicit count is an error, since
rehashing keys against a different modulus would orphan every stored cell.

**Legacy migration.**  A sharded store rooted at an existing flat store reads
the flat layout through transparently (shard probe first, flat ``objects/``
second), so pointing ``python -m repro serve`` at a pre-existing store loses
nothing.  :meth:`migrate` moves the legacy objects into their shards (atomic
per-object ``os.replace``) and rebuilds the shard indexes, after which the
flat layout is empty and every lookup is a one-probe shard hit.

The store duck-types the same ``key``/``get``/``put`` hook surface the runner
consumes, so it drops in anywhere a :class:`ResultStore` does.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional

from repro.experiments.common import ExperimentResult
from repro.report.store import (FileLock, ResultStore, StoreRecord, store_key)

__all__ = ["DEFAULT_SHARDS", "ShardedResultStore", "shard_of_key"]

#: Default shard count.  Enough to make index contention negligible for a
#: pool of local workers while keeping the directory fan-out tiny; stores
#: that expect heavier write concurrency can pass a larger power of two.
DEFAULT_SHARDS = 16

#: Name of the persisted shard-layout config file.
SHARDING_CONFIG = "sharding.json"

#: Format version of ``sharding.json``.
SHARDING_FORMAT = 1


def shard_of_key(key: str, shards: int) -> int:
    """The shard index of a store key: its leading hex, modulo *shards*.

    Uses the first 8 hex digits (32 uniformly-distributed bits), so any
    shard count — not just powers of two — partitions evenly.
    """
    return int(key[:8], 16) % shards


class ShardedResultStore:
    """A :class:`ResultStore`-compatible store partitioned by key prefix.

    Parameters
    ----------
    root:
        Store directory.  May be empty, an existing sharded store, or an
        existing *flat* store (whose cells are served via read-through until
        :meth:`migrate` moves them into shards).
    shards:
        Shard count for a *new* store; ``None`` adopts the persisted count
        (or :data:`DEFAULT_SHARDS` when the store is new).  Passing a count
        that conflicts with the persisted ``sharding.json`` raises — the
        partition function is part of the on-disk layout.
    """

    def __init__(self, root: str, shards: Optional[int] = None) -> None:
        self.root = os.fspath(root)
        persisted = self._read_config()
        if persisted is not None:
            if shards is not None and int(shards) != persisted:
                raise ValueError(
                    f"store at {self.root} is sharded {persisted} ways; "
                    f"cannot reopen it with shards={shards} (the partition "
                    "function is part of the layout)")
            self.shards = persisted
        else:
            if shards is not None and int(shards) < 1:
                raise ValueError("shards must be >= 1")
            self.shards = int(shards) if shards is not None else DEFAULT_SHARDS
        #: The pre-sharding flat layout at the root, read through on misses.
        self._legacy = ResultStore(self.root)
        self._shard_stores: Dict[int, ResultStore] = {}

    # ------------------------------------------------------------------ layout
    @property
    def config_path(self) -> str:
        return os.path.join(self.root, SHARDING_CONFIG)

    def _read_config(self) -> Optional[int]:
        if not os.path.isfile(self.config_path):
            return None
        with open(self.config_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        shards = int(payload["shards"])
        if shards < 1:
            raise ValueError(f"corrupt {self.config_path}: shards={shards}")
        return shards

    def _write_config(self) -> None:
        if os.path.isfile(self.config_path):
            return
        os.makedirs(self.root, exist_ok=True)
        with FileLock(self.config_path + ".lock"):
            if os.path.isfile(self.config_path):     # lost the creation race
                return
            tmp = self.config_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"format": SHARDING_FORMAT, "shards": self.shards},
                          handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.config_path)

    def shard_root(self, index: int) -> str:
        return os.path.join(self.root, "shards", f"{index:02x}")

    def shard_store(self, index: int) -> ResultStore:
        """The flat :class:`ResultStore` backing shard *index*."""
        store = self._shard_stores.get(index)
        if store is None:
            store = self._shard_stores[index] = ResultStore(
                self.shard_root(index))
        return store

    def shard_for(self, key: str) -> ResultStore:
        return self.shard_store(shard_of_key(key, self.shards))

    # ------------------------------------------------------------------ hook surface
    def key(self, scenario: str, params: Dict[str, object],
            seed: Optional[int], reps: Optional[int]) -> str:
        """Content address of a cell — identical to the flat store's.

        Sharding partitions *where* a record lives, never *what addresses
        it*: the key function is byte-for-byte :func:`store_key`, so flat
        and sharded stores are cache-compatible.
        """
        return store_key(scenario, params, seed, reps)

    def get(self, key: str, scenario: Optional[str] = None
            ) -> Optional[StoreRecord]:
        """Load by key: one shard probe, then legacy flat read-through."""
        record = self.shard_for(key).get(key, scenario)
        if record is not None:
            return record
        return self._legacy.get(key, scenario)

    def put(self, scenario: str, params: Dict[str, object],
            seed: Optional[int], reps: Optional[int], *, backend: str,
            elapsed_seconds: float, result: ExperimentResult) -> StoreRecord:
        """Persist one run into its shard (per-shard index lock applies)."""
        self._write_config()
        key = self.key(scenario, params, seed, reps)
        return self.shard_for(key).put(
            scenario, params, seed, reps, backend=backend,
            elapsed_seconds=elapsed_seconds, result=result)

    # ------------------------------------------------------------------ inspection
    def contains(self, key: str) -> bool:
        return self.shard_for(key).contains(key) or self._legacy.contains(key)

    def records(self) -> Iterator[Dict[str, object]]:
        """Iterate all index metadata: legacy first, then shards in order.

        Within each component records come oldest first; across shards the
        interleaving is by shard index, not global timestamp.
        """
        yield from self._legacy.records()
        for index in range(self.shards):
            yield from self.shard_store(index).records()

    def envelopes(self) -> Iterator[Dict[str, object]]:
        """Iterate full object envelopes: legacy layout first, then shards.

        Reads the object files (the authority), like the flat store's
        :meth:`~repro.report.store.ResultStore.envelopes`; the warehouse ETL
        consumes this so flat and sharded stores load identically.
        """
        yield from self._legacy.envelopes()
        for index in range(self.shards):
            yield from self.shard_store(index).envelopes()

    def __len__(self) -> int:
        return len(self._legacy) + sum(len(self.shard_store(i))
                                       for i in range(self.shards))

    def compact(self) -> int:
        """Rebuild every shard index (and the legacy index) from objects."""
        total = self._legacy.compact()
        for index in range(self.shards):
            if os.path.isdir(self.shard_root(index)):
                total += self.shard_store(index).compact()
        return total

    # ------------------------------------------------------------------ migration
    def migrate(self) -> int:
        """Move legacy flat-layout objects into their shards; return count.

        Each object file is moved with an atomic ``os.replace`` into the
        shard selected by its key, so a crash mid-migration leaves every
        cell readable (either still in the flat layout — read through — or
        already in its shard).  Shard indexes are rebuilt from objects at
        the end; the legacy index is compacted down to whatever objects
        remain (none, after a complete pass).
        """
        objects = os.path.join(self.root, "objects")
        moved = 0
        touched: set = set()
        if os.path.isdir(objects):
            for scenario in sorted(os.listdir(objects)):
                subdir = os.path.join(objects, scenario)
                if not os.path.isdir(subdir):
                    continue
                for name in sorted(os.listdir(subdir)):
                    if not name.endswith(".json"):
                        continue
                    key = name[:-len(".json")]
                    shard = shard_of_key(key, self.shards)
                    target = self.shard_store(shard).object_path(key, scenario)
                    os.makedirs(os.path.dirname(target), exist_ok=True)
                    os.replace(os.path.join(subdir, name), target)
                    touched.add(shard)
                    moved += 1
                if not os.listdir(subdir):
                    os.rmdir(subdir)
            if os.path.isdir(objects) and not os.listdir(objects):
                os.rmdir(objects)
        if moved:
            self._write_config()
            for shard in sorted(touched):
                self.shard_store(shard).compact()
            self._legacy.compact()
        return moved
