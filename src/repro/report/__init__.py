"""Artifact persistence and paper-figure reporting (``repro.report``).

This package turns experiment runs from throwaway stdout into durable,
resumable artifacts:

``store``
    :class:`ResultStore` — a content-addressed artifact directory.  Every
    run is keyed by SHA-256 over (scenario, canonicalised params, seed,
    replication budget, code version); the
    :class:`~repro.runner.runner.ExperimentRunner` writes results through
    it and serves cache hits without re-executing, which is what lets an
    interrupted large-n sweep *resume* instead of recompute.
``sharded``
    :class:`ShardedResultStore` — the same store partitioned across
    per-shard indexes by key prefix, so many concurrent writers (the
    evaluation service, a worker pool) never serialise on one
    ``index.jsonl``.  Reads through pre-existing flat stores and migrates
    them in place.

Both store flavours expose ``envelopes()``, the authoritative
object-file iteration that feeds the analytics warehouse
(:mod:`repro.warehouse` — load every stored cell into SQLite and query
it with ``python -m repro query``).
``figures``
    The renderer registry mapping scenarios to paper artifacts (Figure 5,
    Figure 6, Table 1, the heterogeneous sweep) with a headless matplotlib
    backend when available and a dependency-free SVG fallback otherwise.
``svg``
    The fallback chart renderer itself (pure Python, no third-party deps).
``markdown``
    Markdown tables and the self-contained ``REPORT.md`` document with a
    provenance header (versions, seed, backends, figure backend).
``pipeline``
    :func:`generate_report` — the glue behind ``python -m repro report``:
    run missing cells through the store, render declared artifacts, emit
    the report.

Quickstart
----------
>>> from repro.report import generate_report
>>> summary = generate_report(["table1"], out_dir="reports")  # doctest: +SKIP
>>> summary.report_path                                       # doctest: +SKIP
'reports/REPORT.md'
"""

from repro.report.figures import (
    Artifact,
    figure_backend,
    register_renderer,
    render_artifacts,
    renderer_names,
)
from repro.report.markdown import (
    ReportSection,
    render_report,
    report_provenance,
    result_to_markdown_table,
)
from repro.report.pipeline import (
    ReportSummary,
    default_scenario_order,
    generate_report,
)
from repro.report.sharded import ShardedResultStore, shard_of_key
from repro.report.store import (FileLock, ResultStore, StoreRecord,
                                canonical_params, store_key)

__all__ = [
    "Artifact",
    "FileLock",
    "ReportSection",
    "ReportSummary",
    "ResultStore",
    "ShardedResultStore",
    "StoreRecord",
    "canonical_params",
    "default_scenario_order",
    "figure_backend",
    "generate_report",
    "register_renderer",
    "render_artifacts",
    "render_report",
    "renderer_names",
    "report_provenance",
    "result_to_markdown_table",
    "shard_of_key",
    "store_key",
]
