"""Single source of truth for the package version.

The version participates in the :class:`~repro.report.store.ResultStore`
content address: every stored artifact is stamped with it, and a version
bump invalidates cached cells (results produced by different code never
shadow each other).
"""

__version__ = "1.1.0"
