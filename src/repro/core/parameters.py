"""The stochastic system model of Section 2.1.

A :class:`SystemParameters` instance bundles the recovery-point establishment rates
``μ_i`` (Poisson, assumption 5 of the paper) and the pairwise interaction rates
``λ_ij`` (exponential inter-interaction times, assumption 3).  It is consumed by the
Markov analytic models, the Monte-Carlo model simulator and the full discrete-event
workloads, guaranteeing that all three describe *the same* system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.util.validation import as_float_array, check_positive, check_symmetric_rates

__all__ = ["SystemParameters"]


@dataclass(frozen=True)
class SystemParameters:
    """Rates describing a set of cooperating concurrent processes.

    Attributes
    ----------
    mu:
        Length-``n`` array; ``mu[i]`` is the Poisson rate at which process ``P_i``
        establishes recovery points.
    lam:
        ``n × n`` symmetric matrix with zero diagonal; ``lam[i, j]`` is the rate of
        interactions between ``P_i`` and ``P_j`` (the paper's ``λ_ij = λ_ji``).
    """

    mu: np.ndarray
    lam: np.ndarray

    def __post_init__(self) -> None:
        mu = as_float_array(self.mu, name="mu")
        if np.any(mu <= 0.0):
            raise ValueError("all recovery-point rates μ_i must be strictly positive")
        lam = check_symmetric_rates(np.asarray(self.lam, dtype=float), name="lam")
        if lam.shape[0] != mu.shape[0]:
            raise ValueError(
                f"mu has {mu.shape[0]} processes but lam is {lam.shape[0]}×{lam.shape[1]}")
        mu.setflags(write=False)
        lam.setflags(write=False)
        object.__setattr__(self, "mu", mu)
        object.__setattr__(self, "lam", lam)

    # ------------------------------------------------------------------ factories
    @classmethod
    def symmetric(cls, n: int, mu: float, lam: float) -> "SystemParameters":
        """Homogeneous system: ``μ_i = mu`` and ``λ_ij = lam`` for every pair."""
        n = int(n)
        if n < 1:
            raise ValueError("need at least one process")
        check_positive(mu, "mu")
        if lam < 0.0:
            raise ValueError("lam must be non-negative")
        matrix = np.full((n, n), float(lam))
        np.fill_diagonal(matrix, 0.0)
        return cls(mu=np.full(n, float(mu)), lam=matrix)

    @classmethod
    def from_pair_rates(cls, mu: Sequence[float],
                        pair_rates: Iterable[Tuple[int, int, float]]
                        ) -> "SystemParameters":
        """Build from per-process ``μ`` and an iterable of ``(i, j, λ_ij)`` triples.

        Unlisted pairs get rate 0.  This is the convenient way to express the
        three-process cases of Table 1 where the rates are given as
        ``(λ_12, λ_23, λ_31)``.
        """
        mu_arr = as_float_array(mu, name="mu")
        n = mu_arr.shape[0]
        matrix = np.zeros((n, n))
        for i, j, rate in pair_rates:
            if i == j:
                raise ValueError("pair rates must connect two distinct processes")
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"pair ({i}, {j}) out of range for n={n}")
            matrix[i, j] = matrix[j, i] = float(rate)
        return cls(mu=mu_arr, lam=matrix)

    @classmethod
    def three_process(cls, mu: Sequence[float],
                      lam_12_23_31: Sequence[float]) -> "SystemParameters":
        """The paper's three-process parameterisation ``(λ_12, λ_23, λ_31)``."""
        mu = list(mu)
        lam = list(lam_12_23_31)
        if len(mu) != 3 or len(lam) != 3:
            raise ValueError("three_process requires exactly three μ and three λ values")
        return cls.from_pair_rates(mu, [(0, 1, lam[0]), (1, 2, lam[1]), (2, 0, lam[2])])

    # ------------------------------------------------------------------ properties
    @property
    def n(self) -> int:
        """Number of cooperating processes."""
        return int(self.mu.shape[0])

    @property
    def total_rp_rate(self) -> float:
        """``Σ_k μ_k`` — the aggregate recovery-point establishment rate."""
        return float(self.mu.sum())

    @property
    def total_interaction_rate(self) -> float:
        """``Σ_{i<j} λ_ij`` — aggregate rate of pairwise interactions."""
        return float(np.triu(self.lam, k=1).sum())

    @property
    def rho(self) -> float:
        """Relative communication density ``ρ = (Σ_{i≠j} λ_ij) / (Σ_k μ_k)``.

        This matches the caption of Figure 5 (``ρ = 2 Σ_{i<j} λ / Σ μ_k``): the
        numerator counts each unordered pair twice.
        """
        return 2.0 * self.total_interaction_rate / self.total_rp_rate

    @property
    def pairs(self) -> List[Tuple[int, int]]:
        """All unordered pairs ``(i, j)`` with ``i < j`` and ``λ_ij > 0``."""
        return [(i, j) for i in range(self.n) for j in range(i + 1, self.n)
                if self.lam[i, j] > 0.0]

    def pair_rate(self, i: int, j: int) -> float:
        """Interaction rate of the unordered pair ``{i, j}``."""
        if i == j:
            raise ValueError("no self-interaction rate")
        return float(self.lam[i, j])

    def interaction_rate_of(self, i: int) -> float:
        """Total interaction rate seen by process ``i``: ``Σ_j λ_ij``."""
        return float(self.lam[i].sum())

    def uniformization_constant(self) -> float:
        """The paper's normalisation factor ``G = Σ_{i<j} λ_ij + Σ_k μ_k``."""
        return self.total_interaction_rate + self.total_rp_rate

    def is_symmetric(self, atol: float = 1e-12) -> bool:
        """True when all ``μ_i`` are equal and all off-diagonal ``λ_ij`` are equal."""
        if not np.allclose(self.mu, self.mu[0], atol=atol):
            return False
        if self.n < 2:
            return True
        off = self.lam[~np.eye(self.n, dtype=bool)]
        return bool(np.allclose(off, off[0], atol=atol))

    def scaled(self, factor: float) -> "SystemParameters":
        """Return parameters with every rate multiplied by *factor* (time rescaling)."""
        check_positive(factor, "factor")
        return SystemParameters(mu=self.mu * factor, lam=self.lam * factor)

    def with_rho(self, rho: float) -> "SystemParameters":
        """Return parameters whose λ matrix is rescaled to achieve density *rho*.

        The μ values are kept; only the interaction rates are scaled.  Raises when
        the system has no interacting pair.
        """
        if rho < 0.0:
            raise ValueError("rho must be non-negative")
        current = self.rho
        if current == 0.0:
            if rho == 0.0:
                return self
            raise ValueError("cannot rescale a system with zero interaction rate")
        return SystemParameters(mu=self.mu, lam=self.lam * (rho / current))

    def describe(self) -> str:
        """One-line description used by the experiment harness."""
        mu = ", ".join(f"{m:g}" for m in self.mu)
        pairs = ", ".join(f"λ_{i + 1}{j + 1}={self.lam[i, j]:g}"
                          for i, j in self.pairs)
        return f"n={self.n}; μ=({mu}); {pairs if pairs else 'no interactions'}; ρ={self.rho:.3f}"
