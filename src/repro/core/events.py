"""Event records and event logs.

The discrete-event simulator and the recovery-block runtimes emit
:class:`Event` records into an :class:`EventLog`.  The log can be replayed, filtered
and converted into a :class:`~repro.core.history.HistoryDiagram` for recovery-line
and rollback analysis — keeping *measurement* separate from *execution*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.core.types import EventKind, ProcessId

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True, order=True)
class Event:
    """A single timestamped event in an execution trace.

    ``data`` carries event-kind-specific payload (e.g. the peer process of an
    interaction, the index of a recovery point, the verdict of an acceptance test).
    It does not participate in ordering or equality so that logs can be compared
    structurally in tests.
    """

    time: float
    kind: EventKind
    process: ProcessId
    seq: int = 0
    data: Dict[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ValueError("event time must be non-negative")


class EventLog:
    """Append-only, time-ordered log of :class:`Event` records.

    Events must be appended in non-decreasing time order (the simulator guarantees
    this); a monotonic sequence number breaks ties deterministically.
    """

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._seq = 0
        self._last_time = float("-inf")

    # ------------------------------------------------------------------ recording
    def append(self, time: float, kind: EventKind, process: ProcessId,
               **data: object) -> Event:
        """Record an event and return it."""
        if time < self._last_time - 1e-12:
            raise ValueError(
                f"events must be appended in time order: {time} < {self._last_time}")
        # ``data`` is the fresh dict the ** call convention built — it is
        # owned by this call, so handing it to the Event needs no copy.
        event = Event(time=float(time), kind=kind, process=int(process),
                      seq=self._seq, data=data)
        self._events.append(event)
        self._last_time = event.time
        self._seq += 1
        return event

    def extend(self, events: Iterable[Event]) -> None:
        for event in events:
            self.append(event.time, event.kind, event.process, **event.data)

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> List[Event]:
        """A copy of the recorded events."""
        return list(self._events)

    @property
    def end_time(self) -> float:
        return self._events[-1].time if self._events else 0.0

    def filter(self, *, kind: Optional[EventKind] = None,
               process: Optional[ProcessId] = None,
               predicate: Optional[Callable[[Event], bool]] = None) -> List[Event]:
        """Return events matching the given criteria."""
        out = []
        for event in self._events:
            if kind is not None and event.kind is not kind:
                continue
            if process is not None and event.process != process:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def count(self, kind: EventKind, process: Optional[ProcessId] = None) -> int:
        """Number of events of *kind* (optionally restricted to one process)."""
        return len(self.filter(kind=kind, process=process))

    def processes(self) -> List[ProcessId]:
        """Sorted list of process ids appearing in the log."""
        return sorted({event.process for event in self._events})

    # ------------------------------------------------------------------ conversion
    def to_history(self, n_processes: Optional[int] = None):
        """Build a :class:`~repro.core.history.HistoryDiagram` from this log.

        Recovery-point events (regular and pseudo) and interaction events are
        translated; other event kinds are ignored.  Interaction events are expected
        to carry a ``peer`` entry and, to avoid double counting, only the *sender*
        side (``initiator=True`` or absence of the flag on exactly one side) is
        converted.
        """
        from repro.core.history import HistoryDiagram
        from repro.core.types import CheckpointKind

        if n_processes is None:
            procs = self.processes()
            n_processes = (max(procs) + 1) if procs else 0
        history = HistoryDiagram(n_processes)
        for event in self._events:
            if event.kind is EventKind.RECOVERY_POINT:
                history.add_recovery_point(event.process, event.time,
                                           kind=CheckpointKind.REGULAR)
            elif event.kind is EventKind.PSEUDO_RECOVERY_POINT:
                origin = event.data.get("origin")
                history.add_recovery_point(event.process, event.time,
                                           kind=CheckpointKind.PSEUDO,
                                           origin=origin)
            elif event.kind is EventKind.INTERACTION:
                if not event.data.get("initiator", True):
                    continue
                peer = event.data.get("peer")
                if peer is None:
                    raise ValueError("interaction event missing 'peer' entry")
                receive_time = float(event.data.get("receive_time", event.time))
                history.add_interaction(event.process, int(peer), event.time,
                                        receive_time=receive_time)
        return history

    def summary(self) -> Dict[str, int]:
        """Event counts per kind (string keyed, for readable test assertions)."""
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind.value] = out.get(event.kind.value, 0) + 1
        return out
