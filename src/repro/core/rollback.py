"""Rollback propagation and domino-effect analysis.

When a process fails its acceptance test (or detects an error), it rolls back to a
previous checkpoint.  Because of inter-process communication the rollback can force
other processes back as well — *rollback propagation* — and in the worst case the
avalanche (the *domino effect*) pushes every process to its beginning.  This module
computes, for a given history and failure, the restart point of every process, the
per-process and maximum rollback distances, and whether the domino effect occurred.

The algorithm is the standard fixpoint over "orphan" interactions: if process ``i``
restarts at time ``r_i``, every interaction it participated in after ``r_i`` is
invalidated, and each peer ``j`` of such an interaction must restart at a checkpoint
taken *before* that interaction; iterate until no new invalidation appears.  This is
exactly the propagation the paper illustrates with Figure 1 (P1 fails AT₁⁴, the
system restarts from recovery line RL₂).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.history import HistoryDiagram
from repro.core.types import (
    CheckpointKind,
    Interaction,
    ProcessId,
    RecoveryLine,
    RecoveryPoint,
)

__all__ = ["RollbackResult", "propagate_rollback", "rollback_distance", "is_domino"]


@dataclass(frozen=True)
class RollbackResult:
    """Outcome of a rollback-propagation computation.

    Attributes
    ----------
    failed_process:
        The process whose error/acceptance-test failure started the rollback.
    failure_time:
        Time at which the failure was detected.
    restart_points:
        Checkpoint each process restarts from.  Processes that do not need to roll
        back are absent.
    affected:
        Ids of all processes forced to roll back (always includes the failed one).
    iterations:
        Number of fixpoint sweeps the propagation needed.
    """

    failed_process: ProcessId
    failure_time: float
    restart_points: Dict[ProcessId, RecoveryPoint]
    affected: Tuple[ProcessId, ...]
    iterations: int
    invalidated_interactions: Tuple[Interaction, ...] = field(default=())

    @property
    def restart_line(self) -> RecoveryLine:
        """The (possibly partial) recovery line the system restarts from."""
        return RecoveryLine(points=self.restart_points)

    def restart_time(self, process: ProcessId) -> float:
        """Restart time of *process* (``failure_time`` if it was not affected)."""
        rp = self.restart_points.get(process)
        return rp.time if rp is not None else self.failure_time

    def distance(self, process: ProcessId) -> float:
        """Rollback distance of *process*: computation discarded by its rollback."""
        return self.failure_time - self.restart_time(process)

    @property
    def max_distance(self) -> float:
        """The paper's rollback distance: supremum of the per-process distances."""
        return max((self.distance(p) for p in self.affected), default=0.0)

    @property
    def total_lost_computation(self) -> float:
        """Sum of the per-process discarded computation intervals."""
        return sum(self.distance(p) for p in self.affected)

    @property
    def domino(self) -> bool:
        """True when at least one affected process was pushed back to its start."""
        return any(rp.kind is CheckpointKind.INITIAL
                   for rp in self.restart_points.values())

    def crossed_checkpoints(self, history: HistoryDiagram,
                            process: ProcessId) -> int:
        """Number of checkpoints of *process* discarded by the rollback."""
        if process not in self.restart_points:
            return 0
        restart = self.restart_points[process].time
        return sum(1 for rp in history.checkpoints(process)
                   if restart < rp.time <= self.failure_time
                   and rp.kind is not CheckpointKind.INITIAL)


def propagate_rollback(history: HistoryDiagram, failed_process: ProcessId,
                       failure_time: float,
                       *,
                       checkpoint_filter: Optional[
                           Callable[[RecoveryPoint], bool]] = None,
                       excluded_interactions: Optional[Set[Interaction]] = None,
                       max_iterations: int = 10_000) -> RollbackResult:
    """Compute the rollback propagation triggered by a failure.

    Parameters
    ----------
    history:
        Execution history up to (at least) the failure time.
    failed_process, failure_time:
        Which process failed and when.
    checkpoint_filter:
        Optional predicate selecting which checkpoints are *usable* as restart
        states.  The asynchronous scheme passes regular RPs only; the PRP scheme
        passes a predicate admitting uncontaminated pseudo recovery points.  The
        initial state is always usable.
    excluded_interactions:
        Interactions that must be ignored by the propagation (typically because a
        previous rollback already invalidated them — the messages were logically
        un-sent and cannot orphan anybody any more).
    max_iterations:
        Safety bound on fixpoint sweeps.
    """
    if not (0 <= failed_process < history.n_processes):
        raise ValueError(f"failed process {failed_process} out of range")
    if failure_time < 0.0:
        raise ValueError("failure time must be non-negative")

    def usable(rp: RecoveryPoint) -> bool:
        if rp.kind is CheckpointKind.INITIAL:
            return True
        if checkpoint_filter is None:
            return rp.kind is CheckpointKind.REGULAR
        return checkpoint_filter(rp)

    def latest_usable(process: ProcessId, before: float, inclusive: bool) -> RecoveryPoint:
        # Bisect into the time-sorted checkpoint list, then walk backwards to
        # the most recent usable checkpoint.  Among usable checkpoints sharing
        # that maximal time the walk keeps going, so the *first-inserted* one
        # wins — the exact tie-break of the historical forward max-scan.
        points, times = history.checkpoints_view(process)
        pos = (bisect.bisect_right(times, before) if inclusive
               else bisect.bisect_left(times, before))
        best: Optional[RecoveryPoint] = None
        for idx in range(pos - 1, -1, -1):
            rp = points[idx]
            if best is not None and rp.time < best.time:
                break
            if usable(rp):
                best = rp
        assert best is not None, "initial state must always be usable"
        return best

    # horizon[p]: time up to which process p's computation is currently valid.
    horizon: Dict[ProcessId, float] = {p: failure_time for p in history.processes}
    restart: Dict[ProcessId, RecoveryPoint] = {}

    # The failed process must discard the state at the failure point itself, hence
    # the inclusive latest checkpoint at or before the failure time.
    first = latest_usable(failed_process, failure_time, inclusive=True)
    restart[failed_process] = first
    horizon[failed_process] = first.time

    # Only interactions *sent* at or before the failure can ever be orphans
    # (receive_time ≥ send time, and both orphan tests cap the endpoint at
    # failure_time), and the history keeps interactions sorted by send time —
    # so the sweep window is a bisect cut, taken once, not a full-list copy
    # per fixpoint iteration.  Already-excluded interactions are dropped up
    # front; invalidation is tracked per-index so the inner loop never hashes.
    excluded = excluded_interactions or set()
    candidates = [interaction
                  for interaction in history.interactions_until(failure_time)
                  if interaction not in excluded]
    dead = [False] * len(candidates)
    invalidated: Set[Interaction] = set()
    iterations = 0
    changed = True
    while changed:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError("rollback propagation did not converge")
        changed = False
        for pos, interaction in enumerate(candidates):
            if dead[pos]:
                continue
            send = interaction.time
            recv = interaction.receive_time
            src, dst = interaction.source, interaction.target
            # The interaction is an orphan if either endpoint falls in discarded
            # computation of its participant.
            src_orphan = send > horizon[src]
            dst_orphan = recv > horizon[dst] and recv <= failure_time
            if not (src_orphan or dst_orphan):
                continue
            dead[pos] = True
            invalidated.add(interaction)
            # Both participants must restart before their endpoint of the
            # interaction (the message and its effects are discarded).
            for process, endpoint in ((src, send), (dst, recv)):
                if horizon[process] >= endpoint:
                    candidate = latest_usable(process, endpoint, inclusive=False)
                    if candidate.time < horizon[process]:
                        restart[process] = candidate
                        horizon[process] = candidate.time
                        changed = True
                    elif process not in restart:
                        restart[process] = candidate
                        changed = True

    affected = tuple(sorted(restart))
    return RollbackResult(failed_process=failed_process, failure_time=failure_time,
                          restart_points=dict(restart), affected=affected,
                          iterations=iterations,
                          invalidated_interactions=tuple(sorted(invalidated)))


def rollback_distance(history: HistoryDiagram, failed_process: ProcessId,
                      failure_time: float, **kwargs) -> float:
    """Shorthand: the supremum rollback distance for the given failure."""
    return propagate_rollback(history, failed_process, failure_time,
                              **kwargs).max_distance


def is_domino(history: HistoryDiagram, failed_process: ProcessId,
              failure_time: float, **kwargs) -> bool:
    """Whether the failure triggers the domino effect (rollback to a beginning)."""
    return propagate_rollback(history, failed_process, failure_time, **kwargs).domino
