"""Execution-history diagrams (the paper's Figure 1).

A :class:`HistoryDiagram` records, per process, the checkpoints (recovery points and
pseudo recovery points) it established and, globally, the interactions between
processes.  All recovery-line detection and rollback-propagation analysis operates
on this structure, whether the history was produced by the full discrete-event
simulator, by the model-level Monte-Carlo sampler, or built by hand in a test.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.types import (
    CheckpointKind,
    Interaction,
    ProcessId,
    RecoveryPoint,
)

__all__ = ["HistoryDiagram"]


class HistoryDiagram:
    """Recorded history of ``n`` cooperating processes.

    The structure is append-friendly (events arrive in time order from the
    simulator) but also supports out-of-order insertion for hand-built test
    fixtures; per-process checkpoint lists are kept sorted by time.
    """

    def __init__(self, n_processes: int) -> None:
        n_processes = int(n_processes)
        if n_processes < 1:
            raise ValueError("a history needs at least one process")
        self._n = n_processes
        self._checkpoints: List[List[RecoveryPoint]] = [[] for _ in range(n_processes)]
        self._checkpoint_times: List[List[float]] = [[] for _ in range(n_processes)]
        self._interactions: List[Interaction] = []
        self._interaction_times: List[float] = []
        self._counters: List[int] = [0] * n_processes
        # Every process implicitly starts with a verified initial state at t = 0.
        for pid in range(n_processes):
            self._insert_checkpoint(RecoveryPoint(time=0.0, process=pid, index=0,
                                                  kind=CheckpointKind.INITIAL))

    # ------------------------------------------------------------------ mutation
    def _insert_checkpoint(self, rp: RecoveryPoint) -> RecoveryPoint:
        times = self._checkpoint_times[rp.process]
        if not times or rp.time >= times[-1]:
            # Live simulations insert in time order; bisect_right lands at the
            # end for a time >= the last entry, so this is the same position.
            times.append(rp.time)
            self._checkpoints[rp.process].append(rp)
        else:
            pos = bisect.bisect_right(times, rp.time)
            times.insert(pos, rp.time)
            self._checkpoints[rp.process].insert(pos, rp)
        if rp.index >= self._counters[rp.process]:
            self._counters[rp.process] = rp.index + 1
        return rp

    def add_recovery_point(self, process: ProcessId, time: float,
                           kind: CheckpointKind = CheckpointKind.REGULAR,
                           origin: Optional[Tuple[ProcessId, int]] = None
                           ) -> RecoveryPoint:
        """Record a checkpoint for *process* at *time* and return it."""
        if not 0 <= process < self._n:  # inlined _check_process
            raise ValueError(f"process {process} out of range [0, {self._n})")
        rp = RecoveryPoint(time=float(time), process=process,
                           index=self._counters[process], kind=kind, origin=origin)
        return self._insert_checkpoint(rp)

    def add_interaction(self, source: ProcessId, target: ProcessId, time: float,
                        receive_time: Optional[float] = None,
                        message: object = None) -> Interaction:
        """Record an interaction (message) from *source* to *target*."""
        if not 0 <= source < self._n:  # inlined _check_process
            raise ValueError(f"process {source} out of range [0, {self._n})")
        if not 0 <= target < self._n:
            raise ValueError(f"process {target} out of range [0, {self._n})")
        interaction = Interaction(time=float(time), source=source, target=target,
                                  receive_time=float(receive_time)
                                  if receive_time is not None else -1.0,
                                  message=message)
        times = self._interaction_times
        if not times or interaction.time >= times[-1]:
            times.append(interaction.time)
            self._interactions.append(interaction)
        else:
            pos = bisect.bisect_right(times, interaction.time)
            times.insert(pos, interaction.time)
            self._interactions.insert(pos, interaction)
        return interaction

    # ------------------------------------------------------------------ inspection
    def _check_process(self, process: ProcessId) -> None:
        if not (0 <= process < self._n):
            raise ValueError(f"process {process} out of range [0, {self._n})")

    @property
    def n_processes(self) -> int:
        return self._n

    @property
    def processes(self) -> range:
        return range(self._n)

    @property
    def interactions(self) -> List[Interaction]:
        return list(self._interactions)

    def interactions_until(self, time: float) -> Sequence[Interaction]:
        """Interactions with send time ≤ *time*, as a read-only view.

        The returned sequence aliases internal storage (interactions are kept
        sorted by send time, so the cut is a bisect) — callers must not mutate
        it, and must not hold it across subsequent ``add_interaction`` calls.
        Rollback propagation sweeps this instead of copying the full list on
        every fixpoint iteration.
        """
        pos = bisect.bisect_right(self._interaction_times, time)
        if pos == len(self._interactions):
            return self._interactions
        return self._interactions[:pos]

    def checkpoints_view(self, process: ProcessId
                         ) -> Tuple[Sequence[RecoveryPoint], Sequence[float]]:
        """Time-ordered checkpoints of *process* and their times, zero-copy.

        Both sequences alias internal storage and grow with later inserts;
        callers must treat them as read-only snapshots for the duration of one
        analysis step.  The parallel times list exists so callers can bisect.
        """
        self._check_process(process)
        return self._checkpoints[process], self._checkpoint_times[process]

    def checkpoints(self, process: ProcessId,
                    kinds: Optional[Iterable[CheckpointKind]] = None
                    ) -> List[RecoveryPoint]:
        """All checkpoints of *process* (optionally filtered by kind), time ordered."""
        self._check_process(process)
        points = self._checkpoints[process]
        if kinds is None:
            return list(points)
        wanted = set(kinds)
        if len(wanted) == 1:
            # The dominant query (regular RPs only, every rollback plan):
            # enum members are singletons, so an identity check beats the
            # set probe, which would hash the enum on every checkpoint.
            kind = next(iter(wanted))
            return [rp for rp in points if rp.kind is kind]
        return [rp for rp in points if rp.kind in wanted]

    def recovery_points(self, process: ProcessId) -> List[RecoveryPoint]:
        """Regular recovery points of *process* (excludes PRPs and the initial state)."""
        return self.checkpoints(process, kinds=(CheckpointKind.REGULAR,))

    def checkpoint_count(self, process: ProcessId,
                         kind: Optional[CheckpointKind] = None) -> int:
        if kind is None:
            return len(self._checkpoints[process])
        return len(self.checkpoints(process, kinds=(kind,)))

    def latest_checkpoint_before(self, process: ProcessId, time: float,
                                 *, inclusive: bool = True,
                                 usable_only: bool = False,
                                 failed_process: Optional[ProcessId] = None
                                 ) -> RecoveryPoint:
        """Most recent checkpoint of *process* at or before *time*.

        With ``usable_only=True`` pseudo recovery points are skipped unless they are
        usable for a failure of *failed_process* (see
        :meth:`repro.core.types.RecoveryPoint.is_usable_for`).  The initial state at
        t = 0 guarantees a result always exists.
        """
        self._check_process(process)
        times = self._checkpoint_times[process]
        pos = (bisect.bisect_right(times, time) if inclusive
               else bisect.bisect_left(times, time))
        for idx in range(pos - 1, -1, -1):
            rp = self._checkpoints[process][idx]
            if usable_only and not rp.kind.verified:
                if failed_process is None or not rp.is_usable_for(failed_process):
                    continue
            return rp
        # Unreachable: index 0 is always the initial state which is verified.
        raise AssertionError("history invariant violated: missing initial state")

    def interactions_between(self, a: ProcessId, b: ProcessId,
                             start: float, end: float,
                             *, closed: bool = False) -> List[Interaction]:
        """Interactions between processes *a* and *b* with send time in the window.

        The window is open ``(start, end)`` by default, matching the paper's
        "sandwiched between" condition; pass ``closed=True`` for ``[start, end]``.
        """
        self._check_process(a)
        self._check_process(b)
        lo, hi = (min(start, end), max(start, end))
        out = []
        for interaction in self._interactions:
            t = interaction.time
            if closed:
                inside = lo <= t <= hi
            else:
                inside = lo < t < hi
            if inside and interaction.involves(a) and interaction.involves(b):
                out.append(interaction)
        return out

    def interactions_involving(self, process: ProcessId,
                               start: float = 0.0,
                               end: float = float("inf")) -> List[Interaction]:
        """Interactions touching *process* whose send or receive time lies in (start, end]."""
        self._check_process(process)
        out = []
        # The list is sorted by send time and receive >= send, so anything sent
        # after *end* can never fall in the window — cut the tail with a bisect
        # instead of scanning the whole history.  involves()/window() are
        # spelled out as attribute reads: this sweep touches every interaction
        # of every rollback plan, and the method frames dominate it.
        for interaction in self.interactions_until(end):
            if interaction.source == process:
                t = interaction.time
            elif interaction.target == process:
                t = interaction.receive_time
            else:
                continue
            if start < t <= end:
                out.append(interaction)
        return out

    def interactions_window(self, start: float, end: float) -> List[Interaction]:
        """Interactions with send time in ``(start, end]`` (read-only slice).

        Zero-copy when the window spans the whole history; callers must not
        mutate the returned list.
        """
        lo = bisect.bisect_right(self._interaction_times, start)
        hi = bisect.bisect_right(self._interaction_times, end)
        if lo == 0 and hi == len(self._interactions):
            return self._interactions
        return self._interactions[lo:hi]

    def last_event_kind(self, process: ProcessId, time: float) -> str:
        """Return ``"rp"``, ``"interaction"`` or ``"none"`` for the last event ≤ *time*.

        Pseudo recovery points are *not* counted as recovery points here because the
        Markov model of Section 2 predates PRPs; only regular RPs flip the process's
        state bit to 1.
        """
        self._check_process(process)
        last_rp = None
        for rp in reversed(self.checkpoints(process, kinds=(CheckpointKind.REGULAR,))):
            if rp.time <= time:
                last_rp = rp.time
                break
        last_int = None
        for interaction in reversed(self._interactions):
            if not interaction.involves(process):
                continue
            send, recv = interaction.window()
            t = send if interaction.source == process else recv
            if t <= time:
                last_int = t
                break
        if last_rp is None and last_int is None:
            return "none"
        if last_int is None or (last_rp is not None and last_rp >= last_int):
            return "rp"
        return "interaction"

    @property
    def end_time(self) -> float:
        """Latest timestamp recorded in the history."""
        latest = 0.0
        for points in self._checkpoints:
            if points:
                latest = max(latest, points[-1].time)
        if self._interactions:
            latest = max(latest, max(i.receive_time for i in self._interactions))
        return latest

    # ------------------------------------------------------------------ rendering
    def render_ascii(self, width: int = 72) -> str:
        """Render the history as an ASCII timeline (one row per process).

        ``o`` marks a regular recovery point, ``p`` a pseudo recovery point, ``|``
        the initial state and ``x`` an interaction endpoint.  Intended for debugging
        and the examples; not a precise plot.
        """
        horizon = max(self.end_time, 1e-9)
        scale = (width - 1) / horizon

        def col(t: float) -> int:
            return min(width - 1, int(round(t * scale)))

        rows = []
        for pid in range(self._n):
            row = [" "] * width
            row[0] = "|"
            for interaction in self._interactions:
                if interaction.involves(pid):
                    send, recv = interaction.window()
                    t = send if interaction.source == pid else recv
                    row[col(t)] = "x"
            for rp in self._checkpoints[pid]:
                if rp.kind is CheckpointKind.INITIAL:
                    continue
                row[col(rp.time)] = "o" if rp.kind is CheckpointKind.REGULAR else "p"
            rows.append(f"P{pid + 1} " + "".join(row))
        header = f"t=0 {'.' * (width - 12)} t={horizon:.3f}"
        return "\n".join(["   " + header] + rows)

    # ------------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check internal invariants; raises :class:`AssertionError` on violation."""
        for pid in range(self._n):
            times = self._checkpoint_times[pid]
            assert all(times[i] <= times[i + 1] for i in range(len(times) - 1)), \
                f"checkpoints of process {pid} out of order"
            assert self._checkpoints[pid][0].kind is CheckpointKind.INITIAL, \
                f"process {pid} lost its initial state"
        times = self._interaction_times
        assert all(times[i] <= times[i + 1] for i in range(len(times) - 1)), \
            "interactions out of order"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = ", ".join(str(len(points) - 1) for points in self._checkpoints)
        return (f"HistoryDiagram(n={self._n}, checkpoints=[{counts}], "
                f"interactions={len(self._interactions)})")
