"""Extraction of the paper's key observables from a history.

Two quantities drive Section 2.3:

* ``X_r`` — the interval between the r-th and (r+1)-th recovery lines, and
* ``L_i`` — the number of recovery points process ``P_i`` establishes during such an
  interval.

:func:`extract_intervals` walks a history, finds the successive recovery lines with
a chosen detector, and returns one :class:`IntervalObservation` per interval.  The
Monte-Carlo estimators in :mod:`repro.markov.montecarlo` and the DES validation
experiments both rely on this module, so analytic and simulated numbers are
guaranteed to use identical definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.history import HistoryDiagram
from repro.core.recovery_line import RecoveryLineDetector, LatestRPRecoveryLineDetector
from repro.core.types import CheckpointKind, ProcessId, RecoveryLine

__all__ = ["IntervalObservation", "extract_intervals", "summarize_intervals"]


@dataclass(frozen=True)
class IntervalObservation:
    """One observed inter-recovery-line interval.

    Attributes
    ----------
    index:
        0-based index ``r`` of the interval (between lines ``r`` and ``r+1``).
    start, end:
        Formation times of the bounding recovery lines.
    rp_counts:
        ``rp_counts[i]`` is ``L_i``: the number of regular recovery points process
        ``P_i`` established in ``(start, end]``.
    interaction_count:
        Number of interactions whose send time falls in ``(start, end]``.
    """

    index: int
    start: float
    end: float
    rp_counts: Tuple[int, ...]
    interaction_count: int

    @property
    def length(self) -> float:
        """The interval ``X_r``."""
        return self.end - self.start

    @property
    def total_rp_count(self) -> int:
        return int(sum(self.rp_counts))


def extract_intervals(history: HistoryDiagram,
                      detector: Optional[RecoveryLineDetector] = None,
                      *, max_intervals: Optional[int] = None
                      ) -> List[IntervalObservation]:
    """Extract successive inter-recovery-line intervals from *history*.

    Parameters
    ----------
    history:
        The execution history to analyse.
    detector:
        Recovery-line detector; defaults to the Markov-model-faithful
        :class:`~repro.core.recovery_line.LatestRPRecoveryLineDetector` so that
        simulation estimates are directly comparable to the analytic model.
    max_intervals:
        Optionally truncate to the first ``max_intervals`` observations.
    """
    if detector is None:
        detector = LatestRPRecoveryLineDetector()
    lines = detector.find_lines(history, include_initial=True)
    observations: List[IntervalObservation] = []
    for idx in range(len(lines) - 1):
        start = lines[idx].formation_time
        end = lines[idx + 1].formation_time
        counts = []
        for pid in history.processes:
            rps = history.checkpoints(pid, kinds=(CheckpointKind.REGULAR,))
            counts.append(sum(1 for rp in rps if start < rp.time <= end))
        interactions = sum(1 for i in history.interactions if start < i.time <= end)
        observations.append(IntervalObservation(index=idx, start=start, end=end,
                                                rp_counts=tuple(counts),
                                                interaction_count=interactions))
        if max_intervals is not None and len(observations) >= max_intervals:
            break
    return observations


def summarize_intervals(observations: Sequence[IntervalObservation]
                        ) -> Dict[str, object]:
    """Aggregate interval observations into the quantities reported in Table 1.

    Returns a dict with keys ``mean_X``, ``std_X``, ``mean_L`` (per-process array),
    ``mean_total_L`` and ``count``.
    """
    if not observations:
        raise ValueError("no interval observations to summarise")
    lengths = np.array([obs.length for obs in observations], dtype=float)
    counts = np.array([obs.rp_counts for obs in observations], dtype=float)
    return {
        "count": int(lengths.size),
        "mean_X": float(lengths.mean()),
        "std_X": float(lengths.std(ddof=1)) if lengths.size > 1 else 0.0,
        "mean_L": counts.mean(axis=0),
        "mean_total_L": float(counts.sum(axis=1).mean()),
    }
