"""Recovery-line detection.

Two detectors are provided:

* :class:`ExactRecoveryLineDetector` implements the paper's *definition* of a
  recovery line (Section 2.2): one checkpoint per process such that for every pair
  ``(i, j)`` no interaction between ``P_i`` and ``P_j`` is sandwiched between their
  chosen checkpoints.
* :class:`LatestRPRecoveryLineDetector` implements the *sufficient* condition the
  Markov model of Section 2.2 actually tracks: a new recovery line is declared the
  moment every process's most recent action (since the previous line) is a recovery
  point.  This is conservative — it can only declare a line later than the exact
  detector — and the gap between the two is quantified by the ablation benchmark.
"""

from __future__ import annotations

import abc
import itertools
from typing import Dict, List, Optional, Sequence

from repro.core.history import HistoryDiagram
from repro.core.types import CheckpointKind, ProcessId, RecoveryLine, RecoveryPoint

__all__ = [
    "is_consistent_line",
    "RecoveryLineDetector",
    "ExactRecoveryLineDetector",
    "LatestRPRecoveryLineDetector",
    "find_recovery_lines",
]


def is_consistent_line(history: HistoryDiagram,
                       points: Dict[ProcessId, RecoveryPoint]) -> bool:
    """Check the paper's pairwise consistency requirement for a candidate line.

    For every pair of processes ``(i, j)`` in the candidate, no interaction between
    them may have a send time strictly between ``t[RP_i]`` and ``t[RP_j]``.
    """
    processes = sorted(points)
    for a_idx in range(len(processes)):
        for b_idx in range(a_idx + 1, len(processes)):
            a, b = processes[a_idx], processes[b_idx]
            ta, tb = points[a].time, points[b].time
            if ta == tb:
                continue
            if history.interactions_between(a, b, ta, tb):
                return False
    return True


class RecoveryLineDetector(abc.ABC):
    """Interface for recovery-line detectors operating on a history diagram."""

    @abc.abstractmethod
    def find_lines(self, history: HistoryDiagram,
                   *, include_initial: bool = True) -> List[RecoveryLine]:
        """Return the successive recovery lines formed in *history*, in time order."""

    def intervals(self, history: HistoryDiagram) -> List[float]:
        """Intervals ``X_r`` between successive recovery lines (formation times)."""
        lines = self.find_lines(history, include_initial=True)
        times = [line.formation_time for line in lines]
        return [t1 - t0 for t0, t1 in zip(times[:-1], times[1:])]


class ExactRecoveryLineDetector(RecoveryLineDetector):
    """Exact detection using the pairwise no-sandwiched-message condition.

    The detector sweeps events in time order.  Whenever a regular recovery point is
    established it searches for a consistent combination of checkpoints — one per
    process, each no newer than the current time and no older than the previous
    line's choice for that process — that includes the fresh recovery point.  The
    search enumerates candidates newest-first with early pruning, which is cheap for
    the process counts the paper considers (n ≤ 10).

    Parameters
    ----------
    include_pseudo:
        When True, pseudo recovery points may participate in lines (used for the
        pseudo-recovery-line analysis of Section 4); the default considers regular
        recovery points (and the initial states) only, as in Section 2.
    max_candidates_per_process:
        Cap on how many of the newest candidate checkpoints per process are
        examined, bounding worst-case search cost.
    """

    def __init__(self, include_pseudo: bool = False,
                 max_candidates_per_process: int = 16) -> None:
        self.include_pseudo = bool(include_pseudo)
        self.max_candidates = int(max_candidates_per_process)
        if self.max_candidates < 1:
            raise ValueError("max_candidates_per_process must be >= 1")

    def _candidate_kinds(self) -> Sequence[CheckpointKind]:
        kinds = [CheckpointKind.REGULAR, CheckpointKind.INITIAL]
        if self.include_pseudo:
            kinds.append(CheckpointKind.PSEUDO)
        return tuple(kinds)

    def find_lines(self, history: HistoryDiagram,
                   *, include_initial: bool = True) -> List[RecoveryLine]:
        kinds = self._candidate_kinds()
        n = history.n_processes
        # The initial states always form recovery line RL_0.
        current = {pid: history.checkpoints(pid, kinds=(CheckpointKind.INITIAL,))[0]
                   for pid in range(n)}
        lines: List[RecoveryLine] = [RecoveryLine(points=current)]

        # All candidate checkpoints, time ordered, that can trigger a new line.
        triggers: List[RecoveryPoint] = []
        for pid in range(n):
            for rp in history.checkpoints(pid, kinds=kinds):
                if rp.kind is not CheckpointKind.INITIAL:
                    triggers.append(rp)
        triggers.sort()

        for trigger in triggers:
            line = self._line_through(history, trigger, lines[-1], kinds)
            if line is not None:
                lines.append(line)
        return lines if include_initial else lines[1:]

    def _line_through(self, history: HistoryDiagram, trigger: RecoveryPoint,
                      previous: RecoveryLine,
                      kinds: Sequence[CheckpointKind]) -> Optional[RecoveryLine]:
        """Search for a consistent line containing *trigger*, newer than *previous*."""
        n = history.n_processes
        horizon = trigger.time
        candidates: Dict[ProcessId, List[RecoveryPoint]] = {}
        for pid in range(n):
            if pid == trigger.process:
                candidates[pid] = [trigger]
                continue
            floor = previous.point_for(pid).time
            options = [rp for rp in history.checkpoints(pid, kinds=kinds)
                       if floor <= rp.time <= horizon]
            if not options:
                return None
            # Newest first: later checkpoints are preferred (less recomputation on
            # rollback) and prune faster.
            options = sorted(options, key=lambda rp: rp.time, reverse=True)
            candidates[pid] = options[: self.max_candidates]

        order = sorted(range(n), key=lambda pid: len(candidates[pid]))
        chosen: Dict[ProcessId, RecoveryPoint] = {}

        def consistent_with_chosen(pid: ProcessId, rp: RecoveryPoint) -> bool:
            for other, other_rp in chosen.items():
                if other == pid:
                    continue
                lo, hi = sorted((rp.time, other_rp.time))
                if lo != hi and history.interactions_between(pid, other, lo, hi):
                    return False
            return True

        def backtrack(depth: int) -> bool:
            if depth == len(order):
                return True
            pid = order[depth]
            for rp in candidates[pid]:
                if consistent_with_chosen(pid, rp):
                    chosen[pid] = rp
                    if backtrack(depth + 1):
                        return True
                    del chosen[pid]
            return False

        if not backtrack(0):
            return None
        line = RecoveryLine(points=dict(chosen))
        # The new line must actually be new (strictly later formation than previous).
        if line.formation_time <= previous.formation_time:
            return None
        return line


class LatestRPRecoveryLineDetector(RecoveryLineDetector):
    """Markov-model-faithful detection: all processes' last action is an RP.

    This detector mirrors rules R1–R4 of Section 2.2 exactly.  After a recovery line
    every process's state bit is (re)set to 1; an interaction between ``P_i`` and
    ``P_j`` clears both bits (R2) or the bit of the RP-side participant (R3); a
    recovery point sets the process's bit (R1).  A new line is declared when a
    recovery point establishment results in all bits being 1 — including the direct
    ``S_r → S_{r+1}`` transition of R4 when no interaction intervened at all.
    """

    def find_lines(self, history: HistoryDiagram,
                   *, include_initial: bool = True) -> List[RecoveryLine]:
        n = history.n_processes
        latest_rp: Dict[ProcessId, RecoveryPoint] = {
            pid: history.checkpoints(pid, kinds=(CheckpointKind.INITIAL,))[0]
            for pid in range(n)}
        bits = [True] * n
        lines: List[RecoveryLine] = [RecoveryLine(points=dict(latest_rp))]

        events: List = []
        for pid in range(n):
            for rp in history.checkpoints(pid, kinds=(CheckpointKind.REGULAR,)):
                events.append((rp.time, 1, "rp", rp))
        for interaction in history.interactions:
            events.append((interaction.time, 0, "interaction", interaction))
        # Interactions sort before RPs at equal timestamps (tie-break keeps the
        # detector conservative, matching the CTMC where simultaneous events have
        # probability zero anyway).
        events.sort(key=lambda item: (item[0], item[1]))

        for _time, _prio, kind, payload in events:
            if kind == "interaction":
                bits[payload.source] = False
                bits[payload.target] = False
            else:
                rp: RecoveryPoint = payload
                latest_rp[rp.process] = rp
                bits[rp.process] = True
                if all(bits):
                    lines.append(RecoveryLine(points=dict(latest_rp)))
                    # After a line forms every process is "clean" again (S_{r+1}
                    # becomes the next S_r): bits stay 1.
        return lines if include_initial else lines[1:]


def find_recovery_lines(history: HistoryDiagram, *, exact: bool = True,
                        include_pseudo: bool = False) -> List[RecoveryLine]:
    """Convenience wrapper returning the recovery lines of *history*.

    Parameters
    ----------
    exact:
        Use the exact pairwise-consistency detector (default) or the conservative
        latest-RP detector of the Markov model.
    include_pseudo:
        Allow pseudo recovery points to participate (exact detector only).
    """
    if exact:
        detector: RecoveryLineDetector = ExactRecoveryLineDetector(
            include_pseudo=include_pseudo)
    else:
        if include_pseudo:
            raise ValueError("the latest-RP detector does not consider pseudo RPs")
        detector = LatestRPRecoveryLineDetector()
    return detector.find_lines(history)
