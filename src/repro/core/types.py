"""Fundamental value types: recovery points, interactions, recovery lines.

These are deliberately small, immutable dataclasses; the richer behaviour
(histories, detection, rollback) lives in sibling modules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "ProcessId",
    "CheckpointKind",
    "EventKind",
    "RecoveryPoint",
    "Interaction",
    "RecoveryLine",
]

#: Processes are identified by small non-negative integers (``P_1`` in the paper is
#: process id ``0`` here; rendering code converts back to 1-based labels).
ProcessId = int


class CheckpointKind(enum.Enum):
    """Kind of saved state.

    ``REGULAR`` corresponds to the paper's recovery point (RP): a state saved right
    after a successful acceptance test.  ``PSEUDO`` corresponds to a pseudo recovery
    point (PRP, Section 4): a state saved on request *without* a preceding
    acceptance test, and therefore potentially contaminated.  ``INITIAL`` marks the
    implicit checkpoint every process has at its beginning (time 0).
    """

    REGULAR = "RP"
    PSEUDO = "PRP"
    INITIAL = "INIT"

    @property
    def verified(self) -> bool:
        """True when the saved state passed an acceptance test (RPs and the start)."""
        return self in (CheckpointKind.REGULAR, CheckpointKind.INITIAL)


class EventKind(enum.Enum):
    """Kinds of events recorded in an execution trace."""

    RECOVERY_POINT = "recovery_point"
    PSEUDO_RECOVERY_POINT = "pseudo_recovery_point"
    INTERACTION = "interaction"
    ACCEPTANCE_TEST = "acceptance_test"
    ERROR = "error"
    ROLLBACK = "rollback"
    SYNC_REQUEST = "sync_request"
    SYNC_COMMIT = "sync_commit"
    RECOVERY_LINE = "recovery_line"


class RecoveryPoint:
    """A saved process state.

    Ordering is by ``(time, process, index)`` so that sorted containers of recovery
    points iterate in chronological order.  This is a hand-written value class
    rather than a frozen dataclass: the simulator creates one per checkpoint
    (tens of thousands per replication sweep), and the per-field
    ``object.__setattr__`` cost of a generated frozen ``__init__`` is the single
    largest allocation expense of the hot path.  Equality, ordering and hashing
    match the previous dataclass exactly (``origin`` excluded from comparison);
    the hash is computed lazily on first use and cached.

    Attributes
    ----------
    time:
        Simulation time at which the state was saved.
    process:
        Owning process id.
    index:
        0-based sequence number of the checkpoint within its process (the ``j`` of
        the paper's ``RP_i^j``).
    kind:
        Regular RP, pseudo RP, or the initial state.
    origin:
        For pseudo recovery points, the ``(process, index)`` of the regular RP whose
        implantation request created this PRP (the paper's ``PRP_{i'}^{ij}``);
        ``None`` otherwise.
    """

    __slots__ = ("time", "process", "index", "kind", "origin", "_hash")

    def __init__(self, time: float, process: ProcessId, index: int,
                 kind: CheckpointKind = CheckpointKind.REGULAR,
                 origin: Optional[Tuple[ProcessId, int]] = None) -> None:
        if time < 0.0:
            raise ValueError("recovery point time must be non-negative")
        if process < 0:
            raise ValueError("process id must be non-negative")
        if index < 0:
            raise ValueError("recovery point index must be non-negative")
        if kind is CheckpointKind.PSEUDO and origin is None:
            raise ValueError("pseudo recovery points must record their origin RP")
        self.time = time
        self.process = process
        self.index = index
        self.kind = kind
        self.origin = origin
        self._hash: Optional[int] = None

    def __eq__(self, other: object) -> bool:
        if other.__class__ is RecoveryPoint:
            return (self.time == other.time and self.process == other.process
                    and self.index == other.index and self.kind == other.kind)
        return NotImplemented

    def __lt__(self, other: "RecoveryPoint") -> bool:
        if other.__class__ is not RecoveryPoint:
            return NotImplemented
        return ((self.time, self.process, self.index, self.kind)
                < (other.time, other.process, other.index, other.kind))

    def __le__(self, other: "RecoveryPoint") -> bool:
        if other.__class__ is not RecoveryPoint:
            return NotImplemented
        return ((self.time, self.process, self.index, self.kind)
                <= (other.time, other.process, other.index, other.kind))

    def __gt__(self, other: "RecoveryPoint") -> bool:
        if other.__class__ is not RecoveryPoint:
            return NotImplemented
        return ((self.time, self.process, self.index, self.kind)
                > (other.time, other.process, other.index, other.kind))

    def __ge__(self, other: "RecoveryPoint") -> bool:
        if other.__class__ is not RecoveryPoint:
            return NotImplemented
        return ((self.time, self.process, self.index, self.kind)
                >= (other.time, other.process, other.index, other.kind))

    def __hash__(self) -> int:
        # Recovery points are set/dict keys throughout the rollback machinery;
        # cache the compare-field hash on first lookup so repeated probes do
        # not rebuild the tuple (and points never hashed pay nothing at all).
        h = self._hash
        if h is None:
            h = hash((self.time, self.process, self.index, self.kind))
            self._hash = h
        return h

    def __repr__(self) -> str:
        return (f"RecoveryPoint(time={self.time!r}, process={self.process!r}, "
                f"index={self.index!r}, kind={self.kind!r}, origin={self.origin!r})")

    @property
    def label(self) -> str:
        """Human-readable label in the paper's notation, e.g. ``RP_1^2``."""
        base = self.kind.value
        return f"{base}_{self.process + 1}^{self.index}"

    def is_usable_for(self, failed_process: ProcessId) -> bool:
        """Whether this checkpoint may serve as a restart state after a failure.

        Regular RPs and initial states are always usable.  A PRP is usable only when
        the error did *not* originate in the process whose RP triggered it before
        the PRP was taken — callers with more context refine this; the conservative
        default mirrors Section 4: PRPs are usable when the failure is local to the
        triggering process (``origin[0] == failed_process``).
        """
        if self.kind.verified:
            return True
        assert self.origin is not None
        return self.origin[0] == failed_process


class Interaction:
    """A single inter-process communication.

    The analytic model of Section 2 treats an interaction between ``P_i`` and ``P_j``
    as an instantaneous, symmetric event; the DES substrate produces message sends
    and receives with distinct times.  Both are represented here: ``time`` is the
    send time and ``receive_time`` the delivery time (equal for instantaneous
    interactions).

    Hand-written for the same reason as :class:`RecoveryPoint` — one instance
    per simulated message makes frozen-dataclass construction cost visible.
    Equality and ordering compare ``(time, source, target, receive_time)``
    (``message`` excluded), exactly like the dataclass it replaces; the hash of
    those fields is computed lazily and cached because rollback propagation
    probes invalidated/excluded sets with every interaction on every sweep.
    """

    __slots__ = ("time", "source", "target", "receive_time", "message", "_hash")

    def __init__(self, time: float, source: ProcessId, target: ProcessId,
                 receive_time: float = -1.0, message: object = None) -> None:
        if source == target:
            raise ValueError("a process cannot interact with itself")
        if time < 0.0:
            raise ValueError("interaction time must be non-negative")
        if receive_time < 0.0:
            receive_time = time
        elif receive_time < time:
            raise ValueError("receive_time must not precede send time")
        self.time = time
        self.source = source
        self.target = target
        self.receive_time = receive_time
        self.message = message
        self._hash: Optional[int] = None

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Interaction:
            return (self.time == other.time and self.source == other.source
                    and self.target == other.target
                    and self.receive_time == other.receive_time)
        return NotImplemented

    def __lt__(self, other: "Interaction") -> bool:
        if other.__class__ is not Interaction:
            return NotImplemented
        return ((self.time, self.source, self.target, self.receive_time)
                < (other.time, other.source, other.target, other.receive_time))

    def __le__(self, other: "Interaction") -> bool:
        if other.__class__ is not Interaction:
            return NotImplemented
        return ((self.time, self.source, self.target, self.receive_time)
                <= (other.time, other.source, other.target, other.receive_time))

    def __gt__(self, other: "Interaction") -> bool:
        if other.__class__ is not Interaction:
            return NotImplemented
        return ((self.time, self.source, self.target, self.receive_time)
                > (other.time, other.source, other.target, other.receive_time))

    def __ge__(self, other: "Interaction") -> bool:
        if other.__class__ is not Interaction:
            return NotImplemented
        return ((self.time, self.source, self.target, self.receive_time)
                >= (other.time, other.source, other.target, other.receive_time))

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.time, self.source, self.target, self.receive_time))
            self._hash = h
        return h

    def __repr__(self) -> str:
        return (f"Interaction(time={self.time!r}, source={self.source!r}, "
                f"target={self.target!r}, receive_time={self.receive_time!r})")

    @property
    def pair(self) -> Tuple[ProcessId, ProcessId]:
        """Unordered pair of participants, smallest id first."""
        return (self.source, self.target) if self.source < self.target else (
            self.target, self.source)

    def involves(self, process: ProcessId) -> bool:
        return process in (self.source, self.target)

    def window(self) -> Tuple[float, float]:
        """The ``[send, receive]`` time window of the interaction."""
        return (self.time, self.receive_time)


@dataclass(frozen=True)
class RecoveryLine:
    """A globally consistent set of checkpoints — one per process.

    The *formation time* of a recovery line is the latest checkpoint time in it:
    before that moment the line did not exist.
    """

    points: Mapping[ProcessId, RecoveryPoint]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a recovery line needs at least one process")
        object.__setattr__(self, "points", dict(self.points))
        for pid, rp in self.points.items():
            if rp.process != pid:
                raise ValueError(
                    f"recovery point {rp.label} filed under wrong process {pid}")

    @property
    def processes(self) -> Tuple[ProcessId, ...]:
        return tuple(sorted(self.points))

    @property
    def formation_time(self) -> float:
        return max(rp.time for rp in self.points.values())

    @property
    def earliest_time(self) -> float:
        return min(rp.time for rp in self.points.values())

    def point_for(self, process: ProcessId) -> RecoveryPoint:
        return self.points[process]

    def is_pseudo(self) -> bool:
        """True when the line contains at least one pseudo recovery point."""
        return any(rp.kind is CheckpointKind.PSEUDO for rp in self.points.values())

    def as_dict(self) -> Dict[ProcessId, RecoveryPoint]:
        return dict(self.points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecoveryLine):
            return NotImplemented
        return dict(self.points) == dict(other.points)

    def __hash__(self) -> int:
        return hash(tuple(sorted((pid, rp.time, rp.index, rp.kind)
                                 for pid, rp in self.points.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ", ".join(self.points[p].label for p in self.processes)
        return f"RecoveryLine({labels} @ t={self.formation_time:.4f})"
