"""Core domain model for recovery-block analysis.

This package contains the objects the paper reasons about, independent of any
particular implementation strategy:

* :class:`~repro.core.parameters.SystemParameters` — the stochastic model of
  Section 2.1 (recovery-point rates ``μ_i`` and pairwise interaction rates ``λ_ij``).
* :class:`~repro.core.types.RecoveryPoint`, :class:`~repro.core.types.Interaction`,
  :class:`~repro.core.types.RecoveryLine` — the entities appearing in the paper's
  history diagrams (Figure 1).
* :class:`~repro.core.history.HistoryDiagram` — a recorded execution history of a
  set of cooperating processes.
* :mod:`~repro.core.recovery_line` — detection of recovery lines, both the exact
  pairwise "no sandwiched message" condition and the conservative latest-RP
  condition used by the paper's Markov model.
* :mod:`~repro.core.rollback` — rollback propagation / domino-effect computation.
* :mod:`~repro.core.intervals` — extraction of the interval ``X`` between successive
  recovery lines and the per-process recovery-point counts ``L_i``.
"""

from repro.core.types import (
    CheckpointKind,
    EventKind,
    Interaction,
    ProcessId,
    RecoveryLine,
    RecoveryPoint,
)
from repro.core.parameters import SystemParameters
from repro.core.events import Event, EventLog
from repro.core.history import HistoryDiagram
from repro.core.recovery_line import (
    RecoveryLineDetector,
    ExactRecoveryLineDetector,
    LatestRPRecoveryLineDetector,
    is_consistent_line,
    find_recovery_lines,
)
from repro.core.rollback import (
    RollbackResult,
    propagate_rollback,
    rollback_distance,
    is_domino,
)
from repro.core.intervals import IntervalObservation, extract_intervals

__all__ = [
    "CheckpointKind",
    "EventKind",
    "Interaction",
    "ProcessId",
    "RecoveryLine",
    "RecoveryPoint",
    "SystemParameters",
    "Event",
    "EventLog",
    "HistoryDiagram",
    "RecoveryLineDetector",
    "ExactRecoveryLineDetector",
    "LatestRPRecoveryLineDetector",
    "is_consistent_line",
    "find_recovery_lines",
    "RollbackResult",
    "propagate_rollback",
    "rollback_distance",
    "is_domino",
    "IntervalObservation",
    "extract_intervals",
]
