"""``python -m repro`` — list, run, evaluate, report and query scenarios.

Examples
--------
::

    python -m repro list
    python -m repro run table1
    python -m repro run table1 -p simulate=true --reps 20000 \\
        --backend process --workers 8
    python -m repro run validation --reps 200 --seed 7
    python -m repro run heterogeneous_sweep --params sweep.json   # kwargs file
    python -m repro run figure5_full_chain --store .repro-store   # resumable
    python -m repro eval study.json                                # StudySpec
    python -m repro eval study.json --method mc --store .repro-store
    python -m repro serve --port 8642 --store .repro-store \\
        --backend process --workers 8                          # shared service
    python -m repro report --all --out reports/
    python -m repro report table1 figure6 --out reports/
    python -m repro query load --store .repro-store --db warehouse.sqlite
    python -m repro query kpi scheme_frontier --format csv
    python -m repro query sql "SELECT COUNT(*) FROM cells"
"""

from __future__ import annotations

import argparse
import ast
import inspect
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro._version import __version__
from repro.runner import (
    ExperimentRunner,
    get_scenario,
    list_scenarios,
    load_builtin_scenarios,
    make_backend,
)

#: Default root seed for CLI runs, so invocations are reproducible unless the
#: user asks for fresh entropy with ``--seed -1``.
DEFAULT_CLI_SEED = 2024


def _parse_value(text: str):
    """Best-effort literal parsing: ints, floats, tuples, booleans, strings."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(pairs: Sequence[str]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        params[key] = _parse_value(value)
    return params


def _load_json_object(path: str, what: str) -> Dict[str, object]:
    """Load a JSON object from *path* with CLI-grade error messages.

    Shared by ``run --params`` (scenario kwargs) and ``eval`` (StudySpec
    payloads), so both accept exactly the same files.
    """
    if not os.path.isfile(path):
        raise SystemExit(f"{what} file not found: {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read {what} file {path}: {exc}")
    if not isinstance(payload, dict):
        raise SystemExit(f"{what} file {path} must hold a JSON object, "
                         f"got {type(payload).__name__}")
    return payload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the registered experiment scenarios of the "
                    "Shin & Lee (1983) reproduction.")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered scenarios")
    list_cmd.add_argument("-v", "--verbose", action="store_true",
                          help="include paper references and defaults")

    run_cmd = sub.add_parser("run", help="run one scenario and print its table")
    run_cmd.add_argument("scenario", help="registered scenario name "
                                          "(see 'python -m repro list')")
    run_cmd.add_argument("--backend", choices=("serial", "process"),
                         default="serial", help="execution backend "
                                                "(default: serial)")
    run_cmd.add_argument("--workers", type=int, default=None,
                         help="worker processes for --backend process "
                              "(default: all cores)")
    run_cmd.add_argument("--reps", type=int, default=None,
                         help="Monte-Carlo replication budget "
                              "(scenario default if omitted; ignored by "
                              "purely analytic scenarios)")
    run_cmd.add_argument("--seed", type=int, default=DEFAULT_CLI_SEED,
                         help=f"root seed (default {DEFAULT_CLI_SEED}; "
                              "-1 draws fresh entropy)")
    run_cmd.add_argument("-p", "--param", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="scenario parameter override (repeatable)")
    run_cmd.add_argument("--params", metavar="FILE", default=None,
                         help="JSON file of scenario keyword parameters "
                              "(-p overrides win over file entries)")
    run_cmd.add_argument("--digits", type=int, default=4,
                         help="float digits in the rendered table (default 4)")
    run_cmd.add_argument("-o", "--output", metavar="PATH", default=None,
                         help="persist the result as JSON (envelope with "
                              "params, seed, backend, repro version and "
                              "elapsed time)")
    run_cmd.add_argument("--force", action="store_true",
                         help="overwrite an existing --output file")
    run_cmd.add_argument("--recompute", action="store_true",
                         help="execute the scenario even when the --store "
                              "holds this cell (the result is re-written "
                              "through)")
    run_cmd.add_argument("--store", metavar="DIR", default=None,
                         help="result-store directory: serve the run from "
                              "the cache when this (scenario, params, seed, "
                              "reps) cell was already computed, write it "
                              "through otherwise")

    eval_cmd = sub.add_parser(
        "eval", help="evaluate a declarative StudySpec file through the "
                     "unified facade (repro.api)")
    eval_cmd.add_argument("spec", metavar="SPEC.json",
                          help="JSON StudySpec file (see docs/ARCHITECTURE.md "
                               "for the schema)")
    eval_cmd.add_argument("--method", default="auto",
                          choices=("auto", "analytic", "mc", "des", "strategy"),
                          help="evaluation engine (default: auto — selected "
                               "by system kind, state-space size and "
                               "requested metrics)")
    eval_cmd.add_argument("--backend", choices=("serial", "process"),
                          default="serial", help="execution backend for "
                                                 "stochastic shards and sweep "
                                                 "cells (default: serial)")
    eval_cmd.add_argument("--workers", type=int, default=None,
                          help="worker processes for --backend process")
    eval_cmd.add_argument("--reps", type=int, default=None,
                          help="override the spec's stochastic budget")
    eval_cmd.add_argument("--seed", type=int, default=None,
                          help="override the spec's root seed "
                               "(-1 draws fresh entropy)")
    eval_cmd.add_argument("--store", metavar="DIR", default=None,
                          help="result-store directory: cells already "
                               "evaluated under the same canonical key are "
                               "reloaded, not recomputed")
    eval_cmd.add_argument("--recompute", action="store_true",
                          help="evaluate even when the --store holds the "
                               "cell (re-written through)")
    eval_cmd.add_argument("--digits", type=int, default=6,
                          help="float digits in the rendered table "
                               "(default 6)")
    eval_cmd.add_argument("-o", "--output", metavar="PATH", default=None,
                          help="persist spec + evaluation(s) as JSON")
    eval_cmd.add_argument("--force", action="store_true",
                          help="overwrite an existing --output file")
    eval_cmd.add_argument("--timing", action="store_true",
                          help="print a per-phase wall-time breakdown "
                               "(spec resolve / assembly / solve or sim / "
                               "reduce / store) after the result")

    serve_cmd = sub.add_parser(
        "serve", help="run the multi-tenant evaluation service "
                      "(HTTP/JSON, repro.service)")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8642,
                           help="TCP port (default: 8642; 0 picks an "
                                "ephemeral port, printed on startup)")
    serve_cmd.add_argument("--backend", choices=("serial", "process"),
                           default="serial",
                           help="execution backend for batch fan-outs "
                                "(default: serial)")
    serve_cmd.add_argument("--workers", type=int, default=None,
                           help="worker processes for --backend process")
    serve_cmd.add_argument("--store", metavar="DIR", default=None,
                           help="result-store directory (opened sharded; an "
                                "existing flat store is read through "
                                "transparently)")
    serve_cmd.add_argument("--shards", type=int, default=None,
                           help="shard count for a new --store "
                                "(default 16; an existing sharded store "
                                "keeps its persisted count)")
    serve_cmd.add_argument("--lru-size", type=int, default=1024,
                           help="hot-cell LRU capacity (default 1024; "
                                "0 disables the in-memory cache)")
    serve_cmd.add_argument("--batch-window", type=float, default=0.01,
                           help="seconds to hold admissions so concurrent "
                                "submissions coalesce into one backend "
                                "fan-out (default 0.01)")
    serve_cmd.add_argument("--max-batch", type=int, default=256,
                           help="flush a batch immediately at this many "
                                "pending cells (default 256)")

    report_cmd = sub.add_parser(
        "report", help="render paper figures/tables and a REPORT.md")
    report_cmd.add_argument("scenarios", nargs="*", metavar="scenario",
                            help="scenarios to include (see 'python -m repro "
                                 "list'); required unless --all is given")
    report_cmd.add_argument("--all", action="store_true", dest="all_scenarios",
                            help="include every registered scenario, paper "
                                 "artifacts first")
    report_cmd.add_argument("--out", metavar="DIR", default="reports",
                            help="output directory for REPORT.md, figures/, "
                                 "tables/ and the result store "
                                 "(default: reports)")
    report_cmd.add_argument("--store", metavar="DIR", default=None,
                            help="result-store directory "
                                 "(default: <out>/store); already-computed "
                                 "cells are reloaded, not re-run")
    report_cmd.add_argument("--backend", choices=("serial", "process"),
                            default="serial",
                            help="execution backend for missing cells "
                                 "(default: serial)")
    report_cmd.add_argument("--workers", type=int, default=None,
                            help="worker processes for --backend process")
    report_cmd.add_argument("--reps", type=int, default=None,
                            help="Monte-Carlo replication budget override")
    report_cmd.add_argument("--seed", type=int, default=DEFAULT_CLI_SEED,
                            help=f"root seed (default {DEFAULT_CLI_SEED}; "
                                 "-1 draws fresh entropy)")
    report_cmd.add_argument("--force", action="store_true",
                            help="recompute every cell even on a cache hit")
    report_cmd.add_argument("--digits", type=int, default=6,
                            help="significant digits in report tables "
                                 "(default 6)")

    from repro.warehouse.cli import add_query_parser
    add_query_parser(sub)
    return parser


def _cmd_list(verbose: bool) -> int:
    load_builtin_scenarios()
    specs = list_scenarios()
    if not specs:
        print("no scenarios registered")
        return 1
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        reps = f" [reps≈{spec.default_reps}]" if spec.uses_replications else ""
        print(f"{spec.name:<{width}}  {spec.description}{reps}")
        if verbose:
            if spec.paper_reference:
                print(f"{'':<{width}}  ↳ reproduces: {spec.paper_reference}")
            if spec.defaults:
                rendered = ", ".join(f"{k}={v!r}" for k, v in spec.defaults.items())
                print(f"{'':<{width}}  ↳ defaults: {rendered}")
    return 0


def _check_output_path(path: Optional[str], force: bool) -> None:
    """Fail before the run, not after it: a long sweep whose result cannot
    be persisted is wasted work."""
    if path is None:
        return
    if os.path.isdir(path):
        raise SystemExit(f"--output path is a directory: {path}")
    if os.path.exists(path) and not force:
        raise SystemExit(f"--output file exists: {path} "
                         "(pass --force to overwrite)")
    directory = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(directory):
        raise SystemExit(f"--output directory does not exist: {directory}")
    if not os.access(directory, os.W_OK):
        raise SystemExit(f"--output directory is not writable: {directory}")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workers is not None and args.backend != "process":
        raise SystemExit("--workers requires --backend process")
    if args.reps is not None and args.reps < 1:
        raise SystemExit("--reps must be >= 1")
    seed: Optional[int] = None if args.seed == -1 else args.seed
    _check_output_path(args.output, args.force)
    store = None
    if args.store is not None:
        from repro.report import ResultStore
        store = ResultStore(args.store)
    backend = make_backend(args.backend, args.workers)
    runner = ExperimentRunner(backend, seed=seed, reps=args.reps, store=store)
    load_builtin_scenarios()
    try:
        spec = get_scenario(args.scenario)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]) if exc.args else str(exc))
    params: Dict[str, object] = {}
    if args.params is not None:
        params.update(_load_json_object(args.params, "--params"))
    params.update(_parse_params(args.param))
    if spec.internal and not params:
        raise SystemExit(
            f"scenario {spec.name!r} is internal infrastructure and needs "
            "caller-supplied parameters (--params/-p); for the facade's "
            "'evaluate' scenario, prefer `python -m repro eval SPEC.json`")
    # Validate overrides against the scenario signature up front, so a typo'd
    # -p name fails cleanly without masking TypeErrors from the run itself.
    try:
        inspect.signature(spec.func).bind_partial(None, **{**dict(spec.defaults),
                                                           **params})
    except TypeError as exc:
        raise SystemExit(f"bad scenario parameters for {spec.name!r}: {exc}")
    try:
        record = runner.run_record(spec, force=args.recompute, **params)
    except ValueError as exc:
        # Internal scenarios validate their payload contract themselves;
        # surface that as a clean CLI error instead of a traceback.
        if spec.internal:
            raise SystemExit(
                f"scenario {spec.name!r} rejected its parameters: {exc}")
        raise
    result = record.result
    print(result.render(args.digits))
    source = "store cache" if record.cached else f"{record.elapsed_seconds:.2f}s"
    print(f"\n[scenario={args.scenario} backend={backend.describe()} "
          f"seed={seed} reps={args.reps if args.reps is not None else 'default'} "
          f"({source})]")
    if record.cached:
        print(f"[cache hit in {args.store} — scenario not re-executed; "
              "pass --recompute to force a fresh run]")
    if args.output is not None:
        effective = {**dict(spec.defaults), **params}
        try:
            _write_json(args.output, args, spec.name, effective, seed, record)
        except OSError as exc:
            raise SystemExit(f"cannot write --output file: {exc}")
        print(f"[result written to {args.output}]")
    return 0


def _resolve_and_evaluate(args: argparse.Namespace):
    """The eval pipeline: parse the spec file, apply overrides, evaluate.

    Factored out of :func:`_cmd_eval` so ``--timing`` can run the whole
    pipeline under one phase collector (the engines and the facade carry
    the ``assembly``/``solve``/``sim``/``reduce``/``store`` markers; the
    spec parse is timed here).
    """
    from dataclasses import replace

    from repro.api import StudySpec, evaluate_record
    from repro.bench import phase

    with phase("spec-resolve"):
        payload = _load_json_object(args.spec, "spec")
        try:
            spec = StudySpec.from_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(f"bad StudySpec in {args.spec}: {exc}")
        for flag, axis in (("reps", "reps"), ("seed", "seed")):
            if getattr(args, flag) is not None and axis in spec.sweep:
                raise SystemExit(
                    f"--{flag} conflicts with the spec's {axis!r} sweep "
                    "axis; edit the spec or drop the flag")
        if args.reps is not None:
            spec = replace(spec, reps=args.reps)
        if args.seed is not None:
            spec = replace(spec, seed=None if args.seed == -1 else args.seed)

    store = None
    if args.store is not None:
        from repro.report import ResultStore
        store = ResultStore(args.store)
    try:
        result = evaluate_record(spec, method=args.method,
                                 backend=args.backend, workers=args.workers,
                                 store=store, force=args.recompute)
    except (ArithmeticError, KeyError, ValueError) as exc:
        raise SystemExit(f"evaluation failed: {exc}")
    return spec, result


def _cmd_eval(args: argparse.Namespace) -> int:
    if args.workers is not None and args.backend != "process":
        raise SystemExit("--workers requires --backend process")
    if args.reps is not None and args.reps < 1:
        raise SystemExit("--reps must be >= 1")
    _check_output_path(args.output, args.force)
    from repro.report.store import strict_jsonable

    timing_report = None
    if args.timing:
        from repro.bench import collect_phases
        with collect_phases() as timer:
            spec, result = _resolve_and_evaluate(args)
        timing_report = timer.render()
    else:
        spec, result = _resolve_and_evaluate(args)

    if spec.is_sweep:
        print(result.to_experiment_result().render(args.digits))
    else:
        print(result.cells[0].evaluation.to_experiment_result()
              .render(args.digits))
    methods = ", ".join(sorted({c.method for c in result.cells}))
    cache_note = f"; {result.cache_hits} served from the store" \
        if args.store is not None else ""
    seed_note = f"seeds={list(spec.sweep['seed'])}" \
        if "seed" in spec.sweep else f"seed={spec.seed}"
    print(f"\n[{len(result.cells)} cell(s) via {methods}{cache_note}; "
          f"{seed_note}]")
    if result.cache_hits and not args.recompute:
        print(f"[cache hits in {args.store} — pass --recompute to force "
              "fresh evaluations]")
    if args.output is not None:
        evaluations = [cell.evaluation.to_dict() for cell in result.cells]
        envelope = {
            "spec": spec.to_dict(),
            "method": args.method,
            "version": __version__,
            "evaluations": evaluations,
        }
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(strict_jsonable(envelope), handle, indent=2,
                          sort_keys=True, allow_nan=False)
                handle.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write --output file: {exc}")
        print(f"[evaluation written to {args.output}]")
    if timing_report is not None:
        print()
        print(timing_report)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers is not None and args.backend != "process":
        raise SystemExit("--workers requires --backend process")
    if args.lru_size < 0:
        raise SystemExit("--lru-size must be >= 0")
    if args.batch_window < 0:
        raise SystemExit("--batch-window must be >= 0")
    if args.max_batch < 1:
        raise SystemExit("--max-batch must be >= 1")
    if args.shards is not None and args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.shards is not None and args.store is None:
        raise SystemExit("--shards requires --store")
    import asyncio

    from repro.service import EvaluationServer, EvaluationService

    async def _serve() -> None:
        service = EvaluationService(
            backend=args.backend, workers=args.workers, store=args.store,
            shards=args.shards, lru_size=args.lru_size,
            batch_window=args.batch_window, max_batch=args.max_batch)
        server = EvaluationServer(service, host=args.host, port=args.port)
        await server.start()
        store_note = f" store={args.store}" if args.store else ""
        print(f"[repro serve] listening on http://{server.host}:{server.port} "
              f"backend={service.backend.describe()}{store_note}",
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\n[repro serve] stopped")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.workers is not None and args.backend != "process":
        raise SystemExit("--workers requires --backend process")
    if args.reps is not None and args.reps < 1:
        raise SystemExit("--reps must be >= 1")
    if not args.all_scenarios and not args.scenarios:
        raise SystemExit("name at least one scenario, or pass --all")
    if args.all_scenarios and args.scenarios:
        raise SystemExit("--all and explicit scenario names are exclusive")
    from repro.report import generate_report
    load_builtin_scenarios()
    if args.scenarios:
        # Fail on unknown (or non-renderable internal) names before any
        # cell is computed.
        for name in args.scenarios:
            try:
                spec = get_scenario(name)
            except KeyError as exc:
                raise SystemExit(str(exc.args[0]) if exc.args else str(exc))
            if spec.internal:
                raise SystemExit(
                    f"scenario {name!r} is internal infrastructure and has "
                    "no report rendering; evaluate it with `python -m repro "
                    "eval SPEC.json`")
    seed: Optional[int] = None if args.seed == -1 else args.seed
    summary = generate_report(
        None if args.all_scenarios else args.scenarios,
        out_dir=args.out,
        store=args.store,
        backend=args.backend,
        workers=args.workers,
        seed=seed,
        reps=args.reps,
        force=args.force,
        digits=args.digits,
    )
    print(f"report written to {summary.report_path}")
    print(f"[{summary.computed} scenario(s) computed, {summary.cache_hits} "
          f"served from the store at {summary.store_root}]")
    for path in summary.artifact_paths:
        print(f"  - {os.path.relpath(path, args.out)}")
    return 0


def _jsonable(value):
    """Best-effort conversion of parameter values for the JSON envelope."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if hasattr(value, "item"):        # numpy scalars
        return value.item()
    return value


def _write_json(path: str, args: argparse.Namespace, scenario_name: str,
                params: Dict[str, object], seed: Optional[int],
                record) -> None:
    """Persist the run as a JSON envelope around ``ExperimentResult.to_dict``.

    ``backend``/``elapsed_seconds`` describe the run that *computed* the
    result — on a ``--store`` cache hit that is the original run, which is
    why the envelope also carries an explicit ``cached`` flag.
    """
    from repro.report.store import strict_jsonable
    envelope = {
        "scenario": scenario_name,
        "params": _jsonable(params),
        "seed": seed,
        "reps": record.reps,
        "backend": record.backend,
        "workers": args.workers,
        "elapsed_seconds": record.elapsed_seconds,
        "cached": record.cached,
        "version": __version__,
        "result": record.result.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(strict_jsonable(envelope), handle, indent=2, sort_keys=True,
                  allow_nan=False)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args.verbose)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "eval":
        return _cmd_eval(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        from repro.warehouse.cli import cmd_query
        return cmd_query(args)
    return _cmd_run(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like other CLIs.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(1)
