"""``python -m repro`` — list and run registered experiment scenarios.

Examples
--------
::

    python -m repro list
    python -m repro run table1
    python -m repro run table1 -p simulate=true --reps 20000 \\
        --backend process --workers 8
    python -m repro run validation --reps 200 --seed 7
"""

from __future__ import annotations

import argparse
import ast
import inspect
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.runner import (
    ExperimentRunner,
    get_scenario,
    list_scenarios,
    load_builtin_scenarios,
    make_backend,
)

#: Default root seed for CLI runs, so invocations are reproducible unless the
#: user asks for fresh entropy with ``--seed -1``.
DEFAULT_CLI_SEED = 2024


def _parse_value(text: str):
    """Best-effort literal parsing: ints, floats, tuples, booleans, strings."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(pairs: Sequence[str]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        params[key] = _parse_value(value)
    return params


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the registered experiment scenarios of the "
                    "Shin & Lee (1983) reproduction.")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered scenarios")
    list_cmd.add_argument("-v", "--verbose", action="store_true",
                          help="include paper references and defaults")

    run_cmd = sub.add_parser("run", help="run one scenario and print its table")
    run_cmd.add_argument("scenario", help="registered scenario name "
                                          "(see 'python -m repro list')")
    run_cmd.add_argument("--backend", choices=("serial", "process"),
                         default="serial", help="execution backend "
                                                "(default: serial)")
    run_cmd.add_argument("--workers", type=int, default=None,
                         help="worker processes for --backend process "
                              "(default: all cores)")
    run_cmd.add_argument("--reps", type=int, default=None,
                         help="Monte-Carlo replication budget "
                              "(scenario default if omitted; ignored by "
                              "purely analytic scenarios)")
    run_cmd.add_argument("--seed", type=int, default=DEFAULT_CLI_SEED,
                         help=f"root seed (default {DEFAULT_CLI_SEED}; "
                              "-1 draws fresh entropy)")
    run_cmd.add_argument("-p", "--param", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="scenario parameter override (repeatable)")
    run_cmd.add_argument("--digits", type=int, default=4,
                         help="float digits in the rendered table (default 4)")
    return parser


def _cmd_list(verbose: bool) -> int:
    load_builtin_scenarios()
    specs = list_scenarios()
    if not specs:
        print("no scenarios registered")
        return 1
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        reps = f" [reps≈{spec.default_reps}]" if spec.uses_replications else ""
        print(f"{spec.name:<{width}}  {spec.description}{reps}")
        if verbose:
            if spec.paper_reference:
                print(f"{'':<{width}}  ↳ reproduces: {spec.paper_reference}")
            if spec.defaults:
                rendered = ", ".join(f"{k}={v!r}" for k, v in spec.defaults.items())
                print(f"{'':<{width}}  ↳ defaults: {rendered}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workers is not None and args.backend != "process":
        raise SystemExit("--workers requires --backend process")
    if args.reps is not None and args.reps < 1:
        raise SystemExit("--reps must be >= 1")
    seed: Optional[int] = None if args.seed == -1 else args.seed
    backend = make_backend(args.backend, args.workers)
    runner = ExperimentRunner(backend, seed=seed, reps=args.reps)
    load_builtin_scenarios()
    try:
        spec = get_scenario(args.scenario)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]) if exc.args else str(exc))
    params = _parse_params(args.param)
    # Validate overrides against the scenario signature up front, so a typo'd
    # -p name fails cleanly without masking TypeErrors from the run itself.
    try:
        inspect.signature(spec.func).bind_partial(None, **{**dict(spec.defaults),
                                                           **params})
    except TypeError as exc:
        raise SystemExit(f"bad scenario parameters for {spec.name!r}: {exc}")
    result = runner.run(spec, **params)
    print(result.render(args.digits))
    print(f"\n[scenario={args.scenario} backend={backend.describe()} "
          f"seed={seed} reps={args.reps if args.reps is not None else 'default'}]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args.verbose)
    return _cmd_run(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like other CLIs.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(1)
