"""Deterministic trace workloads.

Hand-written or recorded traces of recovery points and interactions, replayable
into a :class:`~repro.core.history.HistoryDiagram`.  Traces serve three purposes:

* unit tests build tiny deterministic histories (e.g. the exact scenario of the
  paper's Figure 1) without touching random numbers;
* recorded runs of the discrete-event runtimes can be re-analysed offline;
* the examples use them to illustrate rollback propagation step by step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.history import HistoryDiagram
from repro.core.types import CheckpointKind

__all__ = ["TraceEvent", "TraceWorkload", "history_from_trace", "figure1_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``kind`` is ``"rp"``, ``"prp"`` or ``"msg"``.  For checkpoints, ``process`` is
    the owner; for messages, ``process`` is the sender and ``peer`` the receiver.
    """

    time: float
    kind: str
    process: int
    peer: int = -1
    origin: Tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("rp", "prp", "msg"):
            raise ValueError(f"unknown trace event kind {self.kind!r}")
        if self.kind == "msg" and self.peer < 0:
            raise ValueError("message events need a peer")
        if self.kind == "prp" and self.origin is None:
            raise ValueError("pseudo recovery points need an origin")
        if self.time < 0.0:
            raise ValueError("trace times must be non-negative")


@dataclass(frozen=True)
class TraceWorkload:
    """A named, fixed sequence of trace events over ``n_processes`` processes."""

    name: str
    n_processes: int
    events: Tuple[TraceEvent, ...]

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ValueError("need at least one process")
        events = tuple(sorted(self.events, key=lambda e: e.time))
        object.__setattr__(self, "events", events)
        for event in events:
            limit = self.n_processes
            if not (0 <= event.process < limit):
                raise ValueError(f"event process {event.process} out of range")
            if event.kind == "msg" and not (0 <= event.peer < limit):
                raise ValueError(f"event peer {event.peer} out of range")

    def to_history(self) -> HistoryDiagram:
        return history_from_trace(self.n_processes, self.events)

    @property
    def duration(self) -> float:
        return self.events[-1].time if self.events else 0.0


def history_from_trace(n_processes: int,
                       events: Iterable[TraceEvent]) -> HistoryDiagram:
    """Replay trace *events* into a fresh :class:`HistoryDiagram`."""
    history = HistoryDiagram(n_processes)
    for event in sorted(events, key=lambda e: e.time):
        if event.kind == "rp":
            history.add_recovery_point(event.process, event.time,
                                       kind=CheckpointKind.REGULAR)
        elif event.kind == "prp":
            history.add_recovery_point(event.process, event.time,
                                       kind=CheckpointKind.PSEUDO,
                                       origin=event.origin)
        else:
            history.add_interaction(event.process, event.peer, event.time)
    return history


def figure1_trace() -> TraceWorkload:
    """The rollback-propagation scenario of the paper's Figure 1.

    Three processes; recovery points and interactions are laid out so that a
    failure of ``P_1`` at its fourth acceptance test propagates through ``P_2`` and
    ``P_3`` back to the recovery line formed around ``t = 2``: the later recovery
    points are all invalidated by messages sandwiched between them.
    """
    events: List[TraceEvent] = [
        # An early, globally consistent layer of recovery points (forms RL_2).
        TraceEvent(time=1.8, kind="rp", process=0),
        TraceEvent(time=2.0, kind="rp", process=1),
        TraceEvent(time=2.1, kind="rp", process=2),
        # Interactions that tie the later checkpoints together pairwise.
        TraceEvent(time=3.0, kind="msg", process=0, peer=1),
        TraceEvent(time=3.4, kind="rp", process=1),
        TraceEvent(time=3.8, kind="msg", process=1, peer=2),
        TraceEvent(time=4.2, kind="rp", process=2),
        TraceEvent(time=4.6, kind="msg", process=2, peer=0),
        TraceEvent(time=5.0, kind="rp", process=0),
        TraceEvent(time=5.4, kind="msg", process=0, peer=1),
        TraceEvent(time=5.8, kind="msg", process=1, peer=2),
        # P_1 fails its acceptance test at t = 6.2 (AT_1^4 in the figure).
    ]
    return TraceWorkload(name="figure1", n_processes=3, events=tuple(events))
