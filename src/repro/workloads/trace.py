"""Deterministic trace workloads.

Hand-written or recorded traces of recovery points and interactions, replayable
into a :class:`~repro.core.history.HistoryDiagram`.  Traces serve three purposes:

* unit tests build tiny deterministic histories (e.g. the exact scenario of the
  paper's Figure 1) without touching random numbers;
* recorded runs of the discrete-event runtimes can be re-analysed offline;
* the examples use them to illustrate rollback propagation step by step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.history import HistoryDiagram
from repro.core.types import CheckpointKind

__all__ = ["TraceEvent", "TraceWorkload", "history_from_trace",
           "figure1_trace", "domino_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``kind`` is ``"rp"``, ``"prp"`` or ``"msg"``.  For checkpoints, ``process`` is
    the owner; for messages, ``process`` is the sender and ``peer`` the receiver.
    """

    time: float
    kind: str
    process: int
    peer: int = -1
    origin: Tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("rp", "prp", "msg"):
            raise ValueError(f"unknown trace event kind {self.kind!r}")
        if self.kind == "msg" and self.peer < 0:
            raise ValueError("message events need a peer")
        if self.kind == "prp" and self.origin is None:
            raise ValueError("pseudo recovery points need an origin")
        if self.time < 0.0:
            raise ValueError("trace times must be non-negative")


@dataclass(frozen=True)
class TraceWorkload:
    """A named, fixed sequence of trace events over ``n_processes`` processes."""

    name: str
    n_processes: int
    events: Tuple[TraceEvent, ...]

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ValueError("need at least one process")
        events = tuple(sorted(self.events, key=lambda e: e.time))
        object.__setattr__(self, "events", events)
        for event in events:
            limit = self.n_processes
            if not (0 <= event.process < limit):
                raise ValueError(f"event process {event.process} out of range")
            if event.kind == "msg" and not (0 <= event.peer < limit):
                raise ValueError(f"event peer {event.peer} out of range")

    def to_history(self) -> HistoryDiagram:
        return history_from_trace(self.n_processes, self.events)

    @property
    def duration(self) -> float:
        return self.events[-1].time if self.events else 0.0


def history_from_trace(n_processes: int,
                       events: Iterable[TraceEvent]) -> HistoryDiagram:
    """Replay trace *events* into a fresh :class:`HistoryDiagram`."""
    history = HistoryDiagram(n_processes)
    for event in sorted(events, key=lambda e: e.time):
        if event.kind == "rp":
            history.add_recovery_point(event.process, event.time,
                                       kind=CheckpointKind.REGULAR)
        elif event.kind == "prp":
            history.add_recovery_point(event.process, event.time,
                                       kind=CheckpointKind.PSEUDO,
                                       origin=event.origin)
        else:
            history.add_interaction(event.process, event.peer, event.time)
    return history


def figure1_trace() -> TraceWorkload:
    """The rollback-propagation scenario of the paper's Figure 1.

    Three processes; recovery points and interactions are laid out so that a
    failure of ``P_1`` at its fourth acceptance test propagates through ``P_2`` and
    ``P_3`` back to the recovery line formed around ``t = 2``: the later recovery
    points are all invalidated by messages sandwiched between them.
    """
    events: List[TraceEvent] = [
        # An early, globally consistent layer of recovery points (forms RL_2).
        TraceEvent(time=1.8, kind="rp", process=0),
        TraceEvent(time=2.0, kind="rp", process=1),
        TraceEvent(time=2.1, kind="rp", process=2),
        # Interactions that tie the later checkpoints together pairwise.
        TraceEvent(time=3.0, kind="msg", process=0, peer=1),
        TraceEvent(time=3.4, kind="rp", process=1),
        TraceEvent(time=3.8, kind="msg", process=1, peer=2),
        TraceEvent(time=4.2, kind="rp", process=2),
        TraceEvent(time=4.6, kind="msg", process=2, peer=0),
        TraceEvent(time=5.0, kind="rp", process=0),
        TraceEvent(time=5.4, kind="msg", process=0, peer=1),
        TraceEvent(time=5.8, kind="msg", process=1, peer=2),
        # P_1 fails its acceptance test at t = 6.2 (AT_1^4 in the figure).
    ]
    return TraceWorkload(name="figure1", n_processes=3, events=tuple(events))


def domino_trace(n: int = 3, *, spacing: float = 0.4) -> TraceWorkload:
    """Figure 1's domino-effect scenario generalised to *n* processes.

    The structure is the paper's: an early, globally consistent layer of
    recovery points, then one full cycle of ``msg(i → i+1 mod n)`` /
    ``rp(i+1 mod n)`` links every *spacing* time units (each later RP
    sandwiched between messages, so none of them line up), and finally
    ``n − 1`` closing messages with no recovery points behind them — the
    configuration in which a single failure dominoes all the way back to the
    early layer.  ``domino_trace(3)`` with the default spacing reproduces
    :func:`figure1_trace` event for event.

    The early layer keeps Figure 1's triangular stagger ``t_i = 2.1 −
    0.05·(n−1−i)·(n−i)`` (which yields the paper's 1.8 / 2.0 / 2.1 for
    ``n = 3``); for large *n* the whole trace is shifted right so the first
    layer time stays positive.
    """
    if n < 2:
        raise ValueError("a domino scenario needs at least two processes")
    if spacing <= 0.0:
        raise ValueError("spacing must be positive")
    layer = [2.1 - 0.05 * (n - 1 - i) * (n - i) for i in range(n)]
    shift = max(0.0, 0.1 - layer[0])
    # Times are accumulated as (multiple of spacing) offsets and rounded so
    # binary representation noise cannot creep in: domino_trace(3) must equal
    # figure1_trace()'s literal event times bit for bit.
    grid = lambda steps: round(3.0 + shift + spacing * steps, 12)
    events: List[TraceEvent] = [
        TraceEvent(time=round(layer[i] + shift, 12), kind="rp", process=i)
        for i in range(n)
    ]
    for i in range(n):
        events.append(TraceEvent(time=grid(2 * i), kind="msg", process=i,
                                 peer=(i + 1) % n))
        events.append(TraceEvent(time=grid(2 * i + 1), kind="rp",
                                 process=(i + 1) % n))
    for i in range(n - 1):
        events.append(TraceEvent(time=grid(2 * n + i), kind="msg",
                                 process=i, peer=i + 1))
    return TraceWorkload(name=f"domino{n}", n_processes=n,
                         events=tuple(events))
