"""Pre-canned workloads: the paper's parameter cases and richer scenarios.

The first two builders reproduce the exact parameter points of Table 1 and
Figure 6; the remaining ones are the domain scenarios used by the examples — a
homogeneous compute job, a producer/consumer pipeline, and a time-critical control
loop (the paper's motivation for rejecting long rollbacks in "time-critical tasks
in which a delay in system response beyond … the system deadline leads to a
catastrophic failure").
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.parameters import SystemParameters
from repro.processes.communication import all_pairs_rates, producer_consumer_rates
from repro.processes.program import RecoveryBlockSpec
from repro.workloads.spec import FaultModel, WorkloadSpec

__all__ = [
    "TABLE1_CASES",
    "FIGURE6_CASES",
    "paper_table1_case",
    "paper_figure6_case",
    "homogeneous_workload",
    "pipeline_workload",
    "realtime_control_workload",
    "spread_rates",
    "strategy_workload",
]

#: The five (μ, λ) cases of Table 1: ``(μ_1, μ_2, μ_3)`` and ``(λ_12, λ_23, λ_31)``.
TABLE1_CASES: Tuple[Tuple[Tuple[float, float, float], Tuple[float, float, float]], ...] = (
    ((1.0, 1.0, 1.0), (1.0, 1.0, 1.0)),
    ((1.5, 1.0, 0.5), (1.0, 1.0, 1.0)),
    ((1.0, 1.0, 1.0), (1.5, 0.5, 1.0)),
    ((1.5, 1.0, 0.5), (1.5, 0.5, 1.0)),
    ((1.5, 1.0, 0.5), (0.5, 1.5, 1.0)),
)

#: The three density cases of Figure 6.
FIGURE6_CASES: Tuple[Tuple[Tuple[float, float, float], Tuple[float, float, float]], ...] = (
    ((1.0, 1.0, 1.0), (1.0, 1.0, 1.0)),
    ((0.6, 0.45, 0.45), (0.5, 0.5, 0.5)),
    ((0.6, 0.45, 0.45), (0.75, 0.75, 0.75)),
)


def paper_table1_case(case: int) -> SystemParameters:
    """System parameters of Table 1 column *case* (1-based, 1…5)."""
    if not (1 <= case <= len(TABLE1_CASES)):
        raise ValueError(f"Table 1 has cases 1..{len(TABLE1_CASES)}, got {case}")
    mu, lam = TABLE1_CASES[case - 1]
    return SystemParameters.three_process(mu, lam)


def paper_figure6_case(case: int) -> SystemParameters:
    """System parameters of Figure 6 curve *case* (1-based, 1…3)."""
    if not (1 <= case <= len(FIGURE6_CASES)):
        raise ValueError(f"Figure 6 has cases 1..{len(FIGURE6_CASES)}, got {case}")
    mu, lam = FIGURE6_CASES[case - 1]
    return SystemParameters.three_process(mu, lam)


def homogeneous_workload(n: int = 3, *, mu: float = 1.0, lam: float = 1.0,
                         work: float = 50.0, error_rate: float = 0.02,
                         checkpoint_cost: float = 0.02) -> WorkloadSpec:
    """A symmetric all-pairs workload (the paper's canonical setting)."""
    params = SystemParameters(mu=[mu] * n, lam=all_pairs_rates(n, lam))
    return WorkloadSpec(params=params, work_per_process=work,
                        checkpoint_cost=checkpoint_cost,
                        faults=FaultModel(error_rate=error_rate))


def spread_rates(n: int, mu: float, spread: float = 1.0) -> np.ndarray:
    """Per-process rates spread geometrically between ``μ/spread`` and ``μ·spread``.

    The aggregate rate is kept at ``n·μ`` so that heterogeneity is compared at
    constant total checkpointing capacity — the transformation of the Section 3
    ``CL`` table, shared here so the sync-loss experiment and the declarative
    ``strategy`` system kind construct bit-identical rate vectors.
    ``spread = 1`` is the homogeneous case.
    """
    if spread <= 0.0:
        raise ValueError("heterogeneity factors must be positive")
    n = int(n)
    if spread == 1.0 or n == 1:
        return np.full(n, mu)
    rates = np.geomspace(mu / spread, mu * spread, n)
    rates *= (mu * n) / rates.sum()   # keep the same aggregate rate
    return rates


def strategy_workload(n: int, *, mu: float = 1.0, mu_spread: float = 1.0,
                      lam: float = 1.0, work: float = 25.0,
                      error_rate: float = 0.0, checkpoint_cost: float = 0.02,
                      restart_cost: float = 0.05,
                      failure_law: str = "exponential",
                      failure_shape: Optional[float] = None,
                      fault_model: Optional[dict] = None) -> WorkloadSpec:
    """The workload family behind the declarative ``strategy`` system kind.

    All-pairs interaction at rate *lam*, recovery-point rates spread by
    *mu_spread* (see :func:`spread_rates`), and the stated costs/fault rate.
    With the defaults this is exactly :func:`homogeneous_workload`'s shape, so
    the strategy-comparison scenario keeps its pre-facade workloads.

    *failure_law*/*failure_shape* select the fault interarrival law (mean
    ``1/error_rate``, exponential by default); *fault_model* is the optional
    correlated-fault block of the spec schema (``groups``,
    ``common_mode_rate``, ``propagation_probability``, ``cascade_depth``).
    """
    params = SystemParameters(mu=spread_rates(n, mu, mu_spread),
                              lam=all_pairs_rates(n, lam))
    correlated = dict(fault_model or {})
    faults = FaultModel(
        error_rate=error_rate,
        interarrival_law=failure_law,
        interarrival_shape=failure_shape,
        common_mode_groups=tuple(tuple(int(p) for p in group)
                                 for group in correlated.get("groups", ())),
        common_mode_rate=float(correlated.get("common_mode_rate", 0.0)),
        propagation_probability=float(
            correlated.get("propagation_probability", 0.0)),
        cascade_depth=int(correlated.get("cascade_depth", 0)))
    return WorkloadSpec(params=params, work_per_process=work,
                        checkpoint_cost=checkpoint_cost,
                        restart_cost=restart_cost,
                        faults=faults)


def pipeline_workload(n: int = 4, *, mu: float = 1.0, lam: float = 2.0,
                      work: float = 40.0, error_rate: float = 0.03,
                      checkpoint_cost: float = 0.02) -> WorkloadSpec:
    """A producer/consumer pipeline: heavy neighbour traffic, classic domino risk."""
    params = SystemParameters(mu=[mu] * n, lam=producer_consumer_rates(n, lam))
    return WorkloadSpec(params=params, work_per_process=work,
                        checkpoint_cost=checkpoint_cost,
                        faults=FaultModel(error_rate=error_rate),
                        block_spec=RecoveryBlockSpec.with_alternates(2))


def realtime_control_workload(n: int = 3, *, cycle_rate: float = 2.0,
                              coupling: float = 1.5, work: float = 30.0,
                              error_rate: float = 0.05,
                              checkpoint_cost: float = 0.01,
                              deadline: Optional[float] = None) -> WorkloadSpec:
    """A time-critical control task (sensor / control-law / actuator processes).

    High checkpointing frequency (``cycle_rate``) and tight coupling; the paper's
    conclusion argues the asynchronous scheme is unacceptable here because the
    rollback distance is unbounded, which the strategy-comparison experiment makes
    measurable.  ``deadline`` is carried via ``max_sim_time`` scaling when given.
    """
    params = SystemParameters(mu=[cycle_rate] * n,
                              lam=all_pairs_rates(n, coupling))
    max_time = 1e6 if deadline is None else max(deadline * 10.0, work * 10.0)
    return WorkloadSpec(params=params, work_per_process=work,
                        checkpoint_cost=checkpoint_cost,
                        faults=FaultModel(error_rate=error_rate,
                                          external_detection_probability=0.8),
                        block_spec=RecoveryBlockSpec.with_alternates(3),
                        max_sim_time=max_time)
