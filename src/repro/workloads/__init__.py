"""Workload generators for the recovery-block runtimes and experiments.

A workload fixes everything about the concurrent computation except the recovery
scheme: how many processes, how much useful work each must complete, how often they
checkpoint and interact (the Section 2.1 rates), how faults arrive, and how costly
state saving is.  The same :class:`~repro.workloads.spec.WorkloadSpec` can then be
run under the asynchronous, synchronized and PRP runtimes for a like-for-like
comparison.
"""

from repro.workloads.spec import FaultModel, WorkloadSpec
from repro.workloads.generators import (
    paper_table1_case,
    paper_figure6_case,
    homogeneous_workload,
    pipeline_workload,
    realtime_control_workload,
)
from repro.workloads.trace import TraceEvent, TraceWorkload, history_from_trace

__all__ = [
    "FaultModel",
    "WorkloadSpec",
    "paper_table1_case",
    "paper_figure6_case",
    "homogeneous_workload",
    "pipeline_workload",
    "realtime_control_workload",
    "TraceEvent",
    "TraceWorkload",
    "history_from_trace",
]
