"""Workload specification shared by all recovery-scheme runtimes."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from repro.core.parameters import SystemParameters
from repro.processes.acceptance import AcceptanceTestModel, PerfectAcceptanceTest
from repro.processes.program import RecoveryBlockSpec
from repro.util.validation import check_non_negative, check_positive, check_probability

__all__ = ["FaultModel", "WorkloadSpec"]


@dataclass(frozen=True)
class FaultModel:
    """Stochastic fault-injection model.

    Attributes
    ----------
    error_rate:
        Poisson rate (per process, per unit of *running* time) at which transient
        errors corrupt the process state.
    propagate_via_messages:
        Whether a message sent by a contaminated process contaminates the receiver
        (the mechanism behind rollback propagation and, for PRPs, contaminated
        pseudo recovery points).
    external_detection_probability:
        Probability that an acceptance test flags contamination that originated in
        *another* process (Section 2.1: local errors are always detected, external
        ones "may or may not" be).
    interarrival_law:
        Law of the per-process fault interarrival times: ``"exponential"``
        (the default Poisson timeline), ``"weibull"`` or ``"lognormal"``
        renewal processes with mean interarrival ``1/error_rate``.
    interarrival_shape:
        Shape of a non-exponential interarrival law (Weibull ``k`` /
        lognormal ``σ``); required exactly when the law is non-exponential.
    common_mode_groups:
        Common-mode failure groups: subsets of process ids that a single
        correlated fault event strikes together.
    common_mode_rate:
        Poisson rate of common-mode fault events, per group.
    propagation_probability:
        Probability that a correlated fault crosses one interaction edge to a
        neighbouring process during cascade expansion.
    cascade_depth:
        Maximum number of hops a correlated fault may cascade beyond the
        group it struck (0 disables cascading).
    """

    error_rate: float = 0.0
    propagate_via_messages: bool = True
    external_detection_probability: float = 1.0
    interarrival_law: str = "exponential"
    interarrival_shape: Optional[float] = None
    common_mode_groups: Tuple[Tuple[int, ...], ...] = ()
    common_mode_rate: float = 0.0
    propagation_probability: float = 0.0
    cascade_depth: int = 0

    def __post_init__(self) -> None:
        check_non_negative(self.error_rate, "error_rate")
        check_probability(self.external_detection_probability,
                          "external_detection_probability")
        if self.interarrival_law not in ("exponential", "weibull", "lognormal"):
            raise ValueError(f"unknown fault interarrival law "
                             f"{self.interarrival_law!r}")
        if self.interarrival_law == "exponential":
            if self.interarrival_shape is not None:
                raise ValueError("interarrival_shape requires a "
                                 "non-exponential interarrival_law")
        else:
            if self.interarrival_shape is None or self.interarrival_shape <= 0:
                raise ValueError("a non-exponential interarrival_law needs a "
                                 "positive interarrival_shape")
        object.__setattr__(self, "common_mode_groups",
                           tuple(tuple(int(p) for p in group)
                                 for group in self.common_mode_groups))
        check_non_negative(self.common_mode_rate, "common_mode_rate")
        check_probability(self.propagation_probability,
                          "propagation_probability")
        if int(self.cascade_depth) < 0:
            raise ValueError("cascade_depth must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.error_rate > 0.0

    @property
    def has_common_mode(self) -> bool:
        """Whether correlated (common-mode) fault events are configured."""
        return bool(self.common_mode_groups) and self.common_mode_rate > 0.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything about the computation except the recovery scheme.

    Attributes
    ----------
    params:
        Recovery-point and interaction rates (``μ_i``, ``λ_ij``).
    work_per_process:
        Useful computation each process must complete (simulated time units at
        rate 1) before it is finished.
    checkpoint_cost:
        Time ``t_r`` needed to record one process state (used for RPs *and* PRPs —
        Section 4 charges ``(n−1)·t_r`` extra per RP under the PRP scheme).
    restart_cost:
        Fixed time to restore a saved state during a rollback.
    faults:
        Fault-injection model.
    block_spec:
        Structure of each recovery block (primary/alternates).
    acceptance:
        Acceptance-test model.
    message_latency:
        Delivery latency of interprocess messages.
    max_sim_time:
        Hard stop for a runtime run (safety bound; generous by default).
    """

    params: SystemParameters
    work_per_process: float = 50.0
    checkpoint_cost: float = 0.02
    restart_cost: float = 0.05
    faults: FaultModel = field(default_factory=FaultModel)
    block_spec: RecoveryBlockSpec = field(default_factory=RecoveryBlockSpec)
    acceptance: AcceptanceTestModel = field(default_factory=PerfectAcceptanceTest)
    message_latency: float = 0.0
    max_sim_time: float = 1e6

    def __post_init__(self) -> None:
        check_positive(self.work_per_process, "work_per_process")
        check_non_negative(self.checkpoint_cost, "checkpoint_cost")
        check_non_negative(self.restart_cost, "restart_cost")
        check_non_negative(self.message_latency, "message_latency")
        check_positive(self.max_sim_time, "max_sim_time")

    # ------------------------------------------------------------------ helpers
    @property
    def n_processes(self) -> int:
        return self.params.n

    def with_faults(self, error_rate: float, **kwargs) -> "WorkloadSpec":
        """Copy of the spec with a different fault rate (convenience for sweeps)."""
        return replace(self, faults=FaultModel(error_rate=error_rate, **kwargs))

    def with_work(self, work_per_process: float) -> "WorkloadSpec":
        return replace(self, work_per_process=work_per_process)

    def with_checkpoint_cost(self, checkpoint_cost: float) -> "WorkloadSpec":
        return replace(self, checkpoint_cost=checkpoint_cost)

    def ideal_completion_time(self) -> float:
        """Completion time with zero overhead, zero faults and no waiting."""
        return self.work_per_process

    def expected_checkpoints_per_process(self) -> np.ndarray:
        """Rough expectation of how many RPs each process takes while working."""
        return self.params.mu * self.work_per_process
