"""The ``python -m repro query`` subcommand: load, kpi, sql.

Three verbs over one SQLite warehouse file:

``query load --store DIR [--db FILE]``
    Run the incremental ETL (:func:`repro.warehouse.etl.load_store`).
``query kpi [NAME] [--format table|json|csv] [--limit N]``
    Render one canned KPI view (:data:`repro.warehouse.views.KPI_VIEWS`);
    without a name, list the catalog.
``query sql STMT [--format ...]``
    Run one read-only SQL statement.  The connection is opened ``mode=ro``
    with ``PRAGMA query_only`` — writes fail inside SQLite itself, so the
    flag is a sandbox, not a parser.

All output formats render the same ``(columns, rows)`` shape; ``json``
emits a list of row objects, ``csv`` uses the stdlib writer, ``table``
pads columns to their widest cell.
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sqlite3
from typing import List, Sequence

from repro.warehouse.etl import load_store
from repro.warehouse.schema import connect_readonly
from repro.warehouse.views import KPI_VIEWS, kpi_rows

__all__ = ["add_query_parser", "cmd_query", "format_rows"]

#: Default warehouse database file (relative to the working directory).
DEFAULT_DB = "warehouse.sqlite"

#: Default store directory, matching the CLI examples elsewhere.
DEFAULT_STORE = ".repro-store"


def _render_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)                  # shortest exact decimal form
    return str(value)


def format_rows(columns: List[str], rows: Sequence[Sequence[object]],
                fmt: str) -> str:
    """Render query output as an aligned table, JSON row objects, or CSV."""
    if fmt == "json":
        return json.dumps([dict(zip(columns, row)) for row in rows],
                          indent=2, sort_keys=False)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for row in rows:
            writer.writerow([_render_cell(v) for v in row])
        return buffer.getvalue().rstrip("\n")
    # table
    cells = [[_render_cell(v) for v in row] for row in rows]
    widths = [max([len(name)] + [len(row[i]) for row in cells])
              for i, name in enumerate(columns)]
    lines = ["  ".join(name.ljust(widths[i])
                       for i, name in enumerate(columns)).rstrip(),
             "  ".join("-" * w for w in widths)]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def add_query_parser(sub: "argparse._SubParsersAction") -> None:
    """Register the ``query`` subcommand on the top-level CLI parser."""
    query_cmd = sub.add_parser(
        "query", help="analytics warehouse over the result store "
                      "(ETL + canned KPI views + read-only SQL)")
    qsub = query_cmd.add_subparsers(dest="query_command", required=True)

    load_cmd = qsub.add_parser(
        "load", help="load (incrementally) a result store into the "
                     "warehouse database")
    load_cmd.add_argument("--store", metavar="DIR", default=DEFAULT_STORE,
                          help="result-store directory, flat or sharded "
                               f"(default: {DEFAULT_STORE})")
    load_cmd.add_argument("--db", metavar="FILE", default=DEFAULT_DB,
                          help="warehouse SQLite file, created if missing "
                               f"(default: {DEFAULT_DB})")

    kpi_cmd = qsub.add_parser(
        "kpi", help="render a canned KPI view (no name: list the catalog)")
    kpi_cmd.add_argument("view", nargs="?", default=None,
                         help="view name, one of: "
                              + ", ".join(sorted(KPI_VIEWS)))
    kpi_cmd.add_argument("--db", metavar="FILE", default=DEFAULT_DB,
                         help=f"warehouse SQLite file (default: {DEFAULT_DB})")
    kpi_cmd.add_argument("--format", choices=("table", "json", "csv"),
                         default="table", help="output format "
                                               "(default: table)")
    kpi_cmd.add_argument("--limit", type=int, default=0,
                         help="cap the row count (0 = all rows)")

    sql_cmd = qsub.add_parser(
        "sql", help="run one read-only SQL statement against the warehouse")
    sql_cmd.add_argument("statement", help="SQL to execute (the connection "
                                           "is read-only; writes fail)")
    sql_cmd.add_argument("--db", metavar="FILE", default=DEFAULT_DB,
                         help=f"warehouse SQLite file (default: {DEFAULT_DB})")
    sql_cmd.add_argument("--format", choices=("table", "json", "csv"),
                         default="table", help="output format "
                                               "(default: table)")


def _cmd_load(args: argparse.Namespace) -> int:
    import os
    if not os.path.isdir(args.store):
        raise SystemExit(f"result store not found: {args.store}")
    summary = load_store(args.store, args.db)
    print(f"[query load] {summary.cells_inserted} cell(s) loaded, "
          f"{summary.cells_skipped} already present "
          f"(store={args.store} db={args.db} load_id={summary.load_id})")
    return 0


def _cmd_kpi(args: argparse.Namespace) -> int:
    if args.view is None:
        width = max(len(name) for name in KPI_VIEWS)
        for name in sorted(KPI_VIEWS):
            print(f"{name:<{width}}  {KPI_VIEWS[name].description}")
        return 0
    if args.limit < 0:
        raise SystemExit("--limit must be >= 0")
    try:
        conn = connect_readonly(args.db)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    try:
        try:
            columns, rows = kpi_rows(conn, args.view, limit=args.limit)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
        except sqlite3.OperationalError as exc:
            raise SystemExit(
                f"cannot query view {args.view!r}: {exc} "
                "(re-run `python -m repro query load` to refresh the views)")
    finally:
        conn.close()
    print(format_rows(columns, rows, args.format))
    if args.format == "table":
        print(f"\n[{len(rows)} row(s) from {args.view}]")
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    try:
        conn = connect_readonly(args.db)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    try:
        try:
            cursor = conn.execute(args.statement)
            rows = cursor.fetchall()
            columns = [d[0] for d in cursor.description] \
                if cursor.description else []
        except sqlite3.Error as exc:
            raise SystemExit(f"SQL error: {exc}")
    finally:
        conn.close()
    print(format_rows(columns, rows, args.format))
    if args.format == "table":
        print(f"\n[{len(rows)} row(s)]")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Dispatch the ``query`` subcommand (the ``python -m repro query`` body)."""
    if args.query_command == "load":
        return _cmd_load(args)
    if args.query_command == "kpi":
        return _cmd_kpi(args)
    return _cmd_sql(args)
