"""Canned KPI views: the paper's questions as SQL over the warehouse.

Each view answers one recurring analysis directly from the ``cells`` /
``axes`` / ``metrics`` tables, so nobody hand-parses JSON envelopes to ask
it again:

``scheme_frontier``
    The recovery-scheme trade-off frontier: makespan / slowdown /
    checkpoint-overhead per ``scheme`` × workload point (``n``, ``lam``,
    ``checkpoint_cost``, ``work``) — "which scheme dominates at which
    checkpoint cost?".
``slowdown_surface``
    Slowdown as a surface over ``checkpoint_cost`` × ``scheme`` (with the
    ``n``/``lam`` workload coordinates carried along) — the scaling
    question "how does slowdown move as checkpointing gets dearer?".
``conformance_drift``
    Per (scenario, engine, metric) value summaries grouped by producing
    code version — the same cell family recomputed under a new release
    shows up as a second version row, so drift is one ``SELECT`` away.
``cache_economics``
    What the content-addressed store is worth: cells, total and mean
    compute seconds per (scenario, engine) — the seconds a warm cache
    saves on every re-run.

Views are (re)created by :func:`create_views` whenever a warehouse is opened
read-write, so their definitions always match the running code; read-only
query connections see whatever the last load created.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["KPI_VIEWS", "KPIView", "create_views", "kpi_rows"]


@dataclass(frozen=True)
class KPIView:
    """One canned view: its CLI name, SQL view name, description and DDL."""

    name: str
    view: str
    description: str
    sql: str


_SCHEME_FRONTIER = """
CREATE VIEW kpi_scheme_frontier AS
SELECT
    scheme.text_value  AS scheme,
    n.num_value        AS n,
    lam.num_value      AS lam,
    cost.num_value     AS checkpoint_cost,
    work.num_value     AS work,
    mk.value           AS makespan,
    mk.stderr          AS makespan_stderr,
    sd.value           AS slowdown,
    sd.stderr          AS slowdown_stderr,
    ov.value           AS checkpoint_overhead,
    c.seed             AS seed,
    c.reps             AS reps,
    c.version          AS version,
    c.key              AS key
FROM cells c
JOIN axes scheme  ON scheme.key = c.key AND scheme.axis = 'scheme'
JOIN axes n       ON n.key = c.key      AND n.axis = 'n'
LEFT JOIN axes lam  ON lam.key = c.key  AND lam.axis = 'lam'
LEFT JOIN axes cost ON cost.key = c.key AND cost.axis = 'checkpoint_cost'
LEFT JOIN axes work ON work.key = c.key AND work.axis = 'work'
LEFT JOIN metrics mk ON mk.key = c.key
    AND mk.label = 'makespan' AND mk.col = 'value'
LEFT JOIN metrics sd ON sd.key = c.key
    AND sd.label = 'slowdown' AND sd.col = 'value'
LEFT JOIN metrics ov ON ov.key = c.key
    AND ov.label = 'checkpoint_overhead' AND ov.col = 'value'
ORDER BY n.num_value, lam.num_value, cost.num_value, scheme.text_value
"""

_SLOWDOWN_SURFACE = """
CREATE VIEW kpi_slowdown_surface AS
SELECT
    scheme.text_value  AS scheme,
    cost.num_value     AS checkpoint_cost,
    n.num_value        AS n,
    lam.num_value      AS lam,
    sd.value           AS slowdown,
    sd.stderr          AS slowdown_stderr,
    c.version          AS version,
    c.key              AS key
FROM cells c
JOIN axes scheme ON scheme.key = c.key AND scheme.axis = 'scheme'
JOIN metrics sd  ON sd.key = c.key
    AND sd.label = 'slowdown' AND sd.col = 'value'
LEFT JOIN axes cost ON cost.key = c.key AND cost.axis = 'checkpoint_cost'
LEFT JOIN axes n    ON n.key = c.key    AND n.axis = 'n'
LEFT JOIN axes lam  ON lam.key = c.key  AND lam.axis = 'lam'
ORDER BY scheme.text_value, cost.num_value, n.num_value, lam.num_value
"""

_CONFORMANCE_DRIFT = """
CREATE VIEW kpi_conformance_drift AS
SELECT
    c.scenario         AS scenario,
    c.engine           AS engine,
    m.label            AS label,
    m.col              AS col,
    c.version          AS version,
    COUNT(*)           AS cells,
    AVG(m.value)       AS mean_value,
    MIN(m.value)       AS min_value,
    MAX(m.value)       AS max_value
FROM cells c
JOIN metrics m ON m.key = c.key
WHERE m.label NOT LIKE 'stderr_%'
GROUP BY c.scenario, c.engine, m.label, m.col, c.version
ORDER BY c.scenario, m.label, m.col, c.version, c.engine
"""

_CACHE_ECONOMICS = """
CREATE VIEW kpi_cache_economics AS
SELECT
    c.scenario              AS scenario,
    c.engine                AS engine,
    COUNT(*)                AS cells,
    SUM(c.elapsed_seconds)  AS total_compute_seconds,
    AVG(c.elapsed_seconds)  AS mean_cell_seconds,
    MAX(c.elapsed_seconds)  AS max_cell_seconds
FROM cells c
GROUP BY c.scenario, c.engine
ORDER BY total_compute_seconds DESC
"""

#: The KPI catalog, keyed by the name ``repro query kpi <name>`` takes.
KPI_VIEWS: Dict[str, KPIView] = {
    view.name: view for view in (
        KPIView("scheme_frontier", "kpi_scheme_frontier",
                "recovery-scheme trade-off frontier: makespan/slowdown/"
                "overhead per scheme x workload", _SCHEME_FRONTIER),
        KPIView("slowdown_surface", "kpi_slowdown_surface",
                "slowdown vs checkpoint_cost x scheme (n/lam carried along)",
                _SLOWDOWN_SURFACE),
        KPIView("conformance_drift", "kpi_conformance_drift",
                "per-metric value summaries grouped by producing code "
                "version and engine", _CONFORMANCE_DRIFT),
        KPIView("cache_economics", "kpi_cache_economics",
                "cells and compute seconds banked per scenario/engine — "
                "what a warm cache saves", _CACHE_ECONOMICS),
    )
}


def create_views(conn: sqlite3.Connection) -> None:
    """(Re)create every KPI view so definitions track the running code."""
    for view in KPI_VIEWS.values():
        conn.execute(f"DROP VIEW IF EXISTS {view.view}")
        conn.execute(view.sql)
    conn.commit()


def kpi_rows(conn: sqlite3.Connection, name: str,
             limit: int = 0) -> Tuple[List[str], List[Sequence[object]]]:
    """Rows of one KPI view: ``(column names, rows)``.

    Raises ``KeyError`` with the catalog listed when *name* is unknown.
    """
    view = KPI_VIEWS.get(name)
    if view is None:
        known = ", ".join(sorted(KPI_VIEWS))
        raise KeyError(f"unknown KPI view {name!r}; known views: {known}")
    sql = f"SELECT * FROM {view.view}"
    if limit > 0:
        sql += f" LIMIT {int(limit)}"
    cursor = conn.execute(sql)
    columns = [desc[0] for desc in cursor.description]
    return columns, cursor.fetchall()
