"""Extract-transform-load: ResultStore objects → warehouse tables.

The loader reads the store's **object files** (through
:meth:`ResultStore.envelopes` / :meth:`ShardedResultStore.envelopes`), never
the advisory ``index.jsonl`` — so a crash-truncated index line hides nothing,
exactly matching the ``records()``/``compact()`` authority semantics.  Flat
and sharded layouts load identically: cells are keyed by their content
address, which is layout-independent.

Loads are **incremental and idempotent**: ``cells.key`` is the primary key,
a cell already present is skipped wholesale (no axes/metrics rewrites), so
re-running ``load`` against an unchanged store touches zero rows.  Each
invocation appends one ``loads`` provenance row (store root, repro version,
load time, seen/inserted counts) whether or not anything was new.

Transform rules:

* the ``evaluate`` scenario's nested identity (``{"method": ..., "spec":
  {...}}``) is flattened so its *system args* — the sweep axes — become
  first-class ``axes`` rows (``scheme``, ``n``, ``lam``, ``checkpoint_cost``,
  ``failure_law``, ...), alongside ``method``, ``kind``, ``counting``,
  ``metrics`` and per-option ``option.<name>`` rows;
* any other scenario's params map one-to-one onto ``axes`` rows;
* every float of the stored result lands in ``metrics`` with its
  ``float.hex`` sidecar; ``stderr_<metric>`` companions are folded into the
  ``stderr`` column of the base metric's row (and kept as rows of their own,
  so the table remains a lossless image of the stored record).
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro._version import __version__
from repro.warehouse.schema import connect, float_hex, _sql_value

__all__ = ["LoadSummary", "load_store", "open_store"]


@dataclass(frozen=True)
class LoadSummary:
    """What one ``load`` invocation did."""

    store_root: str
    load_id: int
    cells_seen: int
    cells_inserted: int

    @property
    def cells_skipped(self) -> int:
        return self.cells_seen - self.cells_inserted


def open_store(root: str):
    """The store at *root*, as the layout on disk dictates.

    A ``sharding.json`` (or a ``shards/`` directory) means sharded — which
    also reads any legacy flat layout through — otherwise flat.  Either way
    the returned object iterates full envelopes via ``envelopes()``.
    """
    from repro.report.sharded import SHARDING_CONFIG, ShardedResultStore
    from repro.report.store import ResultStore
    root = os.fspath(root)
    if os.path.isfile(os.path.join(root, SHARDING_CONFIG)) \
            or os.path.isdir(os.path.join(root, "shards")):
        return ShardedResultStore(root)
    return ResultStore(root)


# --------------------------------------------------------------------- axes
def _axis_row(axis: str, value) -> Tuple[str, str, Optional[str],
                                         Optional[float]]:
    """Classify one parameter into an ``axes`` row: (axis, kind, text, num).

    Booleans are checked before numbers (``bool`` is an ``int`` subclass);
    structured values keep their canonical JSON so nothing is lossy.
    """
    if isinstance(value, bool):
        return axis, "bool", "true" if value else "false", float(value)
    if isinstance(value, (int, float)):
        return axis, "num", json.dumps(value), float(value)
    if isinstance(value, str):
        return axis, "str", value, None
    if value is None:
        return axis, "null", None, None
    return axis, "json", json.dumps(value, sort_keys=True), None


def _flatten_axes(scenario: str, params: Dict[str, object]
                  ) -> List[Tuple[str, str, Optional[str], Optional[float]]]:
    """The ``axes`` rows of one cell (see the module docstring for rules)."""
    rows: List[Tuple[str, str, Optional[str], Optional[float]]] = []
    if scenario == "evaluate" and isinstance(params.get("spec"), dict):
        spec = dict(params["spec"])
        rows.append(_axis_row("method", params.get("method")))
        system = dict(spec.pop("system", {}))
        rows.append(_axis_row("kind", system.pop("kind", None)))
        for name in sorted(system):
            rows.append(_axis_row(name, system[name]))
        options = dict(spec.pop("options", {}) or {})
        for name in sorted(options):
            rows.append(_axis_row(f"option.{name}", options[name]))
        for name in sorted(spec):                  # metrics, counting, times
            rows.append(_axis_row(name, spec[name]))
    else:
        for name in sorted(params):
            rows.append(_axis_row(name, params[name]))
    return rows


# ------------------------------------------------------------------ metrics
def _metric_rows(result: Dict[str, object]
                 ) -> List[Tuple[str, str, Optional[float], str,
                                 Optional[float], Optional[str]]]:
    """The ``metrics`` rows of one stored result.

    Values arrive through ``strict_jsonable`` persistence, so non-finite
    floats may be ``"inf"``-style strings — ``float()`` parses both forms,
    the same way :meth:`ExperimentResult.from_dict` does.
    """
    by_label: Dict[str, Dict[str, float]] = {}
    order: List[str] = []
    for row in result.get("rows", []):
        label = str(row["label"])
        if label not in by_label:
            order.append(label)
        values = {str(col): float(v)
                  for col, v in dict(row["values"]).items()}
        by_label.setdefault(label, {}).update(values)
    rows = []
    for label in order:
        for col, value in by_label[label].items():
            stderr = by_label.get(f"stderr_{label}", {}).get(col)
            rows.append((label, col, _sql_value(value), float_hex(value),
                         None if stderr is None else _sql_value(stderr),
                         None if stderr is None else float_hex(stderr)))
    return rows


# -------------------------------------------------------------------- cells
def _result_envelope(result: Dict[str, object]) -> Dict[str, object]:
    """The engine metadata an api-facade result carries in its notes."""
    if result.get("name") != "api_evaluation":
        return {}
    try:
        notes = json.loads(str(result.get("notes", "")))
    except json.JSONDecodeError:
        return {}
    return notes if isinstance(notes, dict) else {}


def _as_int(value) -> Optional[int]:
    return None if value is None else int(value)


def load_store(store_root: str,
               db: Union[str, sqlite3.Connection]) -> LoadSummary:
    """Load every cell of the store at *store_root* into the warehouse *db*.

    *db* is a database path (opened/created read-write) or an open
    connection.  Returns a :class:`LoadSummary`; a second run over an
    unchanged store reports ``cells_inserted == 0`` and leaves every
    ``cells``/``axes``/``metrics`` row byte-identical.
    """
    own = isinstance(db, (str, os.PathLike))
    conn = connect(os.fspath(db)) if own else db
    try:
        store = open_store(store_root)
        seen = inserted = 0
        cursor = conn.cursor()
        cursor.execute(
            "INSERT INTO loads (store_root, repro_version, loaded_at, "
            "cells_seen, cells_inserted) VALUES (?, ?, ?, 0, 0)",
            (os.path.abspath(store_root), __version__,
             datetime.now(timezone.utc).isoformat(timespec="seconds")))
        load_id = cursor.lastrowid
        for envelope in store.envelopes():
            seen += 1
            key = str(envelope["key"])
            if cursor.execute("SELECT 1 FROM cells WHERE key = ?",
                              (key,)).fetchone() is not None:
                continue
            inserted += 1
            scenario = str(envelope["scenario"])
            params = dict(envelope.get("params", {}))
            result = dict(envelope.get("result", {}))
            notes = _result_envelope(result)
            engine = params.get("method") if scenario == "evaluate" \
                else notes.get("method")
            elapsed = float(envelope.get("elapsed_seconds", 0.0))
            cursor.execute(
                "INSERT INTO cells (key, scenario, engine, backend, "
                "engine_backend, seed, reps, version, created_at, "
                "elapsed_seconds, elapsed_hex, n_processes, n_samples, "
                "load_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (key, scenario,
                 None if engine is None else str(engine),
                 envelope.get("backend"),
                 notes.get("backend"),
                 _as_int(envelope.get("seed")),
                 _as_int(envelope.get("reps")),
                 str(envelope.get("version", "")),
                 str(envelope.get("created_at", "")),
                 elapsed, float_hex(elapsed),
                 _as_int(notes.get("n_processes")),
                 _as_int(notes.get("n_samples")),
                 load_id))
            cursor.executemany(
                "INSERT INTO axes (key, axis, kind, text_value, num_value) "
                "VALUES (?, ?, ?, ?, ?)",
                [(key, *row) for row in _flatten_axes(scenario, params)])
            cursor.executemany(
                "INSERT INTO metrics (key, label, col, value, value_hex, "
                "stderr, stderr_hex) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [(key, *row) for row in _metric_rows(result)])
        cursor.execute(
            "UPDATE loads SET cells_seen = ?, cells_inserted = ? "
            "WHERE id = ?", (seen, inserted, load_id))
        conn.commit()
        return LoadSummary(store_root=os.fspath(store_root),
                           load_id=int(load_id), cells_seen=seen,
                           cells_inserted=inserted)
    finally:
        if own:
            conn.close()
