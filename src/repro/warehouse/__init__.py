"""Analytics warehouse over the result store (``repro.warehouse``).

The :class:`~repro.report.store.ResultStore` turned every experiment run
into a durable, content-addressed cell; this package turns the accumulated
cells into a **queryable experiment history**.  An incremental ETL
(:mod:`~repro.warehouse.etl`) loads flat *and* sharded store layouts into
one SQLite database with typed tables (:mod:`~repro.warehouse.schema`):
``cells`` (identity + provenance), ``axes`` (one row per spec parameter —
the sweep axes, pivotable in SQL) and ``metrics`` (every stored float with
a bit-exact ``float.hex`` sidecar).  Canned KPI views
(:mod:`~repro.warehouse.views`) answer the paper's recurring questions —
scheme trade-off frontier, slowdown-vs-checkpoint-cost surfaces,
conformance drift across code versions, cache economics — and the
``python -m repro query`` CLI (:mod:`~repro.warehouse.cli`) exposes
``load`` / ``kpi`` / read-only ``sql`` on top.

Quickstart
----------
>>> from repro.warehouse import load_store, kpi_rows, connect_readonly
>>> load_store("reports/store", "warehouse.sqlite")       # doctest: +SKIP
>>> conn = connect_readonly("warehouse.sqlite")           # doctest: +SKIP
>>> cols, rows = kpi_rows(conn, "scheme_frontier")        # doctest: +SKIP

See ``docs/WAREHOUSE.md`` for the schema and the KPI catalog.
"""

from repro.warehouse.etl import LoadSummary, load_store, open_store
from repro.warehouse.schema import (SCHEMA_VERSION, connect,
                                    connect_readonly, float_hex, hex_float)
from repro.warehouse.views import KPI_VIEWS, KPIView, create_views, kpi_rows

__all__ = [
    "KPI_VIEWS",
    "KPIView",
    "LoadSummary",
    "SCHEMA_VERSION",
    "connect",
    "connect_readonly",
    "create_views",
    "float_hex",
    "hex_float",
    "kpi_rows",
    "load_store",
    "open_store",
]
