"""The warehouse schema: typed SQLite tables over the result store.

One database holds the queryable history of every loaded
:class:`~repro.report.store.ResultStore` cell, split into three typed
tables plus provenance:

``cells``
    One row per stored cell: the content-address ``key`` (primary key —
    this is what makes loads idempotent), scenario, engine/backends, seed,
    replication budget, producing code version, creation time and elapsed
    compute seconds.
``axes``
    One row per spec parameter of the cell — the sweep axes (``scheme``,
    ``n``, ``lam``, ``checkpoint_cost``, ``failure_law``, ...) flattened
    out of the stored params so SQL can pivot on them.  Scalars carry a
    ``num_value`` sidecar for numeric comparison; structured values
    (vectors, matrices, fault-model blocks) are stored as canonical JSON
    text.
``metrics``
    One row per ``(row label, column)`` float of the stored
    :class:`~repro.experiments.common.ExperimentResult`.  Every float is
    stored twice: as a SQLite ``REAL`` for arithmetic and as its
    ``float.hex()`` string, so the warehouse round-trips the stored record
    **bit-exactly** (asserted by tests — SQLite REALs are IEEE doubles, but
    the hex sidecar makes the contract explicit and diffable).  Stochastic
    ``stderr_<metric>`` companions are additionally folded into the
    ``stderr`` column of their base metric's row.
``loads``
    One row per ETL invocation: store root, repro version, load timestamp,
    cells seen/inserted.  ``cells.load_id`` points at the load that first
    inserted the cell.

The schema version lives in ``warehouse_meta``; opening a database written
by an incompatible version fails loudly instead of mis-reading it.
"""

from __future__ import annotations

import math
import sqlite3
from typing import Optional

__all__ = ["SCHEMA_VERSION", "connect", "connect_readonly", "float_hex",
           "hex_float", "initialize"]

#: Bumped when the table layout changes incompatibly.
SCHEMA_VERSION = 1

_DDL = """
CREATE TABLE IF NOT EXISTS warehouse_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS loads (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    store_root     TEXT NOT NULL,
    repro_version  TEXT NOT NULL,
    loaded_at      TEXT NOT NULL,
    cells_seen     INTEGER NOT NULL,
    cells_inserted INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    key             TEXT PRIMARY KEY,
    scenario        TEXT NOT NULL,
    engine          TEXT,
    backend         TEXT,
    engine_backend  TEXT,
    seed            INTEGER,
    reps            INTEGER,
    version         TEXT NOT NULL,
    created_at      TEXT NOT NULL,
    elapsed_seconds REAL NOT NULL,
    elapsed_hex     TEXT NOT NULL,
    n_processes     INTEGER,
    n_samples       INTEGER,
    load_id         INTEGER NOT NULL REFERENCES loads(id)
);
CREATE TABLE IF NOT EXISTS axes (
    key        TEXT NOT NULL REFERENCES cells(key),
    axis       TEXT NOT NULL,
    kind       TEXT NOT NULL,
    text_value TEXT,
    num_value  REAL,
    PRIMARY KEY (key, axis)
);
CREATE TABLE IF NOT EXISTS metrics (
    key        TEXT NOT NULL REFERENCES cells(key),
    label      TEXT NOT NULL,
    col        TEXT NOT NULL,
    value      REAL,
    value_hex  TEXT NOT NULL,
    stderr     REAL,
    stderr_hex TEXT,
    PRIMARY KEY (key, label, col)
);
CREATE INDEX IF NOT EXISTS idx_axes_axis ON axes(axis, text_value);
CREATE INDEX IF NOT EXISTS idx_metrics_label ON metrics(label);
CREATE INDEX IF NOT EXISTS idx_cells_scenario ON cells(scenario);
"""


def float_hex(value: float) -> str:
    """The bit-exact sidecar encoding of one stored float.

    ``float.hex`` covers finite doubles; the non-finite values a *result*
    may legitimately contain (an infinite slowdown, a NaN from a dropped
    metric) get their ``repr`` — both parse back via :func:`hex_float`.
    """
    value = float(value)
    if math.isfinite(value):
        return value.hex()
    return repr(value)                       # 'inf' / '-inf' / 'nan'


def hex_float(text: str) -> float:
    """Inverse of :func:`float_hex`."""
    try:
        return float.fromhex(text)
    except ValueError:
        return float(text)                   # 'inf' / '-inf' / 'nan'


def _sql_value(value: float) -> Optional[float]:
    """The REAL column form: NULL for NaN (SQLite has no NaN REAL)."""
    value = float(value)
    return None if math.isnan(value) else value


def initialize(conn: sqlite3.Connection) -> None:
    """Create the schema (idempotent) and stamp/verify its version."""
    conn.executescript(_DDL)
    row = conn.execute(
        "SELECT value FROM warehouse_meta WHERE key = 'schema_version'"
    ).fetchone()
    if row is None:
        conn.execute(
            "INSERT INTO warehouse_meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)))
        conn.commit()
    elif int(row[0]) != SCHEMA_VERSION:
        raise ValueError(
            f"warehouse schema version {row[0]} is incompatible with this "
            f"code (expects {SCHEMA_VERSION}); load into a fresh database")


def connect(path: str) -> sqlite3.Connection:
    """Open (creating if needed) a warehouse database read-write.

    Also (re)creates the canned KPI views, so a database written by an
    older release serves the current view definitions after any load.
    """
    from repro.warehouse.views import create_views
    conn = sqlite3.connect(path)
    initialize(conn)
    create_views(conn)
    return conn


def connect_readonly(path: str) -> sqlite3.Connection:
    """Open an existing warehouse strictly read-only.

    The connection is opened with SQLite's ``mode=ro`` URI flag *and*
    ``PRAGMA query_only`` — the sandbox behind ``repro query sql``, which
    accepts arbitrary statements: even an ``INSERT``/``DROP`` smuggled past
    the CLI cannot modify the database.
    """
    import os
    if not os.path.isfile(path):
        raise FileNotFoundError(
            f"warehouse database not found: {path} "
            "(run `python -m repro query load` first)")
    uri = f"file:{path}?mode=ro"
    conn = sqlite3.connect(uri, uri=True)
    conn.execute("PRAGMA query_only = ON")
    return conn
