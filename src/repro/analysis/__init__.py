"""Closed-form analyses: Sections 3 and 4 of the paper, plus strategy selection.

* :mod:`~repro.analysis.order_statistics` — moments of the maximum of independent
  exponentials (the random variable ``Z = max{y_1,…,y_n}`` both sections rely on);
* :mod:`~repro.analysis.synchronized_loss` — the mean computation-power loss
  ``CL = n∫(1−G(t))dt − Σ1/μ_i`` of synchronized recovery blocks;
* :mod:`~repro.analysis.prp_overhead` — storage, time overhead and rollback-distance
  bound of the pseudo-recovery-point scheme;
* :mod:`~repro.analysis.rollback_distance` — rollback-distance estimates for the
  asynchronous scheme (the interval ``X`` as an inner bound, per Section 5);
* :mod:`~repro.analysis.comparison` — side-by-side comparison and the selection
  guidance the paper sketches in its conclusion.
"""

from repro.analysis.order_statistics import (
    expected_maximum_exponential,
    maximum_exponential_cdf,
    maximum_exponential_pdf,
    expected_range_exponential,
)
from repro.analysis.synchronized_loss import (
    SynchronizedLossModel,
    computation_loss,
    computation_loss_homogeneous,
)
from repro.analysis.prp_overhead import PRPOverheadModel
from repro.analysis.rollback_distance import AsynchronousRollbackModel
from repro.analysis.comparison import StrategyComparison, SchemeCosts, recommend_scheme

__all__ = [
    "expected_maximum_exponential",
    "maximum_exponential_cdf",
    "maximum_exponential_pdf",
    "expected_range_exponential",
    "SynchronizedLossModel",
    "computation_loss",
    "computation_loss_homogeneous",
    "PRPOverheadModel",
    "AsynchronousRollbackModel",
    "StrategyComparison",
    "SchemeCosts",
    "recommend_scheme",
]
