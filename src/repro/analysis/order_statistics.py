"""Order statistics of independent exponential random variables.

Both Section 3 (the synchronisation wait ``Z = max{y_1,…,y_n}``) and Section 4
(the PRP rollback-distance bound ``sup{y_1,…,y_n}``) reduce to the maximum of
independent exponentials with rates ``μ_1,…,μ_n``.  Its distribution function is
``G(t) = Π_i (1 − e^{−μ_i t})`` and the mean follows from inclusion–exclusion:

    E[max] = Σ_{∅≠S⊆{1..n}} (−1)^{|S|+1} / (Σ_{i∈S} μ_i)

For equal rates this reduces to the harmonic-number formula ``H_n / μ``.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.util.validation import as_float_array

__all__ = [
    "maximum_exponential_cdf",
    "maximum_exponential_pdf",
    "expected_maximum_exponential",
    "expected_maximum_exponential_homogeneous",
    "expected_range_exponential",
    "harmonic_number",
]


def _check_rates(rates: Sequence[float]) -> np.ndarray:
    arr = as_float_array(rates, name="rates")
    if np.any(arr <= 0.0):
        raise ValueError("all rates must be strictly positive")
    return arr


def maximum_exponential_cdf(rates: Sequence[float], t: float | np.ndarray
                            ) -> float | np.ndarray:
    """``G(t) = P(max y_i ≤ t) = Π_i (1 − e^{−μ_i t})``."""
    rates = _check_rates(rates)
    t_arr = np.atleast_1d(np.asarray(t, dtype=float))
    values = np.prod(1.0 - np.exp(-np.outer(t_arr, rates)), axis=-1)
    values = np.where(t_arr < 0.0, 0.0, values)
    return float(values[0]) if np.isscalar(t) else values.reshape(np.shape(t))

def maximum_exponential_pdf(rates: Sequence[float], t: float | np.ndarray
                            ) -> float | np.ndarray:
    """Density of ``max y_i``: ``G'(t) = Σ_i μ_i e^{−μ_i t} Π_{j≠i}(1 − e^{−μ_j t})``."""
    rates = _check_rates(rates)
    t_arr = np.atleast_1d(np.asarray(t, dtype=float))
    out = np.zeros_like(t_arr)
    for i, mu_i in enumerate(rates):
        others = np.delete(rates, i)
        term = mu_i * np.exp(-mu_i * t_arr)
        if others.size:
            term = term * np.prod(1.0 - np.exp(-np.outer(t_arr, others)), axis=-1)
        out += term
    out = np.where(t_arr < 0.0, 0.0, out)
    return float(out[0]) if np.isscalar(t) else out


def expected_maximum_exponential(rates: Sequence[float]) -> float:
    """``E[max y_i]`` by inclusion–exclusion (exact)."""
    rates = _check_rates(rates)
    n = rates.shape[0]
    total = 0.0
    for size in range(1, n + 1):
        sign = 1.0 if size % 2 else -1.0
        for subset in itertools.combinations(range(n), size):
            total += sign / float(rates[list(subset)].sum())
    return total


def harmonic_number(n: int) -> float:
    """``H_n = Σ_{k=1}^{n} 1/k``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return float(sum(1.0 / k for k in range(1, n + 1)))


def expected_maximum_exponential_homogeneous(n: int, mu: float) -> float:
    """``E[max of n iid Exp(μ)] = H_n / μ``."""
    if n < 1:
        raise ValueError("need at least one variable")
    if mu <= 0.0:
        raise ValueError("mu must be positive")
    return harmonic_number(n) / mu


def expected_range_exponential(rates: Sequence[float]) -> float:
    """``E[max y_i − min y_i]`` — the spread of readiness times.

    The minimum of independent exponentials is exponential with the summed rate, so
    ``E[min] = 1 / Σμ_i``.
    """
    rates = _check_rates(rates)
    return expected_maximum_exponential(rates) - 1.0 / float(rates.sum())
