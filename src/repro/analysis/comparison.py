"""Side-by-side comparison of the three recovery-block strategies.

The paper's conclusion sketches a selection procedure: "we have to first examine
the properties of concurrent processes such as the amount of interprocess
communications and the distribution of recovery points.  Then, we weigh the
trade-off between the loss of computation power during normal operation and the
increase in response time due to rollback recovery."  This module makes that
procedure executable: :class:`StrategyComparison` computes, from the analytic
models, the normal-operation overhead and the expected rollback exposure of each
scheme, and :func:`recommend_scheme` applies the paper's qualitative rules
(deadline-critical tasks avoid the asynchronous scheme; PRPs are wasteful when
checkpointing is frequent but communication rare; synchronisation is wasteful when
its period is short relative to the checkpoint intervals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.prp_overhead import PRPOverheadModel
from repro.analysis.rollback_distance import AsynchronousRollbackModel
from repro.analysis.synchronized_loss import SynchronizedLossModel
from repro.core.parameters import SystemParameters
from repro.util.validation import check_non_negative, check_positive

__all__ = ["SchemeCosts", "StrategyComparison", "recommend_scheme"]


@dataclass(frozen=True)
class SchemeCosts:
    """Costs of one scheme, split into normal-operation and recovery components.

    ``normal_overhead_rate`` is time lost per unit time while nothing fails
    (state saving, implantation, synchronisation waiting); ``expected_rollback_distance``
    is the expected computation discarded by the failing process when an error *is*
    detected (the response-time hit the paper worries about for real-time tasks).
    """

    scheme: str
    normal_overhead_rate: float
    expected_rollback_distance: float
    storage_states: float

    def total_cost(self, failure_rate: float) -> float:
        """Overall cost rate for a given failure (detection) rate."""
        check_non_negative(failure_rate, "failure_rate")
        return self.normal_overhead_rate + failure_rate * self.expected_rollback_distance


class StrategyComparison:
    """Analytic comparison of the three schemes for one system.

    Parameters
    ----------
    params:
        System rates.
    record_cost:
        ``t_r`` — time to save one state.
    sync_period:
        Mean period between synchronisation requests for the synchronized scheme.
    """

    def __init__(self, params: SystemParameters, *, record_cost: float = 0.02,
                 sync_period: float = 2.0) -> None:
        self.params = params
        self.record_cost = check_non_negative(record_cost, "record_cost")
        self.sync_period = check_positive(sync_period, "sync_period")
        self.async_model = AsynchronousRollbackModel(params)
        self.sync_model = SynchronizedLossModel(params.mu)
        self.prp_model = PRPOverheadModel(params, record_cost=record_cost)

    # ------------------------------------------------------------------ per scheme
    def asynchronous_costs(self) -> SchemeCosts:
        """Asynchronous RBs: cheap in normal operation, unbounded rollback."""
        # Normal operation: each process saves a state at rate μ_i.
        overhead = self.params.total_rp_rate * self.record_cost
        distance = self.async_model.expected_distance_inspection_paradox()
        # Storage: states accumulated over one inter-line interval per process
        # (nothing older than a committed recovery line needs to be kept).
        storage = self.async_model.interval_model.expected_total_rp_count("all") \
            + self.params.n
        return SchemeCosts(scheme="asynchronous", normal_overhead_rate=overhead,
                           expected_rollback_distance=distance,
                           storage_states=storage)

    def synchronized_costs(self) -> SchemeCosts:
        """Synchronized RBs: waiting loss in normal operation, bounded rollback."""
        per_period = self.sync_model.expected_loss()
        state_saving = self.params.n * self.record_cost / self.sync_period
        overhead = per_period / self.sync_period + state_saving
        # Rollback goes back to the last committed line: on average half the
        # synchronisation period plus the commit wait.
        distance = 0.5 * self.sync_period + self.sync_model.expected_wait()
        return SchemeCosts(scheme="synchronized", normal_overhead_rate=overhead,
                           expected_rollback_distance=distance,
                           storage_states=float(2 * self.params.n))

    def prp_costs(self) -> SchemeCosts:
        """Pseudo recovery points: implantation overhead, bounded rollback."""
        overhead = (self.params.total_rp_rate * self.record_cost
                    + self.prp_model.overhead_time_rate())
        distance = self.prp_model.rollback_distance_bound()
        return SchemeCosts(scheme="pseudo-recovery-points",
                           normal_overhead_rate=overhead,
                           expected_rollback_distance=distance,
                           storage_states=float(self.prp_model.steady_state_storage()))

    # ------------------------------------------------------------------ aggregate
    def all_costs(self) -> Dict[str, SchemeCosts]:
        return {
            "asynchronous": self.asynchronous_costs(),
            "synchronized": self.synchronized_costs(),
            "pseudo-recovery-points": self.prp_costs(),
        }

    def table(self, failure_rate: float = 0.01) -> Dict[str, Dict[str, float]]:
        """Nested dict: scheme → metric → value (for the experiment harness)."""
        out: Dict[str, Dict[str, float]] = {}
        for name, costs in self.all_costs().items():
            out[name] = {
                "normal_overhead_rate": costs.normal_overhead_rate,
                "expected_rollback_distance": costs.expected_rollback_distance,
                "storage_states": costs.storage_states,
                "total_cost": costs.total_cost(failure_rate),
            }
        return out


def recommend_scheme(params: SystemParameters, *, failure_rate: float = 0.01,
                     record_cost: float = 0.02, sync_period: float = 2.0,
                     deadline: Optional[float] = None) -> str:
    """Apply the paper's selection guidance and return the recommended scheme.

    A hard *deadline* on recovery latency disqualifies any scheme whose expected
    rollback distance exceeds it (the asynchronous scheme is the usual casualty);
    among the remaining candidates the one with the lowest total cost rate at the
    given failure rate wins.
    """
    comparison = StrategyComparison(params, record_cost=record_cost,
                                    sync_period=sync_period)
    candidates = comparison.all_costs()
    if deadline is not None:
        check_positive(deadline, "deadline")
        admissible = {name: costs for name, costs in candidates.items()
                      if costs.expected_rollback_distance <= deadline}
        if admissible:
            candidates = admissible
    best = min(candidates.values(), key=lambda costs: costs.total_cost(failure_rate))
    return best.scheme
