"""Mean computation-power loss of synchronized recovery blocks (Section 3).

Upon a synchronization request every process ``P_i`` needs an exponentially
distributed time ``y_i`` (rate ``μ_i``) to reach its next acceptance test and must
then idle until the slowest process gets there.  With ``Z = max{y_1,…,y_n}`` the
total loss of computation power per synchronisation is ``CL = Σ_i (Z − y_i)`` and
its mean is the paper's equation

    CL = n · ∫₀^∞ (1 − G(t)) dt − Σ_i 1/μ_i ,   G(t) = Π_i (1 − e^{−μ_i t}).

Both the integral form (as written in the paper) and the exact inclusion–exclusion
evaluation are provided; they agree to quadrature accuracy, which is one of the
unit-test invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.order_statistics import (
    expected_maximum_exponential,
    expected_maximum_exponential_homogeneous,
    maximum_exponential_cdf,
)
from repro.util.integration import tail_integral
from repro.util.validation import as_float_array, check_positive

__all__ = ["computation_loss", "computation_loss_homogeneous", "SynchronizedLossModel"]


def computation_loss(mu: Sequence[float], *, method: str = "exact") -> float:
    """Mean total computation loss ``CL`` per synchronisation.

    Parameters
    ----------
    mu:
        Recovery-point rates of the cooperating processes.
    method:
        ``"exact"`` uses the inclusion–exclusion value of ``E[Z]``; ``"integral"``
        evaluates the paper's ``n∫(1−G(t))dt`` numerically.
    """
    rates = as_float_array(mu, name="mu")
    if np.any(rates <= 0.0):
        raise ValueError("all rates must be positive")
    n = rates.shape[0]
    if method == "exact":
        mean_z = expected_maximum_exponential(rates)
    elif method == "integral":
        mean_z = tail_integral(lambda t: 1.0 - maximum_exponential_cdf(rates, t))
    else:
        raise ValueError("method must be 'exact' or 'integral'")
    return n * mean_z - float(np.sum(1.0 / rates))


def computation_loss_homogeneous(n: int, mu: float) -> float:
    """``CL`` for ``n`` identical processes: ``n·H_n/μ − n/μ = n(H_n − 1)/μ``."""
    if n < 1:
        raise ValueError("need at least one process")
    check_positive(mu, "mu")
    return n * expected_maximum_exponential_homogeneous(n, mu) - n / mu


@dataclass(frozen=True)
class SynchronizedLossModel:
    """Convenience wrapper bundling the Section 3 quantities for one system."""

    mu: Sequence[float]

    def __post_init__(self) -> None:
        rates = as_float_array(self.mu, name="mu")
        if np.any(rates <= 0.0):
            raise ValueError("all rates must be positive")
        object.__setattr__(self, "mu", rates)

    @property
    def n(self) -> int:
        return int(len(self.mu))

    def expected_wait(self) -> float:
        """``E[Z]`` — mean time from request to the commitment of the slowest process."""
        return expected_maximum_exponential(self.mu)

    def expected_loss(self, method: str = "exact") -> float:
        """Mean total loss of computation power per synchronisation (``CL``)."""
        return computation_loss(self.mu, method=method)

    def expected_loss_per_process(self) -> np.ndarray:
        """``E[Z − y_i]`` for each process (the fast checkpointers wait the longest)."""
        mean_z = self.expected_wait()
        return mean_z - 1.0 / np.asarray(self.mu, dtype=float)

    def loss_rate(self, sync_period: float) -> float:
        """Loss per unit time when synchronisations are issued every *sync_period*."""
        check_positive(sync_period, "sync_period")
        return self.expected_loss() / sync_period

    def relative_loss(self, sync_period: float) -> float:
        """Fraction of total computation capacity lost to waiting."""
        return self.loss_rate(sync_period) / self.n

    def report(self, sync_period: float) -> Dict[str, float]:
        return {
            "n": float(self.n),
            "E[Z]": self.expected_wait(),
            "CL": self.expected_loss(),
            "CL_integral": self.expected_loss(method="integral"),
            "loss_rate": self.loss_rate(sync_period),
            "relative_loss": self.relative_loss(sync_period),
        }
