"""Overhead and rollback-distance analysis of pseudo recovery points (Section 4).

For ``n`` cooperating processes the PRP scheme costs, per recovery point
established anywhere in the system:

* **time** — ``(n−1)·t_r`` extra (each of the other processes records one PRP,
  ``t_r`` being the time to record a process state), on top of the ``t_r`` the RP
  itself costs;
* **storage** — ``n`` saved states per RP (one RP plus ``n−1`` PRPs); old states
  outside the current pseudo recovery lines can be purged, so the steady-state
  requirement is roughly ``n`` states per process, i.e. ``n²`` overall;
* **rollback distance** — bounded by ``sup{y_1,…,y_n}`` where ``y_i`` is the
  interval between two successive recovery points of ``P_i`` (exponential with
  rate ``μ_i``), i.e. ``E[bound] = E[max Exp(μ_i)]``.

The model also reports the overhead *rate* (state saves per unit time multiplied by
their cost), which is what makes the paper's closing remark quantitative: the
scheme "is inefficient for concurrent processes when they establish recovery points
frequently … and rarely communicate with each other".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.order_statistics import expected_maximum_exponential
from repro.core.parameters import SystemParameters
from repro.util.validation import check_non_negative

__all__ = ["PRPOverheadModel"]


@dataclass(frozen=True)
class PRPOverheadModel:
    """Closed-form costs of the PRP scheme for a given system.

    Parameters
    ----------
    params:
        System rates (``μ_i``, ``λ_ij``).
    record_cost:
        ``t_r`` — time to record one process state.
    """

    params: SystemParameters
    record_cost: float = 0.02

    def __post_init__(self) -> None:
        check_non_negative(self.record_cost, "record_cost")

    # ------------------------------------------------------------------ time
    @property
    def n(self) -> int:
        return self.params.n

    def rp_rate_total(self) -> float:
        """System-wide rate of recovery-point establishment, ``Σ μ_k``."""
        return self.params.total_rp_rate

    def extra_time_per_rp(self) -> float:
        """Additional time overhead per RP: ``(n−1)·t_r``."""
        return (self.n - 1) * self.record_cost

    def overhead_time_rate(self) -> float:
        """Extra state-saving time per unit time across the whole system.

        Every RP (rate ``Σμ_k``) triggers ``n−1`` PRPs of cost ``t_r`` each.
        """
        return self.rp_rate_total() * self.extra_time_per_rp()

    def overhead_per_process_rate(self) -> float:
        """Extra state-saving time per unit time per process."""
        return self.overhead_time_rate() / self.n

    # ------------------------------------------------------------------ storage
    def states_per_rp(self) -> int:
        """States saved per recovery point: one RP plus ``n−1`` PRPs."""
        return self.n

    def steady_state_storage(self) -> int:
        """Saved states retained after purging (Section 4 rule).

        Each process keeps its most recent RP and one PRP per other process's
        current RP: ``n`` states per process, ``n²`` system-wide (the initial
        states are subsumed once every process has taken at least one RP).
        """
        return self.n * self.n

    def save_rate(self) -> float:
        """State saves per unit time (RPs + PRPs) across the system."""
        return self.rp_rate_total() * self.states_per_rp()

    # ------------------------------------------------------------------ rollback
    def rollback_distance_bound(self) -> float:
        """``E[sup{y_1,…,y_n}]`` — mean bound on the rollback distance."""
        return expected_maximum_exponential(self.params.mu)

    def rollback_distance_bound_quantile(self, q: float) -> float:
        """Quantile of the rollback-distance bound (numerically inverted CDF)."""
        if not (0.0 < q < 1.0):
            raise ValueError("q must lie strictly between 0 and 1")
        from repro.analysis.order_statistics import maximum_exponential_cdf

        lo, hi = 0.0, 1.0
        while maximum_exponential_cdf(self.params.mu, hi) < q:
            hi *= 2.0
            if hi > 1e9:  # pragma: no cover - defensive
                raise RuntimeError("quantile search diverged")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if maximum_exponential_cdf(self.params.mu, mid) < q:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    # ------------------------------------------------------------------ trade-off
    def efficiency_ratio(self) -> float:
        """PRP overhead per unit of interaction: ``overhead rate / Σλ``.

        Large values flag the regime the paper calls inefficient: many recovery
        points implanted for processes that hardly ever communicate (so the PRPs
        are rarely needed).  Returns ``inf`` when the processes never interact.
        """
        interactions = self.params.total_interaction_rate
        if interactions <= 0.0:
            return float("inf")
        return self.overhead_time_rate() / interactions

    def report(self) -> Dict[str, float]:
        return {
            "n": float(self.n),
            "extra_time_per_rp": self.extra_time_per_rp(),
            "overhead_time_rate": self.overhead_time_rate(),
            "states_per_rp": float(self.states_per_rp()),
            "steady_state_storage": float(self.steady_state_storage()),
            "save_rate": self.save_rate(),
            "rollback_distance_bound": self.rollback_distance_bound(),
            "efficiency_ratio": self.efficiency_ratio(),
        }
