"""Rollback-distance estimates for asynchronous recovery blocks.

The paper is careful to note (Section 5) that the interval ``X`` between two
successive recovery lines is an *inner bound* for the real rollback distance: when
an error is detected, the system must retreat at least to the most recent recovery
line, and how much computation that discards depends on where within the current
inter-line interval the failure strikes.

:class:`AsynchronousRollbackModel` packages the bound and two refinements:

* ``expected_distance_lower_bound`` — ``E[X]`` itself (the paper's proxy);
* ``expected_distance_inspection_paradox`` — the mean age of the renewal interval
  in progress at a random failure instant, ``E[X²]/(2·E[X])``, which is the proper
  estimate when failures arrive independently of the checkpointing process (PASTA);
* Monte-Carlo estimation against the model simulator for validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.parameters import SystemParameters
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel

__all__ = ["AsynchronousRollbackModel"]


@dataclass
class AsynchronousRollbackModel:
    """Rollback-distance analysis of the asynchronous scheme."""

    params: SystemParameters
    _model: Optional[RecoveryLineIntervalModel] = None

    def __post_init__(self) -> None:
        if self._model is None:
            self._model = RecoveryLineIntervalModel(self.params)

    @property
    def interval_model(self) -> RecoveryLineIntervalModel:
        assert self._model is not None
        return self._model

    # ------------------------------------------------------------------ bounds
    def expected_interval(self) -> float:
        """``E[X]`` — mean interval between successive recovery lines."""
        return self.interval_model.mean_interval()

    def expected_distance_lower_bound(self) -> float:
        """The paper's proxy: the rollback distance is at least the distance to the
        previous recovery line, whose scale is ``E[X]``."""
        return self.expected_interval()

    def expected_distance_inspection_paradox(self) -> float:
        """Mean *age* of the inter-line interval at a random failure instant.

        For a stationary renewal process with inter-event distribution ``X``, the
        expected backward recurrence time seen by a Poisson failure is
        ``E[X²] / (2 E[X])`` — larger than ``E[X]/2`` because failures are more
        likely to land in long intervals.
        """
        m1 = self.interval_model.interval_moment(1)
        m2 = self.interval_model.interval_moment(2)
        return m2 / (2.0 * m1)

    # ------------------------------------------------------------------ simulation
    def simulate_distance(self, n_failures: int = 2000,
                          seed: Optional[int] = None) -> Dict[str, float]:
        """Monte-Carlo estimate of the distance back to the last recovery line.

        Failures are dropped uniformly at random *in time* over a long simulated
        model trajectory; for each failure the distance to the most recent
        recovery-line formation is recorded.
        """
        if n_failures < 1:
            raise ValueError("need at least one failure")
        rng = np.random.default_rng(seed)
        from repro.markov.montecarlo import ModelSimulator

        sim = ModelSimulator(self.params, seed=None if seed is None else seed + 1)
        intervals = sim.sample_intervals(max(n_failures, 200)).lengths
        # Build the renewal timeline and sample failure instants uniformly on it.
        boundaries = np.concatenate(([0.0], np.cumsum(intervals)))
        horizon = boundaries[-1]
        failure_times = rng.uniform(0.0, horizon, size=n_failures)
        last_line = boundaries[np.searchsorted(boundaries, failure_times, side="right") - 1]
        distances = failure_times - last_line
        return {
            "mean_distance": float(distances.mean()),
            "p95_distance": float(np.quantile(distances, 0.95)),
            "analytic_inspection_paradox": self.expected_distance_inspection_paradox(),
            "analytic_mean_interval": self.expected_interval(),
        }

    def report(self) -> Dict[str, float]:
        return {
            "E[X]": self.expected_interval(),
            "std[X]": self.interval_model.interval_std(),
            "E[distance] (age)": self.expected_distance_inspection_paradox(),
            "E[saved states per interval]":
                self.interval_model.expected_total_rp_count(counting="all"),
        }
