"""Executable comparison of the three recovery schemes on the same workload.

The paper compares the schemes analytically; this experiment runs all three
*runtimes* on identical workloads (same seeds, same fault timeline statistics) and
reports the measured makespan, rollback behaviour, overheads and storage — the
empirical counterpart of the conclusion's trade-off discussion, and the experiment
behind the ``strategy_comparison`` example.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.recovery.asynchronous import AsynchronousRuntime
from repro.recovery.pseudo import PseudoRecoveryPointRuntime
from repro.recovery.synchronized import SynchronizedRuntime, SyncStrategy
from repro.recovery.report import RunReport
from repro.workloads.spec import WorkloadSpec

__all__ = ["run_strategy_comparison", "run_scheme_replications"]


def _run_scheme(scheme: str, workload: WorkloadSpec, seed: int,
                sync_interval: float) -> RunReport:
    if scheme == "asynchronous":
        return AsynchronousRuntime(workload, seed=seed).run()
    if scheme == "pseudo":
        return PseudoRecoveryPointRuntime(workload, seed=seed).run()
    if scheme == "synchronized":
        return SynchronizedRuntime(workload, seed=seed,
                                   strategy=SyncStrategy.ELAPSED_TIME,
                                   sync_interval=sync_interval).run()
    raise ValueError(f"unknown scheme {scheme!r}")


def run_scheme_replications(scheme: str, workload: WorkloadSpec, *,
                            replications: int = 5, base_seed: int = 100,
                            sync_interval: float = 2.0) -> Dict[str, float]:
    """Run one scheme several times and average the headline metrics."""
    if replications < 1:
        raise ValueError("need at least one replication")
    reports = [_run_scheme(scheme, workload, base_seed + r, sync_interval)
               for r in range(replications)]
    def mean(getter) -> float:
        return float(np.mean([getter(rep) for rep in reports]))

    return {
        "makespan": mean(lambda r: r.makespan),
        "slowdown": mean(lambda r: r.slowdown),
        "rollbacks": mean(lambda r: r.rollback_count),
        "mean_rollback_distance": mean(lambda r: r.mean_rollback_distance),
        "max_rollback_distance": mean(lambda r: r.max_rollback_distance),
        "lost_work": mean(lambda r: r.lost_work_total),
        "checkpoint_overhead": mean(lambda r: r.checkpoint_overhead_total),
        "waiting_time": mean(lambda r: r.waiting_time_total),
        "peak_saved_states": mean(lambda r: r.peak_saved_states),
        "completed": float(np.mean([1.0 if r.completed else 0.0 for r in reports])),
    }


def run_strategy_comparison(workload: WorkloadSpec, *, replications: int = 5,
                            base_seed: int = 100, sync_interval: float = 2.0,
                            schemes: Sequence[str] = ("asynchronous", "synchronized",
                                                      "pseudo")) -> ExperimentResult:
    """Run every scheme on *workload* and tabulate the averaged metrics."""
    columns = ["makespan", "slowdown", "rollbacks", "mean_rollback_distance",
               "max_rollback_distance", "lost_work", "checkpoint_overhead",
               "waiting_time", "peak_saved_states"]
    result = ExperimentResult(
        name="strategy_comparison_runtime",
        paper_reference="Sections 2-5 trade-off discussion (executable version)",
        columns=columns,
        notes=(f"Averages over {replications} replications of the same workload; "
               "the asynchronous scheme trades low normal-operation overhead for "
               "long (potentially unbounded) rollbacks, the synchronized scheme "
               "trades waiting time for bounded rollback, PRPs pay state-saving "
               "overhead for bounded rollback without waiting."),
    )
    for scheme in schemes:
        metrics = run_scheme_replications(scheme, workload,
                                          replications=replications,
                                          base_seed=base_seed,
                                          sync_interval=sync_interval)
        result.add_row(scheme, **{k: metrics[k] for k in columns})
    return result
