"""Executable comparison of the three recovery schemes on the same workload.

The paper compares the schemes analytically; this experiment runs all three
*runtimes* on identical workloads (same seeds, same fault timeline statistics) and
reports the measured makespan, rollback behaviour, overheads and storage — the
empirical counterpart of the conclusion's trade-off discussion, and the experiment
behind the ``strategy_comparison`` example.

The registered scenario is expressed through the unified facade: one
``strategy`` :class:`~repro.api.StudySpec` per scheme, evaluated by
:func:`repro.api.evaluate_in_context` with the strategy engine.  Every
(scheme, replication) pair remains one task for the experiment runner, so the
whole comparison fans out across worker processes; seeds per replication are
fixed up front and shared across schemes (common random numbers), keeping the
averaged metrics backend independent.  :func:`run_strategy_comparison` keeps
the direct-runtime path for arbitrary :class:`WorkloadSpec` values (recovery
blocks, acceptance models) the declarative spec does not express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.recovery import make_runtime
from repro.recovery.report import RunReport
from repro.runner import (
    ExecutionContext,
    SerialBackend,
    make_backend,
    scenario,
)
from repro.workloads.spec import WorkloadSpec

__all__ = ["run_strategy_comparison", "run_scheme_replications"]

METRIC_COLUMNS = ("makespan", "slowdown", "rollbacks", "mean_rollback_distance",
                  "max_rollback_distance", "lost_work", "checkpoint_overhead",
                  "waiting_time", "peak_saved_states")


def _run_scheme(scheme: str, workload: WorkloadSpec, seed: int,
                sync_interval: float) -> RunReport:
    return make_runtime(scheme, workload, seed=seed,
                        sync_interval=sync_interval).run()


@dataclass(frozen=True)
class _SchemeRun:
    """One picklable (scheme, replication) runtime task."""

    scheme: str
    workload: WorkloadSpec
    seed: int
    sync_interval: float


def _run_scheme_task(task: _SchemeRun) -> RunReport:
    return _run_scheme(task.scheme, task.workload, task.seed, task.sync_interval)


def _summarize(reports: Sequence[RunReport]) -> Dict[str, float]:
    def mean(getter) -> float:
        return float(np.mean([getter(rep) for rep in reports]))

    return {
        "makespan": mean(lambda r: r.makespan),
        "slowdown": mean(lambda r: r.slowdown),
        "rollbacks": mean(lambda r: r.rollback_count),
        "mean_rollback_distance": mean(lambda r: r.mean_rollback_distance),
        "max_rollback_distance": mean(lambda r: r.max_rollback_distance),
        "lost_work": mean(lambda r: r.lost_work_total),
        "checkpoint_overhead": mean(lambda r: r.checkpoint_overhead_total),
        "waiting_time": mean(lambda r: r.waiting_time_total),
        "peak_saved_states": mean(lambda r: r.peak_saved_states),
        "completed": float(np.mean([1.0 if r.completed else 0.0 for r in reports])),
    }


def run_scheme_replications(scheme: str, workload: WorkloadSpec, *,
                            replications: int = 5, base_seed: int = 100,
                            sync_interval: float = 2.0,
                            backend=None) -> Dict[str, float]:
    """Run one scheme several times and average the headline metrics."""
    if replications < 1:
        raise ValueError("need at least one replication")
    backend = make_backend(backend) if backend is not None else SerialBackend()
    tasks = [_SchemeRun(scheme, workload, base_seed + r, sync_interval)
             for r in range(replications)]
    return _summarize(backend.map(_run_scheme_task, tasks))


def _comparison_result(notes_replications: int) -> ExperimentResult:
    return ExperimentResult(
        name="strategy_comparison_runtime",
        paper_reference="Sections 2-5 trade-off discussion (executable version)",
        columns=list(METRIC_COLUMNS),
        notes=(f"Averages over {notes_replications} replications of the same "
               "workload; the asynchronous scheme trades low normal-operation "
               "overhead for long (potentially unbounded) rollbacks, the "
               "synchronized scheme trades waiting time for bounded rollback, "
               "PRPs pay state-saving overhead for bounded rollback without "
               "waiting."),
    )


def _tabulate(schemes: Sequence[str], tasks: List[_SchemeRun],
              reports: Sequence[RunReport], replications: int
              ) -> ExperimentResult:
    result = _comparison_result(replications)
    for scheme in schemes:
        scheme_reports = [rep for task, rep in zip(tasks, reports)
                          if task.scheme == scheme]
        metrics = _summarize(scheme_reports)
        result.add_row(scheme, **{k: metrics[k] for k in METRIC_COLUMNS})
    return result


@scenario("strategy_comparison",
          description="All three recovery schemes on one workload (measured)",
          paper_reference="Sections 2-5 trade-off discussion (executable version)",
          default_reps=5, renderer="strategy_tradeoff")
def strategy_comparison_scenario(ctx: ExecutionContext, *,
                                 n: int = 3, mu: float = 1.0, lam: float = 1.0,
                                 work: float = 25.0, error_rate: float = 0.04,
                                 sync_interval: float = 2.0,
                                 schemes: Sequence[str] = ("asynchronous",
                                                           "synchronized",
                                                           "pseudo")
                                 ) -> ExperimentResult:
    """Run every scheme on a homogeneous workload; ``ctx.reps`` replications each.

    One ``strategy`` study cell per scheme, evaluated through the unified
    facade.  The strategy engine shares one replication seed block across the
    cells (common random numbers: replication r uses the same seed for every
    scheme, so the seed noise cancels out of the scheme-vs-scheme deltas) —
    the same task/seed layout as the pre-facade version, bit for bit.
    """
    from repro.api import StudySpec, SystemSpec, evaluate_in_context

    replications = ctx.reps_or(5)
    specs = [StudySpec(system=SystemSpec.strategy(
                           str(scheme), n, mu=mu, lam=lam, work=work,
                           error_rate=error_rate, sync_interval=sync_interval),
                       metrics=METRIC_COLUMNS + ("completed",),
                       reps=replications)
             for scheme in schemes]
    evaluations = evaluate_in_context(ctx, specs, method="strategy")
    result = _comparison_result(replications)
    for scheme, evaluation in zip(schemes, evaluations):
        result.add_row(str(scheme), **{name: evaluation.metrics[name]
                                       for name in METRIC_COLUMNS})
    return result


def run_strategy_comparison(workload: WorkloadSpec, *, replications: int = 5,
                            base_seed: int = 100, sync_interval: float = 2.0,
                            schemes: Sequence[str] = ("asynchronous", "synchronized",
                                                      "pseudo"),
                            backend=None,
                            workers: Optional[int] = None) -> ExperimentResult:
    """Run every scheme on *workload* and tabulate the averaged metrics.

    Takes an explicit :class:`WorkloadSpec` (unlike the registered scenario,
    which builds a homogeneous one), so the examples can compare schemes on
    arbitrary workloads; replications fan out across the backend.
    """
    backend = make_backend(backend, workers)
    tasks = [_SchemeRun(scheme, workload, base_seed + r, sync_interval)
             for scheme in schemes for r in range(replications)]
    reports = backend.map(_run_scheme_task, tasks)
    return _tabulate(schemes, tasks, reports, replications)
