"""Table 1 — ``E[X]`` and ``E[L_i]`` for five parameter cases at constant ρ.

The paper tabulates, for five (μ, λ) combinations with the same communication
density, the mean inter-recovery-line interval and the mean number of states each
process saves during it, and observes that "the minima of X and L occur when the
distribution of recovery points among these processes is uniformly balanced" while
the distribution of interprocess communications "has little effect on X and L".

We reproduce every cell analytically and optionally re-run the paper's own
methodology (Monte-Carlo simulation of the model) for comparison.  The paper's
``E(L_i)`` values match our analytic values under the *all* counting convention
(the recovery point that completes the next line is included) to the three decimal
places printed in the paper.

Both the analytic and the Monte-Carlo columns are computed through the
:mod:`repro.api` facade (one :class:`~repro.api.spec.StudySpec` per case);
the Monte-Carlo budget is sharded into fixed-size tasks with driver-spawned
seeds, so ``--backend process`` reproduces the serial numbers bit for bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.runner import ExecutionContext, run_scenario, scenario
from repro.workloads.generators import TABLE1_CASES

__all__ = ["run_table1", "PAPER_TABLE1"]

#: The values printed in the paper (E(X), E(L1), E(L2), E(L3), ΣE(L)).
PAPER_TABLE1 = {
    1: (2.598, 2.500, 2.500, 2.500, 7.500),
    2: (3.357, 4.847, 3.231, 1.616, 9.693),
    3: (2.600, 2.453, 2.453, 2.453, 7.360),
    4: (3.203, 4.533, 3.022, 1.511, 9.065),
    5: (3.354, 4.967, 3.111, 1.656, 9.933),
}

DEFAULT_INTERVALS = 20_000


@scenario("table1",
          description="Table 1: E[X] and E[L_i] for the five parameter cases",
          paper_reference="Table 1 (mean values of X and L for constant rho)",
          default_reps=DEFAULT_INTERVALS,
          renderer="table")
def table1_scenario(ctx: ExecutionContext, *, simulate: bool = False
                    ) -> ExperimentResult:
    """Regenerate Table 1.

    With ``simulate=True`` the Monte-Carlo columns (the paper's own methodology)
    are added next to the analytic ones; ``ctx.reps`` is the per-case interval
    budget.
    """
    from repro.api import StudySpec, SystemSpec, evaluate_in_context

    n_intervals = ctx.reps_or(DEFAULT_INTERVALS)
    columns = ["E[X]", "E[L1]", "E[L2]", "E[L3]", "sum E[L]",
               "paper E[X]", "paper sum E[L]"]
    if simulate:
        columns += ["sim E[X]", "sim sum E[L]"]
    result = ExperimentResult(
        name="table1_mean_interval_and_counts",
        paper_reference="Table 1 (mean values of X and L for constant rho)",
        columns=columns,
        notes=("E[L_i] uses the 'all' counting convention (mu_i * E[X]); under it "
               "our analytic values match the paper's E(L) cells to the printed "
               "precision.  The paper's E(X) column came from simulation and sits "
               "3-6% above the analytic mean."),
    )
    cases = list(range(1, len(TABLE1_CASES) + 1))

    def case_spec(case: int) -> StudySpec:
        return StudySpec(system=SystemSpec.table1_case(case),
                         metrics=("mean", "rp_counts"), counting="all",
                         reps=n_intervals,
                         options={"prefer_simplified": False})

    # MC first: its sharded tasks consume the context's seed stream in the
    # same (case-ordered) layout the pre-facade sampler used.
    sampled = {}
    if simulate:
        sampled = dict(zip(cases, evaluate_in_context(
            ctx, [case_spec(case) for case in cases], method="mc")))
    analytic = dict(zip(cases, evaluate_in_context(
        ctx, [case_spec(case) for case in cases], method="analytic")))

    for case in cases:
        counts = analytic[case].rp_counts
        paper = PAPER_TABLE1[case]
        values = {
            "E[X]": analytic[case].mean,
            "E[L1]": counts[0],
            "E[L2]": counts[1],
            "E[L3]": counts[2],
            "sum E[L]": float(np.asarray(counts).sum()),
            "paper E[X]": paper[0],
            "paper sum E[L]": paper[4],
        }
        if simulate:
            sim = sampled[case]
            values["sim E[X]"] = sim.mean
            values["sim sum E[L]"] = float(np.asarray(sim.rp_counts).sum())
        mu, lam = TABLE1_CASES[case - 1]
        result.add_row(f"case {case} mu={mu} lam={lam}", **values)
    return result


def run_table1(*, simulate: bool = False, n_intervals: int = DEFAULT_INTERVALS,
               seed: Optional[int] = 2024, backend=None,
               workers: Optional[int] = None) -> ExperimentResult:
    """Regenerate Table 1 (compatibility wrapper over ``run_scenario``)."""
    return run_scenario("table1", backend=backend, workers=workers, seed=seed,
                        reps=n_intervals, simulate=simulate)
