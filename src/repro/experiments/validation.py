"""Cross-validation: analytic model vs model-level Monte Carlo vs full DES.

Not a paper artefact, but the evidence that the substrate reproduces the paper's
stochastic model: for the Table 1 cases, the phase-type mean ``E[X]``, the
Monte-Carlo estimate from :class:`~repro.markov.montecarlo.ModelSimulator`, and the
history-level estimate obtained by running the latest-RP recovery-line detector
over a generated history must all agree within sampling error.

Both the Monte-Carlo sampling (sharded per case) and the history generation run
through the experiment runner's backend, so the whole validation fans out across
cores with bit-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.intervals import extract_intervals, summarize_intervals
from repro.core.recovery_line import LatestRPRecoveryLineDetector
from repro.experiments.common import ExperimentResult
from repro.markov.montecarlo import ModelSimulator
from repro.runner import ExecutionContext, run_scenario, scenario
from repro.workloads.generators import paper_table1_case

__all__ = ["run_validation"]

DEFAULT_INTERVALS = 4_000


@dataclass(frozen=True)
class _HistoryTask:
    case: int
    duration: float
    seed: np.random.SeedSequence


def _history_mean(task: _HistoryTask) -> Tuple[float, int]:
    """Generate one history and return (mean interval, interval count)."""
    params = paper_table1_case(task.case)
    history = ModelSimulator(params, seed=task.seed).generate_history(task.duration)
    observations = extract_intervals(history, LatestRPRecoveryLineDetector())
    if not observations:
        return float("nan"), 0
    return summarize_intervals(observations)["mean_X"], len(observations)


@scenario("validation",
          description="Three-way agreement: analytic vs Monte-Carlo vs history",
          paper_reference="Section 2.3 methodology (analytic vs simulation)",
          default_reps=DEFAULT_INTERVALS)
def validation_scenario(ctx: ExecutionContext, *,
                        cases: Sequence[int] = (1, 2, 3),
                        history_duration: float = 400.0) -> ExperimentResult:
    """Three-way agreement check on ``E[X]`` for selected Table 1 cases.

    ``ctx.reps`` is the per-case Monte-Carlo interval budget.
    """
    from repro.api import StudySpec, SystemSpec, evaluate_in_context

    n_intervals = ctx.reps_or(DEFAULT_INTERVALS)
    columns = ["analytic E[X]", "MC E[X]", "MC stderr", "history E[X]",
               "MC rel err", "history rel err"]
    result = ExperimentResult(
        name="validation_three_way",
        paper_reference="Section 2.3 methodology (analytic vs simulation)",
        columns=columns,
        notes=("'MC' samples the model directly; 'history' generates a full event "
               "history and extracts intervals with the latest-RP detector — all "
               "three must agree within sampling error."),
    )
    cases = list(cases)

    def case_spec(case: int) -> StudySpec:
        return StudySpec(system=SystemSpec.table1_case(case), metrics=("mean",),
                         reps=n_intervals,
                         options={"prefer_simplified": False})

    # MC first, then the history seeds: the facade shards consume the seed
    # stream in the same order the pre-facade sampler did.
    mc_by_case = dict(zip(cases, evaluate_in_context(
        ctx, [case_spec(case) for case in cases], method="mc")))
    history_tasks = [_HistoryTask(case, history_duration, ctx.spawn_seed())
                     for case in cases]
    history_outputs = ctx.map(_history_mean, history_tasks)
    analytic_by_case = dict(zip(cases, evaluate_in_context(
        ctx, [case_spec(case) for case in cases], method="analytic")))

    for case, (history_mean, _count) in zip(cases, history_outputs):
        analytic = analytic_by_case[case].mean
        mc = mc_by_case[case]
        result.add_row(f"table1 case {case}", **{
            "analytic E[X]": analytic,
            "MC E[X]": mc.mean,
            "MC stderr": mc.stderr,
            "history E[X]": history_mean,
            "MC rel err": abs(mc.mean - analytic) / analytic,
            "history rel err": abs(history_mean - analytic) / analytic,
        })
    return result


def run_validation(cases: Sequence[int] = (1, 2, 3),
                   n_intervals: int = DEFAULT_INTERVALS,
                   history_duration: float = 400.0,
                   seed: Optional[int] = 7, *, backend=None,
                   workers: Optional[int] = None) -> ExperimentResult:
    """Three-way validation (compatibility wrapper over ``run_scenario``)."""
    return run_scenario("validation", backend=backend, workers=workers,
                        seed=seed, reps=n_intervals, cases=cases,
                        history_duration=history_duration)
