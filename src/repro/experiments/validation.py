"""Cross-validation: analytic model vs model-level Monte Carlo vs full DES.

Not a paper artefact, but the evidence that the substrate reproduces the paper's
stochastic model: for the Table 1 cases, the phase-type mean ``E[X]``, the
Monte-Carlo estimate from :class:`~repro.markov.montecarlo.ModelSimulator`, and the
history-level estimate obtained by running the latest-RP recovery-line detector
over a generated history must all agree within sampling error.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.intervals import extract_intervals, summarize_intervals
from repro.core.recovery_line import LatestRPRecoveryLineDetector
from repro.experiments.common import ExperimentResult
from repro.markov.montecarlo import ModelSimulator
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.workloads.generators import paper_table1_case

__all__ = ["run_validation"]


def run_validation(cases: Sequence[int] = (1, 2, 3),
                   n_intervals: int = 4000, history_duration: float = 400.0,
                   seed: Optional[int] = 7) -> ExperimentResult:
    """Three-way agreement check on ``E[X]`` for selected Table 1 cases."""
    columns = ["analytic E[X]", "MC E[X]", "MC stderr", "history E[X]",
               "MC rel err", "history rel err"]
    result = ExperimentResult(
        name="validation_three_way",
        paper_reference="Section 2.3 methodology (analytic vs simulation)",
        columns=columns,
        notes=("'MC' samples the model directly; 'history' generates a full event "
               "history and extracts intervals with the latest-RP detector — all "
               "three must agree within sampling error."),
    )
    detector = LatestRPRecoveryLineDetector()
    for idx, case in enumerate(cases):
        params = paper_table1_case(case)
        model = RecoveryLineIntervalModel(params, prefer_simplified=False)
        analytic = model.mean_interval()

        simulator = ModelSimulator(params, seed=None if seed is None else seed + idx)
        sampled = simulator.sample_intervals(n_intervals)
        mc_mean = sampled.mean_interval()

        history = ModelSimulator(params,
                                 seed=None if seed is None else seed + 100 + idx
                                 ).generate_history(history_duration)
        observations = extract_intervals(history, detector)
        history_mean = summarize_intervals(observations)["mean_X"] if observations \
            else float("nan")

        result.add_row(f"table1 case {case}", **{
            "analytic E[X]": analytic,
            "MC E[X]": mc_mean,
            "MC stderr": sampled.interval_stderr(),
            "history E[X]": history_mean,
            "MC rel err": abs(mc_mean - analytic) / analytic,
            "history rel err": abs(history_mean - analytic) / analytic,
        })
    return result
