"""Ablation experiments for the design decisions called out in DESIGN.md.

* **Detector ablation** — the paper's Markov model declares a recovery line only
  when *every* process's most recent action is a recovery point, which is a
  conservative (sufficient) version of the true pairwise no-sandwiched-message
  condition.  The ablation measures how much shorter the inter-line intervals are
  under the exact detector, i.e. how conservative the paper's model is.
* **Solver ablation** — the density ``f_X(t)`` can be computed from the phase-type
  closed form (matrix exponentials) or by integrating the Chapman–Kolmogorov ODEs
  (the formulation the paper writes down).  The ablation checks the two agree and
  reports their discrepancy.

The detector ablation generates one history per case through the runner backend
(both detectors are applied to the same history inside the worker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.intervals import extract_intervals, summarize_intervals
from repro.core.recovery_line import (
    ExactRecoveryLineDetector,
    LatestRPRecoveryLineDetector,
)
from repro.experiments.common import ExperimentResult
from repro.markov.generator import build_generator
from repro.markov.montecarlo import ModelSimulator
from repro.markov.ctmc import transient_distribution
from repro.runner import ExecutionContext, run_scenario, scenario
from repro.workloads.generators import paper_table1_case

__all__ = ["run_detector_ablation", "run_solver_ablation"]


@dataclass(frozen=True)
class _DetectorTask:
    case: int
    duration: float
    seed: np.random.SeedSequence


def _compare_detectors(task: _DetectorTask) -> Dict[str, float]:
    """Run both detectors over one generated history; return the row metrics."""
    params = paper_table1_case(task.case)
    history = ModelSimulator(params, seed=task.seed).generate_history(task.duration)
    latest_obs = extract_intervals(history, LatestRPRecoveryLineDetector())
    exact_obs = extract_intervals(history, ExactRecoveryLineDetector())
    latest_mean = summarize_intervals(latest_obs)["mean_X"] if latest_obs \
        else float("nan")
    exact_mean = summarize_intervals(exact_obs)["mean_X"] if exact_obs \
        else float("nan")
    return {
        "latest-RP E[X]": latest_mean,
        "exact E[X]": exact_mean,
        "exact lines": float(len(exact_obs)),
        "latest-RP lines": float(len(latest_obs)),
        "conservatism": latest_mean / exact_mean if exact_mean else float("nan"),
    }


@scenario("detector_ablation",
          description="Exact vs latest-RP recovery-line detection",
          paper_reference="Section 2.2 model choice (conservative line condition)",
          default_reps=1)
def detector_ablation_scenario(ctx: ExecutionContext, *,
                               cases: Sequence[int] = (1, 2),
                               duration: float = 300.0) -> ExperimentResult:
    """Exact vs latest-RP recovery-line detection on the same histories.

    ``ctx.reps`` scales the history length (``reps`` histories' worth of
    duration per case, still analysed as one trajectory each).
    """
    from repro.api import StudySpec, SystemSpec, evaluate_in_context

    total_duration = duration * ctx.reps_or(1)
    columns = ["model E[X]", "latest-RP E[X]", "exact E[X]",
               "exact lines", "latest-RP lines", "conservatism"]
    result = ExperimentResult(
        name="ablation_recovery_line_detectors",
        paper_reference="Section 2.2 model choice (conservative line condition)",
        columns=columns,
        notes=("'conservatism' = latest-RP E[X] / exact E[X]; values above 1 "
               "quantify how much the paper's Markov condition overestimates the "
               "spacing of recovery lines relative to the exact definition."),
    )
    cases = list(cases)
    tasks = [_DetectorTask(case, total_duration, ctx.spawn_seed())
             for case in cases]
    rows = ctx.map(_compare_detectors, tasks)
    analytic_by_case = dict(zip(cases, evaluate_in_context(
        ctx,
        [StudySpec(system=SystemSpec.table1_case(case), metrics=("mean",),
                   options={"prefer_simplified": False})
         for case in cases],
        method="analytic")))
    for case, metrics in zip(cases, rows):
        result.add_row(f"table1 case {case}",
                       **{"model E[X]": analytic_by_case[case].mean, **metrics})
    return result


def run_detector_ablation(cases: Sequence[int] = (1, 2),
                          duration: float = 300.0,
                          seed: Optional[int] = 13, *, backend=None,
                          workers: Optional[int] = None) -> ExperimentResult:
    """Detector ablation (compatibility wrapper over ``run_scenario``)."""
    return run_scenario("detector_ablation", backend=backend, workers=workers,
                        seed=seed, cases=cases, duration=duration)


@scenario("solver_ablation",
          description="Phase-type closed form vs Chapman-Kolmogorov ODE solver",
          paper_reference="Section 2.3 (Chapman-Kolmogorov equations)")
def solver_ablation_scenario(ctx: ExecutionContext, *, case: int = 1,
                             times: Sequence[float] = (0.25, 0.5, 1.0, 1.5, 2.0)
                             ) -> ExperimentResult:
    """Phase-type (expm, via the facade) vs Chapman–Kolmogorov ODE ``F_X(t)``."""
    from repro.api import StudySpec, SystemSpec, evaluate

    case = int(case)
    params = paper_table1_case(case)
    H, space = build_generator(params)
    pi0 = np.zeros(space.n_states)
    pi0[space.entry_index] = 1.0
    grid = np.asarray(times, dtype=float)
    ode = transient_distribution(H, pi0, grid)
    cdf_ode = ode[:, space.absorbing_index]
    evaluation = evaluate(
        StudySpec(system=SystemSpec.table1_case(case), metrics=("cdf",),
                  times=tuple(float(t) for t in times),
                  options={"prefer_simplified": False}),
        method="analytic")
    cdf_ph = np.asarray(evaluation.distributions["cdf"])

    result = ExperimentResult(
        name="ablation_density_solvers",
        paper_reference="Section 2.3 (Chapman-Kolmogorov equations)",
        columns=["F_X expm", "F_X ode", "abs diff"],
        notes="Closed-form phase-type evaluation vs direct ODE integration of dpi/dt = pi H.",
    )
    for t, a, b in zip(grid, cdf_ph, cdf_ode):
        result.add_row(f"t={t:g}", **{
            "F_X expm": float(a),
            "F_X ode": float(b),
            "abs diff": float(abs(a - b)),
        })
    return result


def run_solver_ablation(case: int = 1,
                        times: Sequence[float] = (0.25, 0.5, 1.0, 1.5, 2.0)
                        ) -> ExperimentResult:
    """Solver agreement check (deprecated wrapper over ``run_scenario``)."""
    return run_scenario("solver_ablation", case=case, times=tuple(times))
