"""Experiment harness: regenerate every table and figure of the paper.

Each module builds an :class:`~repro.experiments.common.ExperimentResult` whose
``render()`` produces the rows/series the paper reports (plus our analytic and
Monte-Carlo values side by side), so that running the benchmark suite doubles as
regenerating the artefacts.  See DESIGN.md §3 for the experiment index.

Every module registers its entry point with the scenario registry
(:mod:`repro.runner`): importing this package populates the registry, after
which ``python -m repro list`` / ``python -m repro run <name>`` (or
:func:`repro.runner.run_scenario`) run any experiment, serially or across a
process pool.  The ``run_*`` functions remain as thin compatibility wrappers.

Scenarios whose output *is* a paper artifact additionally declare a renderer
(``@scenario(..., renderer="figure5")``); ``python -m repro report`` routes
their results through :mod:`repro.report.figures` into figure/table files
plus a provenance-stamped ``REPORT.md``.
"""

from repro.experiments.common import ExperimentResult, ExperimentRow
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure5_full_chain import run_figure5_full_chain
from repro.experiments.figure6 import run_figure6
from repro.experiments.heterogeneous_sweep import (heterogeneous_parameters,
                                                   run_heterogeneous_sweep)
from repro.experiments.table1 import run_table1
from repro.experiments.sync_loss import run_sync_loss, run_sync_loss_validation
from repro.experiments.prp_costs import run_prp_costs
from repro.experiments.validation import run_validation
from repro.experiments.ablation import run_detector_ablation, run_solver_ablation
from repro.experiments.strategy_comparison import run_strategy_comparison
from repro.experiments.cascading_faults import run_cascading_faults

__all__ = [
    "ExperimentResult",
    "ExperimentRow",
    "heterogeneous_parameters",
    "run_figure5",
    "run_figure5_full_chain",
    "run_figure6",
    "run_heterogeneous_sweep",
    "run_table1",
    "run_sync_loss",
    "run_sync_loss_validation",
    "run_prp_costs",
    "run_validation",
    "run_detector_ablation",
    "run_solver_ablation",
    "run_strategy_comparison",
    "run_cascading_faults",
]
