"""Sharded Monte-Carlo sampling of the paper's parameter cases (deprecated).

This was the shared sampling primitive of the Table 1 regeneration and the
three-way validation before the :mod:`repro.api` facade existed.  Both
scenarios now declare a :class:`~repro.api.spec.StudySpec` per case and call
:func:`repro.api.evaluate_in_context`, whose ``mc`` engine reproduces exactly
the task/seed layout implemented here (fixed-size shards, driver-spawned
seeds, shard-order merge) — which is why the migration kept stored results
bit-identical.  The module remains as a thin compatibility surface for
external callers; new code should go through the facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.markov.montecarlo import (
    ModelSimulator,
    SimulatedIntervals,
    concatenate_intervals,
)
from repro.runner import ExecutionContext
from repro.workloads.generators import paper_table1_case

__all__ = ["IntervalShard", "sample_interval_shard", "sample_interval_cases"]


@dataclass(frozen=True)
class IntervalShard:
    """One picklable Monte-Carlo work item: a slice of a case's budget."""

    case: int
    n_intervals: int
    seed: np.random.SeedSequence


def sample_interval_shard(shard: IntervalShard) -> SimulatedIntervals:
    """Worker entry point: sample one shard of one Table 1 case."""
    params = paper_table1_case(shard.case)
    return ModelSimulator(params, seed=shard.seed).sample_intervals(shard.n_intervals)


def sample_interval_cases(ctx: ExecutionContext, cases: Sequence[int],
                          n_intervals: int) -> Dict[int, SimulatedIntervals]:
    """Sample every case's intervals through the backend; one flat task list."""
    shards: List[IntervalShard] = []
    boundaries = [0]
    for case in cases:
        sizes = ctx.shards_for(n_intervals)
        seeds = ctx.spawn_seeds(len(sizes))
        shards.extend(IntervalShard(case, size, seed)
                      for size, seed in zip(sizes, seeds))
        boundaries.append(len(shards))
    outputs = ctx.map(sample_interval_shard, shards)
    return {case: concatenate_intervals(outputs[lo:hi])
            for case, lo, hi in zip(cases, boundaries, boundaries[1:])}
