"""Shared sharded Monte-Carlo sampling of the paper's parameter cases.

Both the Table 1 regeneration and the three-way validation need the same
primitive: for each Table 1 case, sample ``n_intervals`` inter-recovery-line
intervals through the runner backend.  The budget is split into fixed-size
shards (:meth:`ExecutionContext.shards_for`), each shard gets a driver-spawned
seed, and the shard outputs are merged in shard order — the seed-stream scheme
that keeps serial and parallel runs bit-identical.  Keeping the machinery here
means a change to the sharding or seed-ordering policy cannot diverge between
the scenarios that rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.markov.montecarlo import (
    ModelSimulator,
    SimulatedIntervals,
    concatenate_intervals,
)
from repro.runner import ExecutionContext
from repro.workloads.generators import paper_table1_case

__all__ = ["IntervalShard", "sample_interval_shard", "sample_interval_cases"]


@dataclass(frozen=True)
class IntervalShard:
    """One picklable Monte-Carlo work item: a slice of a case's budget."""

    case: int
    n_intervals: int
    seed: np.random.SeedSequence


def sample_interval_shard(shard: IntervalShard) -> SimulatedIntervals:
    """Worker entry point: sample one shard of one Table 1 case."""
    params = paper_table1_case(shard.case)
    return ModelSimulator(params, seed=shard.seed).sample_intervals(shard.n_intervals)


def sample_interval_cases(ctx: ExecutionContext, cases: Sequence[int],
                          n_intervals: int) -> Dict[int, SimulatedIntervals]:
    """Sample every case's intervals through the backend; one flat task list."""
    shards: List[IntervalShard] = []
    boundaries = [0]
    for case in cases:
        sizes = ctx.shards_for(n_intervals)
        seeds = ctx.spawn_seeds(len(sizes))
        shards.extend(IntervalShard(case, size, seed)
                      for size, seed in zip(sizes, seeds))
        boundaries.append(len(shards))
    outputs = ctx.map(sample_interval_shard, shards)
    return {case: concatenate_intervals(outputs[lo:hi])
            for case, lo, hi in zip(cases, boundaries, boundaries[1:])}
