"""Section 4 — overheads and rollback-distance bound of pseudo recovery points.

The paper derives three costs for the PRP scheme — ``(n−1)t_r`` extra time per
recovery point, ``n`` saved states per RP, and a rollback distance bounded by
``sup{y_i}`` — and contrasts them with the asynchronous scheme's unbounded
rollback.  This experiment tabulates those quantities against the asynchronous
baseline (``E[X]``) as the number of processes grows, which makes the trade-off the
conclusion describes quantitative.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.prp_overhead import PRPOverheadModel
from repro.core.parameters import SystemParameters
from repro.experiments.common import ExperimentResult
from repro.runner import ExecutionContext, scenario

__all__ = ["run_prp_costs"]


@scenario("prp_costs",
          description="Section 4: PRP overhead, storage and rollback bound vs n",
          paper_reference="Section 4 (PRP overhead, storage, rollback distance bound)")
def prp_costs_scenario(ctx: ExecutionContext, *,
                       n_values: Sequence[int] = (2, 3, 4, 5, 6, 8, 10),
                       mu: float = 1.0, rho: float = 1.0,
                       record_cost: float = 0.02) -> ExperimentResult:
    """Tabulate PRP costs versus the asynchronous baseline for growing ``n``.

    The asynchronous baseline ``E[X]`` comes from the facade's analytic
    engine (lumped symmetric chain); the PRP quantities are closed forms.
    """
    from repro.api import StudySpec, SystemSpec, evaluate_in_context

    n_values = list(n_values)
    multi = [n for n in n_values if n > 1]
    async_ex_by_n = dict(zip(multi, (evaluation.mean for evaluation in
        evaluate_in_context(
            ctx,
            [StudySpec(system=SystemSpec.symmetric(
                           n, mu, rho * (mu * n) / (n * (n - 1))),
                       metrics=("mean",))
             for n in multi],
            method="analytic"))))

    columns = ["extra time per RP", "overhead rate", "states per RP",
               "steady storage", "PRP rollback bound", "async E[X]",
               "bound / E[X]"]
    result = ExperimentResult(
        name="prp_costs_vs_n",
        paper_reference="Section 4 (PRP overhead, storage, rollback distance bound)",
        columns=columns,
        notes=("The PRP rollback bound grows like H_n/mu while the asynchronous "
               "inter-recovery-line interval E[X] explodes combinatorially, so the "
               "ratio collapses as n grows — the quantitative version of the "
               "paper's argument for PRPs."),
    )
    for n in n_values:
        lam = rho * (mu * n) / (n * (n - 1)) if n > 1 else 0.0
        params = SystemParameters.symmetric(n, mu, lam)
        prp = PRPOverheadModel(params, record_cost=record_cost)
        async_ex = async_ex_by_n[n] if n > 1 else 1.0 / mu
        bound = prp.rollback_distance_bound()
        result.add_row(f"n={n}", **{
            "extra time per RP": prp.extra_time_per_rp(),
            "overhead rate": prp.overhead_time_rate(),
            "states per RP": float(prp.states_per_rp()),
            "steady storage": float(prp.steady_state_storage()),
            "PRP rollback bound": bound,
            "async E[X]": async_ex,
            "bound / E[X]": bound / async_ex if async_ex > 0 else float("inf"),
        })
    return result


def run_prp_costs(n_values: Sequence[int] = (2, 3, 4, 5, 6, 8, 10),
                  mu: float = 1.0, rho: float = 1.0,
                  record_cost: float = 0.02) -> ExperimentResult:
    """PRP cost table (deprecated compatibility wrapper over the scenario)."""
    from repro.runner import run_scenario

    return run_scenario("prp_costs", n_values=tuple(n_values), mu=mu, rho=rho,
                        record_cost=record_cost)
