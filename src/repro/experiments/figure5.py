"""Figure 5 — mean interval ``E[X]`` versus the number of processes ``n``.

The paper plots ``E[X]`` against ``n`` with all ``μ_i = 1`` and all pairwise rates
equal, for a fixed communication density ``ρ = 2Σλ/Σμ`` (caption of Figure 5), and
observes that "X increases drastically when there is an increase in the number of
processes involved in the rollback recovery".  We sweep several ρ values and both
recompute the analytic value (lumped chain) and, for small n, cross-check with the
full chain.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.runner import ExecutionContext, run_scenario, scenario

__all__ = ["run_figure5"]


@scenario("figure5",
          description="Figure 5: E[X] versus the number of processes",
          paper_reference="Figure 5 (mean value of X vs. the number of processes)",
          renderer="figure5")
def figure5_scenario(ctx: ExecutionContext, *,
                     n_values: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
                     rho_values: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
                     mu: float = 1.0,
                     cross_check_full_chain_up_to: int = 5) -> ExperimentResult:
    """Regenerate the Figure 5 series.

    For each ``(n, ρ)`` the per-pair rate is ``λ = ρ·Σμ / (n(n−1))`` (so that
    ``ρ = 2·Σ_{i<j}λ / Σμ`` matches the caption); ``E[X]`` comes from the
    facade's analytic engine (the lumped symmetric chain), with a full-chain
    cross-check for small systems.  Cells fan out through the backend.
    """
    from repro.api import StudySpec, SystemSpec, evaluate_in_context

    n_values = [int(n) for n in n_values]
    if any(n < 2 for n in n_values):
        raise ValueError("Figure 5 needs at least two processes")
    rho_values = [float(rho) for rho in rho_values]

    def cell_spec(n: int, rho: float, *, full_chain: bool) -> StudySpec:
        lam = rho * (mu * n) / (n * (n - 1))
        options = {"prefer_simplified": False} if full_chain else {}
        return StudySpec(system=SystemSpec.symmetric(n, mu, lam),
                         metrics=("mean",), options=options)

    grid = [(n, rho) for n in n_values for rho in rho_values]
    lumped = evaluate_in_context(
        ctx, [cell_spec(n, rho, full_chain=False) for n, rho in grid],
        method="analytic")
    check_grid = [(n, rho) for n, rho in grid
                  if n <= cross_check_full_chain_up_to]
    full = dict(zip(check_grid, evaluate_in_context(
        ctx, [cell_spec(n, rho, full_chain=True) for n, rho in check_grid],
        method="analytic")))

    columns = [f"E[X] rho={rho:g}" for rho in rho_values]
    result = ExperimentResult(
        name="figure5_mean_interval_vs_n",
        paper_reference="Figure 5 (mean value of X vs. the number of processes)",
        columns=columns,
        notes=("E[X] grows super-exponentially with n at fixed rho; the paper's "
               "curve shape (drastic increase with n) is reproduced.  Values are "
               "analytic (phase-type mean), not simulated."),
    )
    means = dict(zip(grid, lumped))
    for n in n_values:
        values = {}
        for rho in rho_values:
            mean_x = means[(n, rho)].mean
            if (n, rho) in full:
                full_mean = full[(n, rho)].mean
                if abs(full_mean - mean_x) > 1e-6 * max(1.0, mean_x):
                    raise AssertionError(
                        f"lumped and full chains disagree at n={n}, rho={rho}: "
                        f"{mean_x} vs {full_mean}")
            values[f"E[X] rho={rho:g}"] = mean_x
        result.add_row(f"n={n}", **values)
    return result


def run_figure5(n_values: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
                rho_values: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
                mu: float = 1.0, *, cross_check_full_chain_up_to: int = 5,
                backend=None, workers: Optional[int] = None
                ) -> ExperimentResult:
    """Figure 5 series (deprecated compatibility wrapper over the scenario)."""
    return run_scenario("figure5", backend=backend, workers=workers,
                        n_values=n_values, rho_values=rho_values, mu=mu,
                        cross_check_full_chain_up_to=cross_check_full_chain_up_to)
