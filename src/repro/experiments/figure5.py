"""Figure 5 — mean interval ``E[X]`` versus the number of processes ``n``.

The paper plots ``E[X]`` against ``n`` with all ``μ_i = 1`` and all pairwise rates
equal, for a fixed communication density ``ρ = 2Σλ/Σμ`` (caption of Figure 5), and
observes that "X increases drastically when there is an increase in the number of
processes involved in the rollback recovery".  We sweep several ρ values and both
recompute the analytic value (lumped chain) and, for small n, cross-check with the
full chain.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.parameters import SystemParameters
from repro.experiments.common import ExperimentResult
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.markov.simplified import SimplifiedChain
from repro.runner import ExecutionContext, scenario

__all__ = ["run_figure5"]


@scenario("figure5",
          description="Figure 5: E[X] versus the number of processes",
          paper_reference="Figure 5 (mean value of X vs. the number of processes)",
          renderer="figure5")
def figure5_scenario(ctx: ExecutionContext, *,
                     n_values: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
                     rho_values: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
                     mu: float = 1.0,
                     cross_check_full_chain_up_to: int = 5) -> ExperimentResult:
    """Regenerate the Figure 5 series (analytic; the backend is not used)."""
    return run_figure5(n_values, rho_values, mu,
                       cross_check_full_chain_up_to=cross_check_full_chain_up_to)


def run_figure5(n_values: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
                rho_values: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
                mu: float = 1.0, *, cross_check_full_chain_up_to: int = 5
                ) -> ExperimentResult:
    """Regenerate the Figure 5 series.

    For each ``(n, ρ)`` the per-pair rate is ``λ = ρ·Σμ / (n(n−1))`` (so that
    ``ρ = 2·Σ_{i<j}λ / Σμ`` matches the caption); ``E[X]`` comes from the lumped
    symmetric chain, with a full-chain cross-check for small systems.
    """
    columns = [f"E[X] rho={rho:g}" for rho in rho_values]
    result = ExperimentResult(
        name="figure5_mean_interval_vs_n",
        paper_reference="Figure 5 (mean value of X vs. the number of processes)",
        columns=columns,
        notes=("E[X] grows super-exponentially with n at fixed rho; the paper's "
               "curve shape (drastic increase with n) is reproduced.  Values are "
               "analytic (phase-type mean), not simulated."),
    )
    for n in n_values:
        if n < 2:
            raise ValueError("Figure 5 needs at least two processes")
        values = {}
        for rho in rho_values:
            lam = rho * (mu * n) / (n * (n - 1))
            chain = SimplifiedChain(n=n, mu=mu, lam=lam)
            mean_x = chain.mean_interval()
            if n <= cross_check_full_chain_up_to:
                params = SystemParameters.symmetric(n, mu, lam)
                full = RecoveryLineIntervalModel(params, prefer_simplified=False)
                full_mean = full.mean_interval()
                if abs(full_mean - mean_x) > 1e-6 * max(1.0, mean_x):
                    raise AssertionError(
                        f"lumped and full chains disagree at n={n}, rho={rho}: "
                        f"{mean_x} vs {full_mean}")
            values[f"E[X] rho={rho:g}"] = mean_x
        result.add_row(f"n={n}", **values)
    return result
