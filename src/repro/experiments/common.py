"""Shared result containers and rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.util.tables import AsciiTable

__all__ = ["ExperimentRow", "ExperimentResult"]


@dataclass(frozen=True)
class ExperimentRow:
    """One row of an experiment table: a label plus named numeric values."""

    label: str
    values: Dict[str, float]

    def get(self, key: str) -> float:
        try:
            return float(self.values[key])
        except KeyError:
            available = ", ".join(sorted(self.values)) or "(none)"
            raise KeyError(f"row {self.label!r} has no column {key!r}; "
                           f"available columns: {available}") from None


@dataclass
class ExperimentResult:
    """A regenerated artefact: metadata, column order and rows.

    ``paper_reference`` names the table/figure of the paper the result reproduces;
    ``notes`` records substitutions or known deviations (mirrored in
    EXPERIMENTS.md).
    """

    name: str
    paper_reference: str
    columns: Sequence[str]
    rows: List[ExperimentRow] = field(default_factory=list)
    notes: str = ""

    def add_row(self, label: str, **values: float) -> ExperimentRow:
        row = ExperimentRow(label=label, values={k: float(v) for k, v in values.items()})
        missing = [c for c in self.columns if c not in row.values]
        if missing:
            raise ValueError(f"row {label!r} is missing columns {missing}")
        self.rows.append(row)
        return row

    def column(self, key: str) -> List[float]:
        """All values of one column, in row order."""
        return [row.get(key) for row in self.rows]

    def row(self, label: str) -> ExperimentRow:
        for row in self.rows:
            if row.label == label:
                return row
        known = ", ".join(repr(row.label) for row in self.rows) or "(no rows)"
        raise KeyError(f"result {self.name!r} has no row labelled {label!r}; "
                       f"known labels: {known}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (``python -m repro run --output``)."""
        return {
            "name": self.name,
            "paper_reference": self.paper_reference,
            "columns": list(self.columns),
            "rows": [{"label": row.label, "values": dict(row.values)}
                     for row in self.rows],
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output.

        The round trip is exact: ``ExperimentResult.from_dict(r.to_dict())``
        compares equal to ``r`` field by field, which is what lets the
        :class:`~repro.report.store.ResultStore` hand back stored runs as
        first-class results.
        """
        result = cls(
            name=str(payload["name"]),
            paper_reference=str(payload["paper_reference"]),
            columns=list(payload["columns"]),
            notes=str(payload.get("notes", "")),
        )
        for row in payload["rows"]:
            result.add_row(str(row["label"]),
                           **{str(k): float(v)
                              for k, v in row["values"].items()})
        return result

    def render(self, float_digits: int = 4) -> str:
        table = AsciiTable(["case", *self.columns], float_digits=float_digits)
        for row in self.rows:
            table.add_row([row.label, *(row.values[c] for c in self.columns)])
        header = f"{self.name}  (reproduces {self.paper_reference})"
        parts = [header, "=" * len(header), table.render()]
        if self.notes:
            parts.append("")
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
