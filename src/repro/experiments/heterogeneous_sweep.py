"""Heterogeneous-parameter sweep — workloads the lumped chain cannot express.

The lumped chain of Figure 3 requires every ``μ_i`` equal and every ``λ_ij``
equal; real systems are neither.  This scenario sweeps a family of
deliberately non-exchangeable systems — a geometric per-process checkpoint
gradient ``μ_i = μ_base · g^{i/(n-1)}`` combined with a locality-decaying
interaction topology ``λ_ij = λ_base / (1 + d·|i−j|)`` — on the *full*
``2^n``-state chain, which the sparse
:class:`~repro.markov.operators.TransientOperator` backend keeps feasible at
sizes (``n ≥ 10``) the dense path cannot touch.

Reported per gradient ``g``: the interval statistics ``E[X]``/``std[X]``, the
total recovery-point count ``E[Σ L_i]`` (interior counting), and the imbalance
``max q_i / min q_i`` of the line-completion probabilities — the quantity that
shows how a rate gradient concentrates line completion onto the
fastest-checkpointing processes.

Sweep cells run through the runner backend (``ctx.map``); the analysis is
deterministic, so serial and process-pool runs are bit-identical.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.parameters import SystemParameters
from repro.experiments.common import ExperimentResult
from repro.runner import ExecutionContext, run_scenario, scenario

__all__ = ["heterogeneous_parameters", "run_heterogeneous_sweep"]


def heterogeneous_parameters(n: int, *, mu_base: float = 1.0,
                             mu_gradient: float = 1.0,
                             lam_base: float = 0.5,
                             locality: float = 1.0) -> SystemParameters:
    """Build the sweep's non-exchangeable parameter family.

    ``μ_i`` ramps geometrically from ``mu_base`` (process 0) to
    ``mu_base · mu_gradient`` (process n−1); ``λ_ij = lam_base / (1 +
    locality·|i−j|)`` decays with process distance (a line-topology locality
    model).  ``mu_gradient = 1`` and ``locality = 0`` recover the symmetric
    system, which is the cross-check used in tests.
    """
    if n < 1:
        raise ValueError("need at least one process")
    if mu_gradient <= 0.0:
        raise ValueError("mu_gradient must be strictly positive")
    if locality < 0.0:
        raise ValueError("locality must be non-negative")
    exponents = np.arange(n) / max(n - 1, 1)
    mu = mu_base * np.power(mu_gradient, exponents)
    idx = np.arange(n)
    distance = np.abs(idx[:, None] - idx[None, :])
    lam = lam_base / (1.0 + locality * distance)
    np.fill_diagonal(lam, 0.0)
    return SystemParameters(mu=mu, lam=lam)


@scenario("heterogeneous_sweep",
          description="Per-process mu/lambda gradients on the sparse full chain",
          paper_reference="Section 2.3 extension (heterogeneous rates beyond "
                          "the lumped chain's reach)",
          renderer="heterogeneous_sweep")
def heterogeneous_sweep_scenario(ctx: ExecutionContext, *,
                                 n: int = 10,
                                 mu_gradients: Sequence[float] = (1.0, 1.5,
                                                                  2.0, 3.0),
                                 mu_base: float = 1.0,
                                 lam_base: float = 0.5,
                                 locality: float = 1.0) -> ExperimentResult:
    """Sweep the checkpoint-rate gradient at fixed size and topology."""
    from repro.api import StudySpec, SystemSpec, evaluate_in_context

    n = int(n)
    mu_gradients = [float(g) for g in mu_gradients]
    evaluations = evaluate_in_context(
        ctx,
        [StudySpec(system=SystemSpec.heterogeneous(
                       n, mu_base=float(mu_base), mu_gradient=g,
                       lam_base=float(lam_base), locality=float(locality)),
                   metrics=("mean", "std", "rp_counts",
                            "completion_probabilities"),
                   counting="interior",
                   options={"prefer_simplified": False})
         for g in mu_gradients],
        method="analytic")
    outputs = []
    for evaluation in evaluations:
        q = np.asarray(evaluation.completion_probabilities)
        outputs.append((evaluation.mean, evaluation.metrics["std"],
                        float(np.asarray(evaluation.rp_counts).sum()),
                        float(q.max() / max(q.min(), 1e-300)),
                        evaluation.backend))

    columns = ["E[X]", "std[X]", "E[sum L]", "q max/min"]
    result = ExperimentResult(
        name="heterogeneous_rate_gradient_sweep",
        paper_reference="Section 2.3 extension (heterogeneous rates beyond "
                        "the lumped chain's reach)",
        notes=(f"Full {2 ** n}+1-state chain, n={n}, lam_base={lam_base:g}, "
               f"locality={locality:g}; mu_i ramps geometrically by the row's "
               "gradient. 'q max/min' is the imbalance of the line-completion "
               "probabilities — gradient 1 is the symmetric reference with "
               "ratio close to 1."),
        columns=columns,
    )
    for g, (mean_x, std_x, sum_l, q_ratio, backend) in zip(mu_gradients,
                                                           outputs):
        result.add_row(f"gradient={g:g} [{backend}]", **{
            "E[X]": mean_x,
            "std[X]": std_x,
            "E[sum L]": sum_l,
            "q max/min": q_ratio,
        })
    return result


def run_heterogeneous_sweep(n: int = 10,
                            mu_gradients: Sequence[float] = (1.0, 1.5, 2.0,
                                                             3.0),
                            mu_base: float = 1.0, lam_base: float = 0.5,
                            locality: float = 1.0, *, backend=None,
                            workers: Optional[int] = None) -> ExperimentResult:
    """Heterogeneous sweep (compatibility wrapper over ``run_scenario``)."""
    return run_scenario("heterogeneous_sweep", backend=backend,
                        workers=workers, n=n, mu_gradients=mu_gradients,
                        mu_base=mu_base, lam_base=lam_base, locality=locality)
