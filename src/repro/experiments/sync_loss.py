"""Section 3 — mean computation-power loss of synchronized recovery blocks.

The paper gives the closed form ``CL = n∫(1−G(t))dt − Σ1/μ_i`` but no table; this
experiment tabulates it over the dimensions the text discusses — the number of
processes and the heterogeneity of the checkpointing rates — and cross-checks the
analytic value against the synchronized runtime's measured waiting loss.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.synchronized_loss import SynchronizedLossModel
from repro.core.parameters import SystemParameters
from repro.experiments.common import ExperimentResult
from repro.processes.communication import all_pairs_rates
from repro.recovery.synchronized import SynchronizedRuntime, SyncStrategy
from repro.workloads.spec import FaultModel, WorkloadSpec

__all__ = ["run_sync_loss", "run_sync_loss_validation"]


def run_sync_loss(n_values: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
                  mu: float = 1.0,
                  heterogeneity: Sequence[float] = (1.0, 2.0, 4.0)
                  ) -> ExperimentResult:
    """Tabulate ``CL`` versus ``n`` and rate heterogeneity.

    ``heterogeneity = h`` spreads the rates geometrically between ``μ/h`` and
    ``μ·h`` (keeping the same total rate); ``h = 1`` is the homogeneous case.
    """
    columns = [f"CL h={h:g}" for h in heterogeneity] + ["E[Z] h=1", "CL per proc h=1"]
    result = ExperimentResult(
        name="sync_loss_vs_n",
        paper_reference="Section 3 (mean loss in computation power, eq. for CL)",
        columns=columns,
        notes=("CL grows like n(H_n - 1)/mu for homogeneous rates; spreading the "
               "rates at constant total increases the loss because the slowest "
               "process dictates the commit."),
    )
    for n in n_values:
        values = {}
        homogeneous = SynchronizedLossModel([mu] * n)
        for h in heterogeneity:
            if h <= 0.0:
                raise ValueError("heterogeneity factors must be positive")
            if h == 1.0 or n == 1:
                rates = np.full(n, mu)
            else:
                rates = np.geomspace(mu / h, mu * h, n)
                rates *= (mu * n) / rates.sum()   # keep the same aggregate rate
            values[f"CL h={h:g}"] = SynchronizedLossModel(rates).expected_loss()
        values["E[Z] h=1"] = homogeneous.expected_wait()
        values["CL per proc h=1"] = homogeneous.expected_loss() / n
        result.add_row(f"n={n}", **values)
    return result


def run_sync_loss_validation(n: int = 3, mu: float = 1.0, *,
                             sync_interval: float = 3.0, work: float = 400.0,
                             seed: Optional[int] = 11) -> ExperimentResult:
    """Compare the analytic ``CL`` with the synchronized runtime's measurement."""
    params = SystemParameters(mu=[mu] * n, lam=all_pairs_rates(n, 0.5))
    workload = WorkloadSpec(params=params, work_per_process=work,
                            checkpoint_cost=0.0, restart_cost=0.0,
                            faults=FaultModel(error_rate=0.0))
    runtime = SynchronizedRuntime(workload, seed=seed,
                                  strategy=SyncStrategy.ELAPSED_TIME,
                                  sync_interval=sync_interval)
    report = runtime.run()
    analytic = SynchronizedLossModel([mu] * n).expected_loss()
    measured = runtime.mean_sync_loss()
    result = ExperimentResult(
        name="sync_loss_validation",
        paper_reference="Section 3 (CL formula) — runtime cross-check",
        columns=["analytic CL", "measured CL", "relative error", "lines committed"],
        notes="Measured mean waiting loss per committed recovery line vs. the closed form.",
    )
    rel = abs(measured - analytic) / analytic if analytic > 0 else 0.0
    result.add_row(f"n={n} mu={mu:g}", **{
        "analytic CL": analytic,
        "measured CL": measured,
        "relative error": rel,
        "lines committed": float(report.recovery_lines_committed),
    })
    return result
