"""Section 3 — mean computation-power loss of synchronized recovery blocks.

The paper gives the closed form ``CL = n∫(1−G(t))dt − Σ1/μ_i`` but no table; this
experiment tabulates it over the dimensions the text discusses — the number of
processes and the heterogeneity of the checkpointing rates — and cross-checks the
analytic value against the synchronized runtime's measured waiting loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.synchronized_loss import SynchronizedLossModel
from repro.core.parameters import SystemParameters
from repro.experiments.common import ExperimentResult
from repro.processes.communication import all_pairs_rates
from repro.recovery.synchronized import SynchronizedRuntime, SyncStrategy
from repro.runner import ExecutionContext, scenario, seed_to_int
from repro.workloads.spec import FaultModel, WorkloadSpec

__all__ = ["run_sync_loss", "run_sync_loss_validation"]


@scenario("sync_loss",
          description="Section 3: mean computation-power loss CL vs n",
          paper_reference="Section 3 (mean loss in computation power, eq. for CL)")
def sync_loss_scenario(ctx: ExecutionContext, *,
                       n_values: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
                       mu: float = 1.0,
                       heterogeneity: Sequence[float] = (1.0, 2.0, 4.0)
                       ) -> ExperimentResult:
    """Regenerate the CL table (analytic; the backend is not used)."""
    return run_sync_loss(n_values, mu, heterogeneity)


def run_sync_loss(n_values: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
                  mu: float = 1.0,
                  heterogeneity: Sequence[float] = (1.0, 2.0, 4.0)
                  ) -> ExperimentResult:
    """Tabulate ``CL`` versus ``n`` and rate heterogeneity.

    ``heterogeneity = h`` spreads the rates geometrically between ``μ/h`` and
    ``μ·h`` (keeping the same total rate); ``h = 1`` is the homogeneous case.
    """
    columns = [f"CL h={h:g}" for h in heterogeneity] + ["E[Z] h=1", "CL per proc h=1"]
    result = ExperimentResult(
        name="sync_loss_vs_n",
        paper_reference="Section 3 (mean loss in computation power, eq. for CL)",
        columns=columns,
        notes=("CL grows like n(H_n - 1)/mu for homogeneous rates; spreading the "
               "rates at constant total increases the loss because the slowest "
               "process dictates the commit."),
    )
    for n in n_values:
        values = {}
        homogeneous = SynchronizedLossModel([mu] * n)
        for h in heterogeneity:
            if h <= 0.0:
                raise ValueError("heterogeneity factors must be positive")
            if h == 1.0 or n == 1:
                rates = np.full(n, mu)
            else:
                rates = np.geomspace(mu / h, mu * h, n)
                rates *= (mu * n) / rates.sum()   # keep the same aggregate rate
            values[f"CL h={h:g}"] = SynchronizedLossModel(rates).expected_loss()
        values["E[Z] h=1"] = homogeneous.expected_wait()
        values["CL per proc h=1"] = homogeneous.expected_loss() / n
        result.add_row(f"n={n}", **values)
    return result


@dataclass(frozen=True)
class _SyncLossRun:
    """One picklable synchronized-runtime measurement task."""

    n: int
    mu: float
    sync_interval: float
    work: float
    seed: Optional[int]


def _measure_sync_loss(task: _SyncLossRun) -> Tuple[float, int]:
    """Run the synchronized runtime once; return (mean loss, lines committed)."""
    params = SystemParameters(mu=[task.mu] * task.n,
                              lam=all_pairs_rates(task.n, 0.5))
    workload = WorkloadSpec(params=params, work_per_process=task.work,
                            checkpoint_cost=0.0, restart_cost=0.0,
                            faults=FaultModel(error_rate=0.0))
    runtime = SynchronizedRuntime(workload, seed=task.seed,
                                  strategy=SyncStrategy.ELAPSED_TIME,
                                  sync_interval=task.sync_interval)
    report = runtime.run()
    return runtime.mean_sync_loss(), report.recovery_lines_committed


@scenario("sync_loss_validation",
          description="Section 3 CL formula vs the synchronized runtime",
          paper_reference="Section 3 (CL formula) — runtime cross-check",
          default_reps=1)
def sync_loss_validation_scenario(ctx: ExecutionContext, *, n: int = 3,
                                  mu: float = 1.0, sync_interval: float = 3.0,
                                  work: float = 400.0) -> ExperimentResult:
    """Compare the analytic ``CL`` with the synchronized runtime's measurement.

    ``ctx.reps`` independent runtime replications are averaged (each with its
    own spawned seed); the default of one replication matches the original
    single-run experiment.
    """
    reps = ctx.reps_or(1)
    tasks = [_SyncLossRun(n, mu, sync_interval, work, seed_to_int(seq))
             for seq in ctx.spawn_seeds(reps)]
    measurements = ctx.map(_measure_sync_loss, tasks)
    analytic = SynchronizedLossModel([mu] * n).expected_loss()
    measured = float(np.mean([loss for loss, _lines in measurements]))
    lines = sum(lines for _loss, lines in measurements)
    result = ExperimentResult(
        name="sync_loss_validation",
        paper_reference="Section 3 (CL formula) — runtime cross-check",
        columns=["analytic CL", "measured CL", "relative error", "lines committed"],
        notes="Measured mean waiting loss per committed recovery line vs. the closed form.",
    )
    rel = abs(measured - analytic) / analytic if analytic > 0 else 0.0
    result.add_row(f"n={n} mu={mu:g}", **{
        "analytic CL": analytic,
        "measured CL": measured,
        "relative error": rel,
        "lines committed": float(lines),
    })
    return result


def run_sync_loss_validation(n: int = 3, mu: float = 1.0, *,
                             sync_interval: float = 3.0, work: float = 400.0,
                             seed: Optional[int] = 11, backend=None,
                             workers: Optional[int] = None,
                             replications: int = 1) -> ExperimentResult:
    """Runtime cross-check of ``CL`` (compatibility wrapper over the scenario)."""
    from repro.runner import run_scenario

    return run_scenario("sync_loss_validation", backend=backend, workers=workers,
                        seed=seed, reps=replications, n=n, mu=mu,
                        sync_interval=sync_interval, work=work)
