"""Section 3 — mean computation-power loss of synchronized recovery blocks.

The paper gives the closed form ``CL = n∫(1−G(t))dt − Σ1/μ_i`` but no table; this
experiment tabulates it over the dimensions the text discusses — the number of
processes and the heterogeneity of the checkpointing rates — and cross-checks the
analytic value against the synchronized runtime's measured waiting loss.

Both scenarios speak the unified facade language: each ``(n, heterogeneity)``
point is a ``strategy`` :class:`~repro.api.StudySpec` (synchronized scheme),
served by the analytic engine's closed forms — and, for the validation
scenario, by the measuring strategy engine on the same declared system, which
is what makes the analytic/measured comparison a genuine cross-engine check.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.runner import ExecutionContext, scenario

__all__ = ["run_sync_loss", "run_sync_loss_validation"]


def _loss_system(scheme_n: int, mu: float, *, mu_spread: float = 1.0,
                 sync_interval: float = 3.0, work: float = 400.0):
    """The declarative system of one CL cell (zero-cost, fault-free workload).

    Costs and faults are zeroed so the measured waiting loss isolates the
    synchronisation loss the closed form describes — the same workload the
    pre-facade validation experiment built by hand.
    """
    from repro.api import SystemSpec
    return SystemSpec.strategy("synchronized", scheme_n, mu=mu,
                               mu_spread=mu_spread, lam=0.5, work=work,
                               error_rate=0.0, checkpoint_cost=0.0,
                               restart_cost=0.0, sync_interval=sync_interval)


@scenario("sync_loss",
          description="Section 3: mean computation-power loss CL vs n",
          paper_reference="Section 3 (mean loss in computation power, eq. for CL)",
          renderer="sync_loss")
def sync_loss_scenario(ctx: ExecutionContext, *,
                       n_values: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
                       mu: float = 1.0,
                       heterogeneity: Sequence[float] = (1.0, 2.0, 4.0)
                       ) -> ExperimentResult:
    """Regenerate the CL table through the facade's analytic closed forms.

    ``heterogeneity = h`` spreads the rates geometrically between ``μ/h`` and
    ``μ·h`` (keeping the same total rate); ``h = 1`` is the homogeneous case.
    The ``(n, h)`` grid cells fan out through the backend.
    """
    from repro.api import StudySpec, evaluate_in_context

    heterogeneity = [float(h) for h in heterogeneity]
    if any(h <= 0.0 for h in heterogeneity):
        raise ValueError("heterogeneity factors must be positive")
    n_values = [int(n) for n in n_values]
    grid = [(n, h) for n in n_values for h in heterogeneity]
    specs = [StudySpec(system=_loss_system(n, mu, mu_spread=h),
                       metrics=("sync_loss", "expected_wait"))
             for n, h in grid]
    cells = dict(zip(grid, evaluate_in_context(ctx, specs, method="analytic")))

    columns = [f"CL h={h:g}" for h in heterogeneity] + ["E[Z] h=1", "CL per proc h=1"]
    result = ExperimentResult(
        name="sync_loss_vs_n",
        paper_reference="Section 3 (mean loss in computation power, eq. for CL)",
        columns=columns,
        notes=("CL grows like n(H_n - 1)/mu for homogeneous rates; spreading the "
               "rates at constant total increases the loss because the slowest "
               "process dictates the commit."),
    )
    for n in n_values:
        values = {f"CL h={h:g}": cells[(n, h)].metrics["sync_loss"]
                  for h in heterogeneity}
        homogeneous = cells[(n, 1.0)] if 1.0 in heterogeneity else \
            evaluate_in_context(ctx, [StudySpec(
                system=_loss_system(n, mu),
                metrics=("sync_loss", "expected_wait"))], method="analytic")[0]
        values["E[Z] h=1"] = homogeneous.metrics["expected_wait"]
        values["CL per proc h=1"] = homogeneous.metrics["sync_loss"] / n
        result.add_row(f"n={n}", **values)
    return result


def run_sync_loss(n_values: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
                  mu: float = 1.0,
                  heterogeneity: Sequence[float] = (1.0, 2.0, 4.0)
                  ) -> ExperimentResult:
    """Tabulate ``CL`` versus ``n`` and rate heterogeneity (scenario wrapper)."""
    from repro.runner import run_scenario

    return run_scenario("sync_loss", n_values=n_values, mu=mu,
                        heterogeneity=heterogeneity)


@scenario("sync_loss_validation",
          description="Section 3 CL formula vs the synchronized runtime",
          paper_reference="Section 3 (CL formula) — runtime cross-check",
          default_reps=1)
def sync_loss_validation_scenario(ctx: ExecutionContext, *, n: int = 3,
                                  mu: float = 1.0, sync_interval: float = 3.0,
                                  work: float = 400.0) -> ExperimentResult:
    """Compare the analytic ``CL`` with the synchronized runtime's measurement.

    One declared system, two engines: the strategy engine measures the mean
    waiting loss per committed recovery line over ``ctx.reps`` replications
    (each with its own spawned seed; the default of one replication matches
    the original single-run experiment), the analytic engine supplies the
    closed form.
    """
    from repro.api import StudySpec, evaluate_in_context

    reps = ctx.reps_or(1)
    system = _loss_system(n, mu, sync_interval=sync_interval, work=work)
    [measured] = evaluate_in_context(
        ctx, [StudySpec(system=system,
                        metrics=("sync_loss", "recovery_lines_total"),
                        reps=reps)],
        method="strategy")
    [closed_form] = evaluate_in_context(
        ctx, [StudySpec(system=system, metrics=("sync_loss",))],
        method="analytic")
    analytic = closed_form.metrics["sync_loss"]
    measured_loss = measured.metrics["sync_loss"]
    result = ExperimentResult(
        name="sync_loss_validation",
        paper_reference="Section 3 (CL formula) — runtime cross-check",
        columns=["analytic CL", "measured CL", "relative error", "lines committed"],
        notes="Measured mean waiting loss per committed recovery line vs. the closed form.",
    )
    rel = abs(measured_loss - analytic) / analytic if analytic > 0 else 0.0
    result.add_row(f"n={n} mu={mu:g}", **{
        "analytic CL": analytic,
        "measured CL": measured_loss,
        "relative error": rel,
        "lines committed": measured.metrics["recovery_lines_total"],
    })
    return result


def run_sync_loss_validation(n: int = 3, mu: float = 1.0, *,
                             sync_interval: float = 3.0, work: float = 400.0,
                             seed: Optional[int] = 11, backend=None,
                             workers: Optional[int] = None,
                             replications: int = 1) -> ExperimentResult:
    """Runtime cross-check of ``CL`` (compatibility wrapper over the scenario)."""
    from repro.runner import run_scenario

    return run_scenario("sync_loss_validation", backend=backend, workers=workers,
                        seed=seed, reps=replications, n=n, mu=mu,
                        sync_interval=sync_interval, work=work)
