"""Correlated common-mode faults cascading through the recovery schemes.

The paper's fault model is independent Poisson errors per process; its
Section 4 contamination discussion, however, is all about how one error
spreads.  This experiment closes that gap at the workload level: a common-mode
event periodically strikes a whole group of processes at once, and each strike
may then cascade outward along interaction edges with a per-edge propagation
probability (``fault_model`` block of a ``strategy``
:class:`~repro.api.StudySpec`, executed by
:func:`repro.faults.propagation.expand_cascade` inside the recovery runtimes).

The registered scenario sweeps the propagation probability for every recovery
scheme on an otherwise identical workload and reports makespan, rollback count
and lost work — how quickly each scheme's guarantees erode as faults stop
being independent.  Seeds are shared across the sweep (common random numbers),
so the scheme-vs-scheme and probability-vs-probability deltas are paired.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.runner import ExecutionContext, scenario

__all__ = ["run_cascading_faults"]

METRICS = ("makespan", "rollbacks", "lost_work")


def _result(replications: int) -> ExperimentResult:
    return ExperimentResult(
        name="cascading_faults",
        paper_reference=("Section 4 contamination discussion, extended to "
                         "correlated fault arrivals"),
        columns=[],
        notes=(f"Averages over {replications} replications; rows sweep the "
               "per-edge cascade propagation probability p of a common-mode "
               "fault group, columns compare the recovery schemes on the "
               "same seeds."),
    )


@scenario("cascading_faults",
          description="Common-mode fault groups cascading across the schemes",
          paper_reference=("Section 4 contamination discussion, extended to "
                           "correlated fault arrivals"),
          default_reps=5, renderer="cascading_faults")
def cascading_faults_scenario(ctx: ExecutionContext, *,
                              n: int = 4, mu: float = 1.0, lam: float = 0.5,
                              work: float = 25.0, error_rate: float = 0.02,
                              sync_interval: float = 2.0,
                              common_mode_rate: float = 0.05,
                              cascade_depth: int = 2,
                              propagation: Sequence[float] = (0.0, 0.25, 0.5,
                                                              0.75, 1.0),
                              schemes: Sequence[str] = ("asynchronous",
                                                        "synchronized",
                                                        "pseudo")
                              ) -> ExperimentResult:
    """Sweep cascade propagation probability × recovery scheme.

    Every cell shares the workload axes; the ``fault_model`` block adds one
    common-mode group over the first half of the processes, struck at
    ``common_mode_rate``, cascading up to ``cascade_depth`` hops with the
    row's propagation probability.  ``p = 0`` keeps the strikes correlated
    but contained to the group — the cascade-free baseline.
    """
    from repro.api import StudySpec, SystemSpec, evaluate_in_context

    replications = ctx.reps_or(5)
    group = list(range(max(2, n // 2)))
    specs = [
        StudySpec(
            system=SystemSpec.strategy(
                str(scheme), n, mu=mu, lam=lam, work=work,
                error_rate=error_rate, sync_interval=sync_interval,
                fault_model={"groups": [group],
                             "common_mode_rate": common_mode_rate,
                             "propagation_probability": float(p),
                             "cascade_depth": cascade_depth}),
            metrics=METRICS + ("completed",),
            reps=replications)
        for p in propagation for scheme in schemes
    ]
    evaluations = evaluate_in_context(ctx, specs, method="strategy")
    result = _result(replications)
    result.columns = [f"{metric} {scheme}"
                      for metric in METRICS for scheme in schemes]
    by_cell = iter(evaluations)
    for p in propagation:
        row = {}
        for scheme in schemes:
            evaluation = next(by_cell)
            for metric in METRICS:
                row[f"{metric} {scheme}"] = evaluation.metrics[metric]
        result.add_row(f"p={float(p):g}", **row)
    return result


def run_cascading_faults(*, replications: int = 5, backend=None,
                         **axes) -> ExperimentResult:
    """Compatibility wrapper: run the scenario outside the CLI."""
    from repro.runner import run_scenario

    return run_scenario("cascading_faults", reps=replications,
                        backend=backend, **axes)
