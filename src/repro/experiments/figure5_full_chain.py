"""Figure 5 at large ``n`` on the *full* (unlumped) chain — sparse backend.

The paper's Figure 5 sweep is only feasible at large ``n`` through the lumped
symmetric chain (``n + 2`` states).  With the sparse
:class:`~repro.markov.operators.TransientOperator` backend the full
``2^n``-state chain itself becomes tractable, which turns the lumpability
argument from a small-``n`` spot check into a large-``n`` cross-validation:
for every ``(n, ρ)`` cell this scenario computes ``E[X]`` on the full chain
(CSR generator + sparse solves) *and* on the lumped chain, and reports the
relative disagreement — which must sit at solver precision.

The ``(n, ρ)`` grid cells are independent, so they are fanned out through the
runner backend (``ctx.map``); the computation is deterministic, hence serial
and process-pool runs are bit-identical by construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.markov.simplified import SimplifiedChain
from repro.runner import ExecutionContext, run_scenario, scenario

__all__ = ["run_figure5_full_chain"]


@scenario("figure5_full_chain",
          description="Figure 5 extension: E[X] vs n on the sparse full chain",
          paper_reference="Figure 5 (full-chain large-n cross-check of the "
                          "lumped symmetric chain)",
          renderer="figure5_full_chain")
def figure5_full_chain_scenario(ctx: ExecutionContext, *,
                                n_values: Sequence[int] = (6, 8, 10, 12),
                                rho_values: Sequence[float] = (0.5, 1.0, 2.0),
                                mu: float = 1.0,
                                agreement_tol: float = 1e-6
                                ) -> ExperimentResult:
    """Compute ``E[X]`` on the full ``2^n``-state chain for every ``(n, ρ)``.

    ``agreement_tol`` bounds the admissible full-vs-lumped relative error; a
    violation raises, because it would mean the sparse backend (or the lumping
    argument) is wrong, not that the physics changed.
    """
    from repro.api import StudySpec, SystemSpec, evaluate_in_context

    n_values = [int(n) for n in n_values]
    if any(n < 2 for n in n_values):
        raise ValueError("the full-chain sweep needs at least two processes")
    rho_values = [float(rho) for rho in rho_values]
    mu = float(mu)

    def cell_lam(n: int, rho: float) -> float:
        return rho * (mu * n) / (n * (n - 1))

    grid = [(n, rho) for n in n_values for rho in rho_values]
    evaluations = evaluate_in_context(
        ctx,
        [StudySpec(system=SystemSpec.symmetric(n, mu, cell_lam(n, rho)),
                   metrics=("mean",), options={"prefer_simplified": False})
         for n, rho in grid],
        method="analytic")
    outputs = []
    for (n, rho), evaluation in zip(grid, evaluations):
        lumped_mean = SimplifiedChain(n=n, mu=mu,
                                      lam=cell_lam(n, rho)).mean_interval()
        rel_err = abs(evaluation.mean - lumped_mean) / max(lumped_mean, 1e-300)
        outputs.append((evaluation.mean, rel_err, evaluation.backend))

    columns = [f"E[X] rho={rho:g}" for rho in rho_values] + ["max rel err"]
    result = ExperimentResult(
        name="figure5_full_chain_vs_lumped",
        paper_reference="Figure 5 (full-chain large-n cross-check of the "
                        "lumped symmetric chain)",
        columns=columns,
        notes=("E[X] from the full 2^n-state chain (dense <= "
               "512 transient states, sparse CSR + Krylov/sparse-LU above); "
               "'max rel err' is the worst disagreement against the lumped "
               "chain across the row's rho values — lumpability holds, so it "
               "sits at solver precision."),
    )
    per_row = len(rho_values)
    for row_idx, n in enumerate(n_values):
        row_cells = outputs[row_idx * per_row:(row_idx + 1) * per_row]
        values = {f"E[X] rho={rho:g}": full_mean
                  for rho, (full_mean, _err, _backend) in zip(rho_values,
                                                              row_cells)}
        worst = max(err for _mean, err, _backend in row_cells)
        if worst > agreement_tol:
            raise AssertionError(
                f"full and lumped chains disagree at n={n}: "
                f"relative error {worst:.3e} > {agreement_tol:.1e}")
        values["max rel err"] = worst
        backends = {backend for _mean, _err, backend in row_cells}
        result.add_row(f"n={n} [{'/'.join(sorted(backends))}]", **values)
    return result


def run_figure5_full_chain(n_values: Sequence[int] = (6, 8, 10, 12),
                           rho_values: Sequence[float] = (0.5, 1.0, 2.0),
                           mu: float = 1.0, *, backend=None,
                           workers: Optional[int] = None) -> ExperimentResult:
    """Full-chain Figure 5 sweep (compatibility wrapper over ``run_scenario``)."""
    return run_scenario("figure5_full_chain", backend=backend, workers=workers,
                        n_values=n_values, rho_values=rho_values, mu=mu)
