"""Figure 6 — the density ``f_X(t)`` of the inter-recovery-line interval.

Three parameter cases are plotted in the paper over a normalised time axis from 0
to 2; all three show a sharp peak near ``t = 0`` "due to direct transition between
``S_r`` and ``S_{r+1}`` and a longer transition time needed once the system enters
intermediate states".  The experiment evaluates the analytic density on a grid and
also reports the direct-transition probability mass that explains the spike.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.runner import ExecutionContext, scenario
from repro.workloads.generators import FIGURE6_CASES, paper_figure6_case

__all__ = ["run_figure6", "figure6_curves"]


@scenario("figure6",
          description="Figure 6: the density f_X(t) of the recovery-line interval",
          paper_reference="Figure 6 (the density function of X)",
          renderer="figure6")
def figure6_scenario(ctx: ExecutionContext, *,
                     sample_times: Sequence[float] = (0.0, 0.2, 0.4, 0.8, 1.2,
                                                      1.6, 2.0)
                     ) -> ExperimentResult:
    """Regenerate Figure 6 through the facade's analytic engine.

    Each paper case is one :class:`~repro.api.spec.StudySpec` requesting the
    density and mean on the sample grid; cases fan out through the backend.
    """
    from repro.api import StudySpec, SystemSpec, evaluate_in_context

    sample_times = tuple(float(t) for t in sample_times)
    cases = list(range(1, len(FIGURE6_CASES) + 1))
    evaluations = evaluate_in_context(
        ctx,
        [StudySpec(system=SystemSpec.figure6_case(case),
                   metrics=("pdf", "mean"), times=sample_times,
                   options={"prefer_simplified": False})
         for case in cases],
        method="analytic")

    columns = [f"f({t:g})" for t in sample_times] + ["P[direct]", "E[X]"]
    result = ExperimentResult(
        name="figure6_interval_density",
        paper_reference="Figure 6 (the density function of X)",
        columns=columns,
        notes=("All three cases show the paper's sharp rise near t=0 caused by the "
               "direct S_r -> S_{r+1} transition; the tail decays with the slowest "
               "phase-type rate."),
    )
    for case, evaluation in zip(cases, evaluations):
        params = paper_figure6_case(case)
        # Probability the first event out of S_r is a recovery point (rule R4),
        # i.e. the next line forms with no intermediate excursion at all.
        direct = params.total_rp_rate / params.uniformization_constant()
        densities = evaluation.distributions["pdf"]
        values = {f"f({t:g})": float(d)
                  for t, d in zip(sample_times, densities)}
        values["P[direct]"] = direct
        values["E[X]"] = evaluation.mean
        mu, lam = FIGURE6_CASES[case - 1]
        result.add_row(f"case {case} mu={mu} lam={lam}", **values)
    return result


def figure6_curves(t_max: float = 2.0, n_points: int = 81):
    """Return ``(times, {case label: density array})`` for the three cases."""
    times = np.linspace(0.0, t_max, n_points)
    curves = {}
    for case in range(1, len(FIGURE6_CASES) + 1):
        params = paper_figure6_case(case)
        model = RecoveryLineIntervalModel(params, prefer_simplified=False)
        curves[f"case {case}"] = np.asarray(model.pdf(times))
    return times, curves


def run_figure6(sample_times: Sequence[float] = (0.0, 0.2, 0.4, 0.8, 1.2, 1.6, 2.0)
                ) -> ExperimentResult:
    """Figure 6 table (deprecated compatibility wrapper over the scenario)."""
    from repro.runner import run_scenario

    return run_scenario("figure6", sample_times=tuple(sample_times))
