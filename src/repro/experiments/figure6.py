"""Figure 6 — the density ``f_X(t)`` of the inter-recovery-line interval.

Three parameter cases are plotted in the paper over a normalised time axis from 0
to 2; all three show a sharp peak near ``t = 0`` "due to direct transition between
``S_r`` and ``S_{r+1}`` and a longer transition time needed once the system enters
intermediate states".  The experiment evaluates the analytic density on a grid and
also reports the direct-transition probability mass that explains the spike.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.runner import ExecutionContext, scenario
from repro.workloads.generators import FIGURE6_CASES, paper_figure6_case

__all__ = ["run_figure6", "figure6_curves"]


@scenario("figure6",
          description="Figure 6: the density f_X(t) of the recovery-line interval",
          paper_reference="Figure 6 (the density function of X)",
          renderer="figure6")
def figure6_scenario(ctx: ExecutionContext, *,
                     sample_times: Sequence[float] = (0.0, 0.2, 0.4, 0.8, 1.2,
                                                      1.6, 2.0)
                     ) -> ExperimentResult:
    """Regenerate Figure 6 (analytic; the backend is not used)."""
    return run_figure6(sample_times)


def figure6_curves(t_max: float = 2.0, n_points: int = 81):
    """Return ``(times, {case label: density array})`` for the three cases."""
    times = np.linspace(0.0, t_max, n_points)
    curves = {}
    for case in range(1, len(FIGURE6_CASES) + 1):
        params = paper_figure6_case(case)
        model = RecoveryLineIntervalModel(params, prefer_simplified=False)
        curves[f"case {case}"] = np.asarray(model.pdf(times))
    return times, curves


def run_figure6(sample_times: Sequence[float] = (0.0, 0.2, 0.4, 0.8, 1.2, 1.6, 2.0)
                ) -> ExperimentResult:
    """Regenerate Figure 6 as a table of density values at sample times.

    Each row is one paper case; the columns give ``f_X(t)`` at the sample times
    plus the probability that the interval closes via the direct ``S_r → S_{r+1}``
    transition (the origin of the near-zero spike) and the mean ``E[X]``.
    """
    columns = [f"f({t:g})" for t in sample_times] + ["P[direct]", "E[X]"]
    result = ExperimentResult(
        name="figure6_interval_density",
        paper_reference="Figure 6 (the density function of X)",
        columns=columns,
        notes=("All three cases show the paper's sharp rise near t=0 caused by the "
               "direct S_r -> S_{r+1} transition; the tail decays with the slowest "
               "phase-type rate."),
    )
    for case in range(1, len(FIGURE6_CASES) + 1):
        params = paper_figure6_case(case)
        model = RecoveryLineIntervalModel(params, prefer_simplified=False)
        densities = model.pdf(np.asarray(sample_times, dtype=float))
        # Probability the first event out of S_r is a recovery point (rule R4),
        # i.e. the next line forms with no intermediate excursion at all.
        direct = params.total_rp_rate / params.uniformization_constant()
        values = {f"f({t:g})": float(d) for t, d in zip(sample_times, densities)}
        values["P[direct]"] = direct
        values["E[X]"] = model.mean_interval()
        mu, lam = FIGURE6_CASES[case - 1]
        label = f"case {case} mu={mu} lam={lam}"
        result.add_row(label, **values)
    return result
