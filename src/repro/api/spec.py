"""Declarative study specifications: what to evaluate, not how.

A :class:`StudySpec` names a system (via :class:`SystemSpec`), the metrics of
the recovery-line interval distribution to compute, the stochastic budget and
seed policy, and optional sweep axes.  It is frozen, canonically serializable
(:meth:`StudySpec.to_dict` / :meth:`StudySpec.from_dict` round-trip exactly),
and content-addressable: :meth:`StudySpec.canonical_key` is *the same* SHA-256
cell key the :class:`~repro.report.store.ResultStore` computes for the
facade's internal ``evaluate`` scenario, so a spec evaluated through
:func:`repro.api.evaluate` with a store attached can predict its own cache
address — and cache hits survive any detour through JSON.

The specs deliberately reuse the store's canonicalisation
(:func:`~repro.report.store.canonical_params`): tuples and lists, numpy and
Python scalars, and differently-ordered dicts all collapse to one canonical
form before hashing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.core.parameters import SystemParameters
from repro.report.store import canonical_params, store_key

__all__ = [
    "DEFAULT_EVAL_REPS",
    "DEFAULT_STRATEGY_REPS",
    "EVALUATE_SCENARIO_NAME",
    "EXECUTION_OPTIONS",
    "FAILURE_LAWS",
    "KNOWN_METRICS",
    "RECOVERY_SCHEMES",
    "STRATEGY_METRICS",
    "StudySpec",
    "SystemSpec",
    "system_axes",
]

#: Name of the facade's internal registered scenario; part of every spec's
#: store identity (see :meth:`StudySpec.canonical_key`).
EVALUATE_SCENARIO_NAME = "evaluate"

#: Default stochastic budget (intervals sampled) when a spec requests a
#: stochastic method but does not state ``reps``.
DEFAULT_EVAL_REPS = 20_000

#: Options that tune *how* a cell is computed without changing any computed
#: number (bit-identity is pinned by tests), excluded from the store identity
#: by :meth:`StudySpec.cell_params`: ``rep_chunk`` sizes the strategy engine's
#: replication chunks, ``structure_cache`` toggles the memoized generator
#: assembly of the analytic engine.
EXECUTION_OPTIONS = ("rep_chunk", "structure_cache")

#: Default replication budget for ``strategy`` systems.  A replication here is
#: one full recovery-scheme *run* (a whole workload driven to completion), not
#: one sampled interval, so the sensible default is orders of magnitude below
#: :data:`DEFAULT_EVAL_REPS`.
DEFAULT_STRATEGY_REPS = 5

#: Metric vocabulary of the interval-quantity systems.  ``mean``/``variance``/
#: ``std`` are moments of the interval ``X``; ``rp_counts`` is the per-process
#: ``E[L_i]`` vector; ``completion_probabilities`` is the ``q_i`` vector;
#: ``pdf``/``cdf``/``sf`` are the distribution of ``X`` evaluated on the
#: spec's ``times`` grid.
KNOWN_METRICS = ("mean", "variance", "std", "rp_counts",
                 "completion_probabilities", "pdf", "cdf", "sf")

#: Metric vocabulary of ``strategy`` systems: headline quantities of one
#: recovery-scheme run, averaged over the replication budget by the
#: ``strategy`` engine.  ``sync_loss`` is the mean waiting loss per committed
#: recovery line (Section 3's ``CL``; measured by the ``strategy`` engine,
#: closed-form via the ``analytic`` engine) and ``expected_wait`` is the
#: analytic ``E[Z]``; both apply to the ``synchronized`` scheme only.
STRATEGY_METRICS = (
    "makespan", "slowdown", "rollbacks", "mean_rollback_distance",
    "max_rollback_distance", "lost_work", "checkpoint_overhead",
    "restart_overhead", "waiting_time", "recovery_lines",
    "recovery_lines_total", "dominoes", "peak_saved_states", "total_saves",
    "completed", "sync_loss", "expected_wait",
)

#: The paper's three checkpointing strategies, as the ``scheme`` argument of
#: the ``strategy`` system kind.
RECOVERY_SCHEMES = ("asynchronous", "synchronized", "pseudo")

#: Distribution metrics require a ``times`` grid.
DISTRIBUTION_METRICS = ("pdf", "cdf", "sf")

#: Engine tuning knobs a spec may carry.  Validated strictly: options are
#: part of the cell's store identity (except the :data:`EXECUTION_OPTIONS`,
#: which change no computed number), so a silently-ignored typo would both
#: mis-route the evaluation and mint a key no correct spec ever matches.
#: ``ph_order`` sets the phase-type fitter order the analytic engine uses
#: for non-exponential failure laws; it changes the computed approximation,
#: so it is identity-bearing (*not* an execution option).
KNOWN_OPTIONS = ("prefer_simplified", "backend", "max_events_per_interval",
                 "rep_chunk", "structure_cache", "ph_order")

#: Recovery-point / fault interarrival laws a system may declare.  The
#: default ``exponential`` is the paper's assumption 5 and keeps every
#: engine exact; ``weibull``/``lognormal`` make interarrivals a renewal
#: process of that law (every timer redrawn when a recovery line forms —
#: for ``strategy`` systems the law governs the fault timeline instead),
#: sampled exactly by the stochastic engines and approximated by the
#: analytic engine through the phase-type fit of
#: :mod:`repro.markov.phfit`.
FAILURE_LAWS = ("exponential", "weibull", "lognormal")

#: System kinds that accept the optional ``failure_law``/``failure_shape``
#: arguments.  The paper-case kinds (``table1_case``/``figure6_case``)
#: reproduce fixed exponential parameter tables and are excluded.
_FAILURE_LAW_KINDS = frozenset({"symmetric", "explicit", "three_process",
                                "heterogeneous", "strategy"})

#: Keys of the optional ``fault_model`` block of ``strategy`` systems.
_FAULT_MODEL_KEYS = frozenset({"groups", "common_mode_rate",
                               "propagation_probability", "cascade_depth"})


def _coerce_number(value, name: str, *, integer: bool = False):
    """Normalise a numeric field so equal numbers share one canonical form.

    ``mu=1`` and ``mu=1.0`` must address the same cell, so rate-like fields
    are always floats and count-like fields always ints.
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got a bool")
    if hasattr(value, "item") and callable(value.item):   # numpy scalars
        value = value.item()
    if integer:
        if float(value) != int(value):
            raise ValueError(f"{name} must be an integer, got {value!r}")
        return int(value)
    return float(value)


def _coerce_vector(values, name: str) -> Tuple[float, ...]:
    return tuple(_coerce_number(v, f"{name}[{i}]") for i, v in enumerate(values))


def _coerce_matrix(rows, name: str) -> Tuple[Tuple[float, ...], ...]:
    return tuple(_coerce_vector(row, f"{name}[{i}]") for i, row in enumerate(rows))


def _coerce_fault_model(value, n: int, name: str = "fault_model") -> Dict[str, object]:
    """Validate and canonicalise a correlated-fault ``fault_model`` block.

    ``groups`` (common-mode failure groups, subsets of ``range(n)``) and
    ``common_mode_rate`` are required; ``propagation_probability`` and
    ``cascade_depth`` default to 0 and are *omitted* at their defaults so the
    canonical form — and therefore the store identity — is unique.  Groups
    are sorted (members and groups alike): the block is a set of sets, and
    two spellings of the same model must address the same cell.
    """
    if not isinstance(value, Mapping):
        raise TypeError(f"{name} must be a mapping")
    block = {str(k): v for k, v in dict(value).items()}
    unknown = sorted(set(block) - _FAULT_MODEL_KEYS)
    if unknown:
        raise ValueError(f"{name} does not take {unknown}; expected a subset "
                         f"of {sorted(_FAULT_MODEL_KEYS)}")
    missing = sorted({"groups", "common_mode_rate"} - set(block))
    if missing:
        raise ValueError(f"{name} is missing {missing}")
    groups = []
    for gi, group in enumerate(block["groups"]):
        members = tuple(sorted(
            _coerce_number(m, f"{name}.groups[{gi}]", integer=True)
            for m in group))
        if not members:
            raise ValueError(f"{name}.groups[{gi}] is empty")
        if len(set(members)) != len(members):
            raise ValueError(f"{name}.groups[{gi}] repeats a process")
        if members[0] < 0 or members[-1] >= n:
            raise ValueError(f"{name}.groups[{gi}] names processes outside "
                             f"0..{n - 1}")
        groups.append(members)
    if not groups:
        raise ValueError(f"{name}.groups must name at least one group")
    rate = _coerce_number(block["common_mode_rate"],
                          f"{name}.common_mode_rate")
    if rate <= 0.0:
        raise ValueError(f"{name}.common_mode_rate must be positive")
    probability = _coerce_number(block.get("propagation_probability", 0.0),
                                 f"{name}.propagation_probability")
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"{name}.propagation_probability must be in [0, 1]")
    depth = _coerce_number(block.get("cascade_depth", 0),
                           f"{name}.cascade_depth", integer=True)
    if depth < 0:
        raise ValueError(f"{name}.cascade_depth must be >= 0")
    coerced: Dict[str, object] = {"groups": tuple(sorted(groups)),
                                  "common_mode_rate": rate}
    if probability > 0.0:
        coerced["propagation_probability"] = probability
    if depth > 0:
        coerced["cascade_depth"] = depth
    return coerced


def system_axes(kind: str) -> frozenset:
    """Sweepable system-arg axes of *kind* (the per-kind field table plus
    the optional failure-law and fault-model arguments)."""
    axes = set(_SYSTEM_KINDS[kind])
    if kind in _FAILURE_LAW_KINDS:
        axes.update(("failure_law", "failure_shape"))
    if kind == "strategy":
        axes.add("fault_model")
    return frozenset(axes)


#: Per-kind field tables: name -> coercion.  Every kind maps onto one of the
#: existing :class:`SystemParameters` builders (or the heterogeneous family of
#: :func:`repro.experiments.heterogeneous_sweep.heterogeneous_parameters`),
#: so a declared system is guaranteed to be *the same* system every engine
#: analyses.
_SYSTEM_KINDS: Dict[str, Dict[str, str]] = {
    "symmetric": {"n": "int", "mu": "float", "lam": "float"},
    "explicit": {"mu": "vector", "lam": "matrix"},
    "three_process": {"mu": "vector", "lam_12_23_31": "vector"},
    "table1_case": {"case": "int"},
    "figure6_case": {"case": "int"},
    "heterogeneous": {"n": "int", "mu_base": "float", "mu_gradient": "float",
                      "lam_base": "float", "locality": "float"},
    "strategy": {"scheme": "str", "n": "int", "mu": "float",
                 "mu_spread": "float", "lam": "float", "work": "float",
                 "error_rate": "float", "checkpoint_cost": "float",
                 "restart_cost": "float", "sync_interval": "float"},
}

_HETEROGENEOUS_DEFAULTS = {"mu_base": 1.0, "mu_gradient": 1.0,
                           "lam_base": 0.5, "locality": 1.0}

#: Cost/fault defaults of the ``strategy`` kind mirror
#: :func:`repro.workloads.generators.strategy_workload` (and therefore the
#: pre-facade ``homogeneous_workload`` shape of the strategy-comparison
#: experiment).  ``scheme``/``n``/``mu``/``lam``/``work`` stay required.
_STRATEGY_DEFAULTS = {"mu_spread": 1.0, "error_rate": 0.0,
                      "checkpoint_cost": 0.02, "restart_cost": 0.05,
                      "sync_interval": 2.0}


@dataclass(frozen=True)
class SystemSpec:
    """A declarative description of one stochastic system.

    ``kind`` selects a builder; ``args`` are its (canonically normalised)
    keyword arguments:

    ``symmetric``
        ``n``, ``mu``, ``lam`` — :meth:`SystemParameters.symmetric`.
    ``explicit``
        ``mu`` (length-n vector), ``lam`` (n×n matrix) — the raw constructor.
    ``three_process``
        ``mu`` (3 rates), ``lam_12_23_31`` — the paper's Table 1 form.
    ``table1_case`` / ``figure6_case``
        ``case`` — the paper's numbered parameter cases.
    ``heterogeneous``
        ``n``, ``mu_base``, ``mu_gradient``, ``lam_base``, ``locality`` — the
        geometric-gradient / locality-decay family of the heterogeneous sweep.
    ``strategy``
        A recovery *strategy* on a workload instead of an interval model:
        ``scheme`` (one of :data:`RECOVERY_SCHEMES`) plus the
        :func:`~repro.workloads.generators.strategy_workload` axes — ``n``,
        ``mu``/``mu_spread``, ``lam``, ``work`` and the fault-timeline /
        cost parameters ``error_rate``, ``checkpoint_cost``, ``restart_cost``,
        ``sync_interval``.  Evaluated against :data:`STRATEGY_METRICS`.
    """

    kind: str
    args: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _SYSTEM_KINDS:
            known = ", ".join(sorted(_SYSTEM_KINDS))
            raise ValueError(f"unknown system kind {self.kind!r}; "
                             f"known kinds: {known}")
        fields = _SYSTEM_KINDS[self.kind]
        args = dict(self.args)
        # The optional failure-law / fault-model arguments are peeled off
        # before the per-kind field checks.  They are stored back *only away
        # from their defaults*: a spec that never mentions them must keep the
        # exact pre-existing canonical form (and store identity).
        law = "exponential"
        law_shape: Optional[float] = None
        fault_model = None
        if self.kind in _FAILURE_LAW_KINDS:
            law = str(args.pop("failure_law", "exponential"))
            if law not in FAILURE_LAWS:
                raise ValueError(f"unknown failure_law {law!r}; known laws: "
                                 f"{', '.join(FAILURE_LAWS)}")
            raw_shape = args.pop("failure_shape", None)
            if law == "exponential":
                if raw_shape is not None:
                    raise ValueError("failure_shape requires a "
                                     "non-exponential failure_law")
            else:
                if raw_shape is None:
                    raise ValueError(f"failure_law {law!r} needs a "
                                     "failure_shape (Weibull k / lognormal σ)")
                law_shape = _coerce_number(raw_shape, "failure_shape")
                if law_shape <= 0.0:
                    raise ValueError("failure_shape must be positive")
        if self.kind == "strategy" and "fault_model" in args:
            fault_model = args.pop("fault_model")
        if self.kind == "heterogeneous":
            for name, default in _HETEROGENEOUS_DEFAULTS.items():
                args.setdefault(name, default)
        elif self.kind == "strategy":
            for name, default in _STRATEGY_DEFAULTS.items():
                args.setdefault(name, default)
        unknown = sorted(set(args) - set(fields))
        if unknown:
            raise ValueError(f"system kind {self.kind!r} does not take "
                             f"{unknown}; expected {sorted(fields)}")
        missing = sorted(set(fields) - set(args))
        if missing:
            raise ValueError(f"system kind {self.kind!r} is missing {missing}")
        coerced: Dict[str, object] = {}
        for name, form in fields.items():
            value = args[name]
            if form == "int":
                coerced[name] = _coerce_number(value, name, integer=True)
            elif form == "float":
                coerced[name] = _coerce_number(value, name)
            elif form == "str":
                coerced[name] = str(value)
            elif form == "vector":
                coerced[name] = _coerce_vector(value, name)
            else:
                coerced[name] = _coerce_matrix(value, name)
        if self.kind == "strategy":
            if coerced["scheme"] not in RECOVERY_SCHEMES:
                raise ValueError(
                    f"unknown recovery scheme {coerced['scheme']!r}; "
                    f"known schemes: {', '.join(RECOVERY_SCHEMES)}")
            if coerced["mu_spread"] <= 0.0:
                raise ValueError("heterogeneity factors must be positive")
        if law != "exponential":
            coerced["failure_law"] = law
            coerced["failure_shape"] = law_shape
        if fault_model is not None:
            coerced["fault_model"] = _coerce_fault_model(
                fault_model, int(coerced["n"]))
        object.__setattr__(self, "args", coerced)

    # ------------------------------------------------------------------ factories
    @classmethod
    def symmetric(cls, n: int, mu: float, lam: float) -> "SystemSpec":
        return cls("symmetric", {"n": n, "mu": mu, "lam": lam})

    @classmethod
    def explicit(cls, params: SystemParameters) -> "SystemSpec":
        """Pin down an arbitrary :class:`SystemParameters` value."""
        return cls("explicit", {"mu": params.mu.tolist(),
                                "lam": params.lam.tolist()})

    @classmethod
    def table1_case(cls, case: int) -> "SystemSpec":
        return cls("table1_case", {"case": case})

    @classmethod
    def figure6_case(cls, case: int) -> "SystemSpec":
        return cls("figure6_case", {"case": case})

    @classmethod
    def heterogeneous(cls, n: int, **kwargs) -> "SystemSpec":
        return cls("heterogeneous", {"n": n, **kwargs})

    @classmethod
    def strategy(cls, scheme: str, n: int, **kwargs) -> "SystemSpec":
        """A recovery strategy on a declarative workload (see class docs)."""
        return cls("strategy", {"scheme": scheme, "n": n, **kwargs})

    # ------------------------------------------------------------------ building
    def build(self) -> SystemParameters:
        """Materialise the declared system as :class:`SystemParameters`."""
        args = dict(self.args)
        if self.kind == "strategy":
            return self.build_workload().params
        if self.kind == "symmetric":
            return SystemParameters.symmetric(args["n"], args["mu"], args["lam"])
        if self.kind == "explicit":
            return SystemParameters(mu=list(args["mu"]),
                                    lam=[list(row) for row in args["lam"]])
        if self.kind == "three_process":
            return SystemParameters.three_process(args["mu"],
                                                  args["lam_12_23_31"])
        if self.kind == "table1_case":
            from repro.workloads.generators import paper_table1_case
            return paper_table1_case(args["case"])
        if self.kind == "figure6_case":
            from repro.workloads.generators import paper_figure6_case
            return paper_figure6_case(args["case"])
        # heterogeneous
        from repro.experiments.heterogeneous_sweep import heterogeneous_parameters
        return heterogeneous_parameters(args["n"], mu_base=args["mu_base"],
                                        mu_gradient=args["mu_gradient"],
                                        lam_base=args["lam_base"],
                                        locality=args["locality"])

    def build_workload(self):
        """Materialise a ``strategy`` system as a runnable ``WorkloadSpec``."""
        if self.kind != "strategy":
            raise ValueError(f"system kind {self.kind!r} declares no workload; "
                             "only 'strategy' systems do")
        from repro.workloads.generators import strategy_workload
        args = dict(self.args)
        return strategy_workload(args["n"], mu=args["mu"],
                                 mu_spread=args["mu_spread"], lam=args["lam"],
                                 work=args["work"],
                                 error_rate=args["error_rate"],
                                 checkpoint_cost=args["checkpoint_cost"],
                                 restart_cost=args["restart_cost"],
                                 failure_law=self.failure_law,
                                 failure_shape=self.failure_shape,
                                 fault_model=self.fault_model)

    @property
    def scheme(self) -> Optional[str]:
        """The recovery scheme of a ``strategy`` system (``None`` otherwise)."""
        if self.kind != "strategy":
            return None
        return str(self.args["scheme"])

    @property
    def failure_law(self) -> str:
        """The declared interarrival law (``"exponential"`` when absent)."""
        return str(self.args.get("failure_law", "exponential"))

    @property
    def failure_shape(self) -> Optional[float]:
        """Shape of a non-exponential law (``None`` for exponential)."""
        value = self.args.get("failure_shape")
        return None if value is None else float(value)

    @property
    def fault_model(self) -> Optional[Dict[str, object]]:
        """The correlated-fault block of a ``strategy`` system, if any."""
        block = self.args.get("fault_model")
        return None if block is None else dict(block)

    @property
    def n(self) -> int:
        """Number of processes of the declared system (without building rates)."""
        if self.kind in ("symmetric", "heterogeneous", "strategy"):
            return int(self.args["n"])
        if self.kind in ("table1_case", "figure6_case"):
            return 3
        return len(self.args["mu"])

    # ------------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, **canonical_params(dict(self.args))}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SystemSpec":
        payload = dict(payload)
        kind = str(payload.pop("kind"))
        return cls(kind, payload)

    def __hash__(self) -> int:
        # The dataclass-generated hash would TypeError on the dict field;
        # hash the canonical JSON instead, so equal specs hash equal.
        return hash(json.dumps(self.to_dict(), sort_keys=True))


@dataclass(frozen=True)
class StudySpec:
    """One declarative evaluation request (or a sweep of them).

    Attributes
    ----------
    system:
        The :class:`SystemSpec` under study.
    metrics:
        Which quantities to compute (:data:`KNOWN_METRICS` for interval
        systems, :data:`STRATEGY_METRICS` for ``strategy`` systems).
    times:
        Evaluation grid for the distribution metrics (``pdf``/``cdf``/``sf``).
    counting:
        Counting convention for ``rp_counts``: ``"all"`` (the completing
        recovery point included — the paper's Table 1 convention) or
        ``"interior"``.
    reps:
        Stochastic budget (intervals sampled) for the ``mc``/``des`` engines;
        ``None`` means :data:`DEFAULT_EVAL_REPS`.  Ignored by ``analytic``.
    seed:
        Root seed.  ``None`` requests fresh entropy, which also opts the
        evaluation out of result-store caching (unreproducible runs are never
        cached — the same policy the runner applies everywhere).
    rel_tol:
        The stated relative tolerance within which stochastic estimates are
        expected to agree with the analytic values (documented in the result;
        enforced by cross-engine tests, not by the evaluators themselves).
    options:
        Engine tuning knobs that *do* affect results and are therefore part
        of the identity: ``prefer_simplified`` / ``backend`` for the analytic
        chain, ``max_events_per_interval`` for the samplers.
    sweep:
        Optional sweep axes: mapping from a system-arg name (or ``"reps"`` /
        ``"seed"``) to the sequence of values to fan out over.  A spec with
        sweep axes is expanded by :meth:`cells` into the cross product;
        axes iterate in canonical name-sorted order (so a spec and its JSON
        round trip enumerate identically), values in their given order.
    """

    system: SystemSpec
    metrics: Tuple[str, ...] = ("mean", "variance", "std")
    times: Tuple[float, ...] = ()
    counting: str = "all"
    reps: Optional[int] = None
    seed: Optional[int] = None
    rel_tol: float = 0.05
    options: Mapping[str, object] = field(default_factory=dict)
    sweep: Mapping[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        metrics = tuple(str(m) for m in self.metrics)
        # Strategy systems speak the run-report vocabulary, interval systems
        # the interval-distribution one; mixing them would hand an engine a
        # metric it cannot possibly compute, so the spec rejects it up front.
        vocabulary = STRATEGY_METRICS if self.system.kind == "strategy" \
            else KNOWN_METRICS
        unknown = sorted(set(metrics) - set(vocabulary))
        if unknown:
            raise ValueError(
                f"unknown metrics {unknown} for system kind "
                f"{self.system.kind!r}; known metrics: {', '.join(vocabulary)}")
        if not metrics:
            raise ValueError("at least one metric is required")
        times = tuple(_coerce_number(t, "times") for t in self.times)
        needs_grid = [m for m in metrics if m in DISTRIBUTION_METRICS]
        if needs_grid and not times:
            raise ValueError(f"metrics {needs_grid} need a 'times' grid")
        if self.counting not in ("all", "interior"):
            raise ValueError("counting must be 'all' or 'interior'")
        if self.reps is not None and int(self.reps) < 1:
            raise ValueError("reps must be >= 1")
        unknown_options = sorted(set(map(str, dict(self.options)))
                                 - set(KNOWN_OPTIONS))
        if unknown_options:
            raise ValueError(f"unknown options {unknown_options}; "
                             f"known options: {', '.join(KNOWN_OPTIONS)}")
        # Axis order is canonicalised (sorted by name) so that a spec and
        # its JSON round trip — whose dict form is key-sorted — enumerate
        # cells() in the same order.
        sweep = {str(k): tuple(v)
                 for k, v in sorted(dict(self.sweep).items(),
                                    key=lambda kv: str(kv[0]))}
        for axis, values in sweep.items():
            if not values:
                raise ValueError(f"sweep axis {axis!r} has no values")
        object.__setattr__(self, "metrics", metrics)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "reps",
                           None if self.reps is None else int(self.reps))
        object.__setattr__(self, "seed",
                           None if self.seed is None else int(self.seed))
        object.__setattr__(self, "rel_tol", float(self.rel_tol))
        object.__setattr__(self, "options",
                           canonical_params(dict(self.options)))
        object.__setattr__(self, "sweep", sweep)

    # ------------------------------------------------------------------ derived
    @property
    def is_sweep(self) -> bool:
        return bool(self.sweep)

    def effective_reps(self) -> int:
        """The stochastic budget with the kind-appropriate default applied."""
        if self.reps is not None:
            return self.reps
        return DEFAULT_STRATEGY_REPS if self.system.kind == "strategy" \
            else DEFAULT_EVAL_REPS

    def wants(self, metric: str) -> bool:
        return metric in self.metrics

    # ------------------------------------------------------------------ sweeps
    def cells(self) -> Iterator["StudySpec"]:
        """Expand the sweep axes into single-cell specs (cross product).

        Axes iterate in canonical (name-sorted) order; within an axis,
        values keep their given order — so the cell sequence is fully
        deterministic, backend independent, and identical for a spec and
        its JSON round trip.
        """
        if not self.sweep:
            yield self
            return
        axes = list(self.sweep.items())
        for combo in product(*(values for _axis, values in axes)):
            cell = self
            system_args = dict(self.system.args)
            system_dirty = False
            for (axis, _values), value in zip(axes, combo):
                if axis == "reps":
                    cell = replace(cell, reps=value, sweep={})
                elif axis == "seed":
                    cell = replace(cell, seed=value, sweep={})
                elif axis in system_axes(self.system.kind):
                    system_args[axis] = value
                    system_dirty = True
                else:
                    raise ValueError(
                        f"sweep axis {axis!r} is neither 'reps', 'seed' nor a "
                        f"field of system kind {self.system.kind!r}")
            if system_dirty:
                cell = replace(cell, system=SystemSpec(self.system.kind,
                                                       system_args), sweep={})
            elif cell.sweep:
                cell = replace(cell, sweep={})
            yield cell

    def cell_count(self) -> int:
        total = 1
        for values in self.sweep.values():
            total *= len(values)
        return total

    # ------------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-stable representation (round-trips exactly)."""
        payload: Dict[str, object] = {
            "system": self.system.to_dict(),
            "metrics": list(self.metrics),
            "counting": self.counting,
            "rel_tol": self.rel_tol,
        }
        if self.times:
            payload["times"] = list(self.times)
        if self.reps is not None:
            payload["reps"] = self.reps
        if self.seed is not None:
            payload["seed"] = self.seed
        if self.options:
            payload["options"] = dict(self.options)
        if self.sweep:
            payload["sweep"] = {k: list(v) for k, v in self.sweep.items()}
        return canonical_params(payload)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "StudySpec":
        payload = dict(payload)
        known = {"system", "metrics", "times", "counting", "reps", "seed",
                 "rel_tol", "options", "sweep"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown StudySpec fields {unknown}; "
                             f"expected a subset of {sorted(known)}")
        if "system" not in payload:
            raise ValueError("a StudySpec needs a 'system' entry")
        return cls(
            system=SystemSpec.from_dict(payload["system"]),
            metrics=tuple(payload.get("metrics", ("mean", "variance", "std"))),
            times=tuple(payload.get("times", ())),
            counting=str(payload.get("counting", "all")),
            reps=payload.get("reps"),
            seed=payload.get("seed"),
            rel_tol=payload.get("rel_tol", 0.05),
            options=dict(payload.get("options", {})),
            sweep=dict(payload.get("sweep", {})),
        )

    # ------------------------------------------------------------------ identity
    def cell_params(self, method: str) -> Dict[str, object]:
        """The scenario-parameter dict of this cell's runner/store identity.

        This is exactly what :func:`repro.api.evaluate` hands to
        :meth:`ExperimentRunner.run_record` for the internal ``evaluate``
        scenario.  ``seed`` and ``reps`` are carried *inside* the spec (they
        are part of its serialised form), so the runner-level seed/reps slots
        of the store key stay at the spec's own values; ``rel_tol`` is a
        documentation annotation that affects no computed number, so it is
        excluded from the identity — retightening a tolerance must not
        invalidate a numerically identical cache.  Execution-tuning options
        (:data:`EXECUTION_OPTIONS`) are excluded for the same reason: they
        change how fast a cell computes, never what it computes, so e.g. a
        re-run with a different ``rep_chunk`` must hit the cached cell.
        """
        if self.is_sweep:
            raise ValueError("a sweep spec has no single cell identity; "
                             "expand it with cells() first")
        spec_dict = self.to_dict()
        # seed/reps sit in the runner-level key slots, not inside the params.
        spec_dict.pop("seed", None)
        spec_dict.pop("reps", None)
        spec_dict.pop("rel_tol", None)
        options = spec_dict.get("options")
        if options:
            for name in EXECUTION_OPTIONS:
                options.pop(name, None)
            if not options:
                del spec_dict["options"]
        return {"spec": spec_dict, "method": str(method)}

    def canonical_key(self, method: str = "auto") -> str:
        """The :class:`~repro.report.store.ResultStore` cell key of this spec.

        Resolves ``method="auto"`` first (so auto-selected and explicitly
        named evaluations of the same engine share one cache cell), then
        hashes the identical identity the store hashes when the facade runs
        with a store attached.
        """
        from repro.api.evaluators import get_evaluator, resolve_method
        resolved = resolve_method(self, method)
        reps = self.effective_reps() if get_evaluator(resolved).stochastic \
            else None
        return store_key(EVALUATE_SCENARIO_NAME, self.cell_params(resolved),
                         self.seed, reps)

    def __hash__(self) -> int:
        # Mapping fields (options/sweep) defeat the dataclass-generated
        # hash; use the canonical serialised form so equal specs hash equal
        # (e.g. for deduping sweep cells in a set).
        return hash(json.dumps(self.to_dict(), sort_keys=True))
