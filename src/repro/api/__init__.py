"""The unified evaluation facade — declarative specs, one ``evaluate()``.

The paper's central quantity — the distribution of the interval ``X``
between successive recovery lines, its moments and the per-process
recovery-point counts — can be computed three ways in this package: the
analytic phase-type chain (lumped, dense or sparse), the batched Monte-Carlo
:class:`~repro.markov.montecarlo.ModelSimulator`, and the discrete-event
kernel (:class:`~repro.sim.interval_sampler.DESIntervalSampler`).  This
subsystem puts a single, serializable front door on all three:

>>> import repro
>>> spec = repro.StudySpec(system=repro.SystemSpec.symmetric(5, 1.0, 0.5),
...                        metrics=("mean", "variance"), reps=4000, seed=7)
>>> repro.evaluate(spec, method="analytic").mean       # doctest: +SKIP
>>> repro.evaluate(spec, method="mc").mean             # doctest: +SKIP
>>> repro.evaluate(spec, method="des").mean            # doctest: +SKIP

Recovery *strategies* are first-class citizens of the same front door: a
``strategy`` :class:`~repro.api.SystemSpec` names a checkpointing scheme plus
a workload, and the ``strategy`` engine (:mod:`repro.api.strategy`) measures
makespan, slowdown, rollback behaviour and Section 3's ``sync_loss`` by
driving the :mod:`repro.recovery` runtimes — with the synchronized scheme's
closed forms served by ``analytic`` for cross-checking.

``method="auto"`` (the default) selects an engine from the system kind, the
state-space size and the requested metrics; sweep axes fan out through the
experiment runner with parallelism, store caching and resume for free; and
:meth:`StudySpec.canonical_key` *is* the result-store cell key, so specs can
predict their own cache address.  The CLI face is
``python -m repro eval spec.json``.
"""

from repro.api.evaluation import Evaluation
from repro.api.evaluators import (
    AnalyticEvaluator,
    DiscreteEventEvaluator,
    Evaluator,
    MonteCarloEvaluator,
    UnsupportedMetricError,
    get_evaluator,
    list_methods,
    register_evaluator,
    resolve_method,
)
from repro.api.facade import (
    CellResult,
    StudyResult,
    evaluate,
    evaluate_in_context,
    evaluate_record,
)
from repro.api.spec import (
    DEFAULT_EVAL_REPS,
    DEFAULT_STRATEGY_REPS,
    EVALUATE_SCENARIO_NAME,
    KNOWN_METRICS,
    RECOVERY_SCHEMES,
    STRATEGY_METRICS,
    StudySpec,
    SystemSpec,
)
from repro.api.strategy import StrategyEvaluator  # registers the engine

__all__ = [
    "AnalyticEvaluator",
    "CellResult",
    "DEFAULT_EVAL_REPS",
    "DEFAULT_STRATEGY_REPS",
    "DiscreteEventEvaluator",
    "EVALUATE_SCENARIO_NAME",
    "Evaluation",
    "Evaluator",
    "KNOWN_METRICS",
    "MonteCarloEvaluator",
    "RECOVERY_SCHEMES",
    "STRATEGY_METRICS",
    "StrategyEvaluator",
    "StudyResult",
    "StudySpec",
    "SystemSpec",
    "UnsupportedMetricError",
    "evaluate",
    "evaluate_in_context",
    "evaluate_record",
    "get_evaluator",
    "list_methods",
    "register_evaluator",
    "resolve_method",
]
