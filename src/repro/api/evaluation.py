"""The common result type every evaluation engine returns.

An :class:`Evaluation` is method-agnostic: the analytic chain, the batched
Monte-Carlo sampler and the discrete-event engine all produce the same shape —
scalar interval metrics, optional per-process vectors, optional distribution
grids, and (for the stochastic engines) sample counts and standard errors.

Evaluations round-trip exactly through
:class:`~repro.experiments.common.ExperimentResult`
(:meth:`Evaluation.to_experiment_result` /
:meth:`Evaluation.from_experiment_result`), which is what lets the facade run
through the :class:`~repro.runner.runner.ExperimentRunner` and the
:class:`~repro.report.store.ResultStore` unchanged: a stored facade run is an
ordinary stored experiment, and reloading it reconstructs the evaluation
bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.experiments.common import ExperimentResult

__all__ = ["Evaluation"]

#: ``ExperimentResult.name`` used by the row encoding below.
_RESULT_NAME = "api_evaluation"
_VALUE_COLUMN = "value"


@dataclass(frozen=True)
class Evaluation:
    """What :func:`repro.api.evaluate` returns for one study cell.

    Attributes
    ----------
    method:
        The engine that produced the numbers: ``"analytic"``, ``"mc"`` or
        ``"des"``.
    backend:
        Engine detail — the analytic chain route (``lumped``/``dense``/
        ``sparse``) or the sampler identity (``model-mc``, ``des-engine``).
    n_processes:
        Number of processes of the evaluated system.
    metrics:
        Scalar interval metrics (``mean``, ``variance``, ``std``; stochastic
        engines add ``stderr_mean``).
    rp_counts:
        Per-process expected recovery-point counts ``E[L_i]`` (when the
        ``rp_counts`` metric was requested).
    completion_probabilities:
        Per-process line-completion probabilities ``q_i`` (when requested).
    distributions:
        Distribution grids keyed ``times``/``pdf``/``cdf``/``sf`` (whichever
        were requested).
    n_samples:
        Intervals actually sampled (stochastic engines; ``None`` analytic).
    rel_tol:
        The spec's stated relative tolerance, restated here so downstream
        comparisons know what agreement the producer promised.
    """

    method: str
    backend: str
    n_processes: int
    metrics: Dict[str, float] = field(default_factory=dict)
    rp_counts: Optional[Tuple[float, ...]] = None
    completion_probabilities: Optional[Tuple[float, ...]] = None
    distributions: Dict[str, Tuple[float, ...]] = field(default_factory=dict)
    n_samples: Optional[int] = None
    rel_tol: float = 0.05

    def __post_init__(self) -> None:
        object.__setattr__(self, "metrics",
                           {str(k): float(v) for k, v in self.metrics.items()})
        if self.rp_counts is not None:
            object.__setattr__(self, "rp_counts",
                               tuple(float(v) for v in self.rp_counts))
        if self.completion_probabilities is not None:
            object.__setattr__(self, "completion_probabilities",
                               tuple(float(v)
                                     for v in self.completion_probabilities))
        object.__setattr__(self, "distributions",
                           {str(k): tuple(float(v) for v in vs)
                            for k, vs in self.distributions.items()})

    # ------------------------------------------------------------------ access
    def __hash__(self) -> int:
        # Dict fields defeat the dataclass-generated hash; hash the
        # serialised form so equal evaluations hash equal.
        return hash(json.dumps(self.to_dict(), sort_keys=True))

    @property
    def mean(self) -> float:
        """``E[X]`` — every engine reports it, whatever metrics were asked."""
        return self.metrics["mean"]

    @property
    def stderr(self) -> Optional[float]:
        """Standard error of the mean (stochastic engines only)."""
        return self.metrics.get("stderr_mean")

    def agrees_with(self, other: "Evaluation",
                    rel_tol: Optional[float] = None) -> bool:
        """Whether the two means agree within the stated relative tolerance."""
        tol = max(self.rel_tol, other.rel_tol) if rel_tol is None else rel_tol
        scale = max(abs(self.mean), abs(other.mean), 1e-300)
        return abs(self.mean - other.mean) / scale <= tol

    # ------------------------------------------------------------------ dict form
    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "method": self.method,
            "backend": self.backend,
            "n_processes": self.n_processes,
            "metrics": dict(self.metrics),
            "rel_tol": self.rel_tol,
        }
        if self.rp_counts is not None:
            payload["rp_counts"] = list(self.rp_counts)
        if self.completion_probabilities is not None:
            payload["completion_probabilities"] = \
                list(self.completion_probabilities)
        if self.distributions:
            payload["distributions"] = {k: list(v)
                                        for k, v in self.distributions.items()}
        if self.n_samples is not None:
            payload["n_samples"] = self.n_samples
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Evaluation":
        return cls(
            method=str(payload["method"]),
            backend=str(payload["backend"]),
            n_processes=int(payload["n_processes"]),
            metrics=dict(payload.get("metrics", {})),
            rp_counts=(tuple(payload["rp_counts"])
                       if "rp_counts" in payload else None),
            completion_probabilities=(
                tuple(payload["completion_probabilities"])
                if "completion_probabilities" in payload else None),
            distributions={k: tuple(v) for k, v in
                           payload.get("distributions", {}).items()},
            n_samples=(int(payload["n_samples"])
                       if payload.get("n_samples") is not None else None),
            rel_tol=float(payload.get("rel_tol", 0.05)),
        )

    # ------------------------------------------------------------------ store form
    def to_experiment_result(self) -> ExperimentResult:
        """Encode as an :class:`ExperimentResult` (one labelled row per value).

        Scalars become rows labelled by their metric name; vector entries
        become ``rp_counts[i]`` / ``q[i]`` rows; distribution grids become
        ``pdf@<t>``-style rows.  The non-numeric envelope (method, backend,
        sample count, tolerance) rides in ``notes`` as compact JSON — every
        float lands in a row value, so the store round trip is exact.
        """
        result = ExperimentResult(
            name=_RESULT_NAME,
            paper_reference="repro.api facade evaluation",
            columns=[_VALUE_COLUMN],
            notes=json.dumps({
                "method": self.method,
                "backend": self.backend,
                "n_processes": self.n_processes,
                "n_samples": self.n_samples,
                "rel_tol": self.rel_tol,
            }, sort_keys=True),
        )
        for name, value in self.metrics.items():
            result.add_row(name, value=value)
        if self.rp_counts is not None:
            for i, value in enumerate(self.rp_counts):
                result.add_row(f"rp_counts[{i}]", value=value)
        if self.completion_probabilities is not None:
            for i, value in enumerate(self.completion_probabilities):
                result.add_row(f"q[{i}]", value=value)
        for key, values in self.distributions.items():
            if key == "times":
                for i, t in enumerate(values):
                    result.add_row(f"times[{i}]", value=t)
                continue
            for i, value in enumerate(values):
                result.add_row(f"{key}[{i}]", value=value)
        return result

    @classmethod
    def from_experiment_result(cls, result: ExperimentResult) -> "Evaluation":
        """Rebuild an evaluation from its row encoding (exact inverse)."""
        if result.name != _RESULT_NAME:
            raise ValueError(f"not an api evaluation result: {result.name!r}")
        envelope = json.loads(result.notes)
        metrics: Dict[str, float] = {}
        vectors: Dict[str, Dict[int, float]] = {}
        for row in result.rows:
            value = row.get(_VALUE_COLUMN)
            label = row.label
            if "[" in label and label.endswith("]"):
                key, _, index = label[:-1].partition("[")
                vectors.setdefault(key, {})[int(index)] = value
            else:
                metrics[label] = value

        def vector(key: str) -> Optional[Tuple[float, ...]]:
            entries = vectors.get(key)
            if entries is None:
                return None
            return tuple(entries[i] for i in range(len(entries)))

        distributions = {key: vector(key)
                         for key in ("times", "pdf", "cdf", "sf")
                         if vector(key) is not None}
        return cls(
            method=str(envelope["method"]),
            backend=str(envelope["backend"]),
            n_processes=int(envelope["n_processes"]),
            metrics=metrics,
            rp_counts=vector("rp_counts"),
            completion_probabilities=vector("q"),
            distributions=distributions,
            n_samples=(int(envelope["n_samples"])
                       if envelope.get("n_samples") is not None else None),
            rel_tol=float(envelope.get("rel_tol", 0.05)),
        )
