"""The evaluation engines behind :func:`repro.api.evaluate`.

Three registered :class:`Evaluator` implementations compute the same
:class:`~repro.api.evaluation.Evaluation` for interval-quantity systems (a
fourth — the ``strategy`` engine measuring whole recovery-scheme runs —
lives in :mod:`repro.api.strategy`):

``analytic``
    :class:`~repro.markov.recovery_line_interval.RecoveryLineIntervalModel` —
    exact phase-type moments, densities and counts (lumped, dense or sparse
    chain, resolved automatically).
``mc``
    :class:`~repro.markov.montecarlo.ModelSimulator` — the paper's own
    methodology: batched direct sampling of the competing Poisson processes.
``des``
    :class:`~repro.sim.interval_sampler.DESIntervalSampler` — the same
    observable measured on the discrete-event kernel with named random
    streams; an independent stochastic cross-check of ``mc``.

The stochastic engines split their budget into the runner's fixed-size
shards, each with a driver-spawned seed (:meth:`Evaluator.tasks`), so
evaluations are bit-identical across serial and process-pool backends — and
:func:`repro.api.facade.evaluate_in_context` can flatten the shards of many
cells into one backend fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.evaluation import Evaluation
from repro.api.spec import StudySpec, SystemSpec
from repro.bench import phase as _phase
from repro.markov.montecarlo import (ModelSimulator, SimulatedIntervals,
                                     concatenate_intervals)
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.runner import ExecutionContext, seed_to_int

__all__ = [
    "AUTO_FULL_CHAIN_MAX_N",
    "AnalyticEvaluator",
    "DiscreteEventEvaluator",
    "Evaluator",
    "MonteCarloEvaluator",
    "UnsupportedMetricError",
    "get_evaluator",
    "list_methods",
    "register_evaluator",
    "resolve_method",
]


class UnsupportedMetricError(ValueError):
    """A requested metric is outside the chosen engine's capabilities."""


#: Largest process count for which the full ``2^n``-state chain is considered
#: auto-selectable (the sparse backend stays comfortably tractable here; see
#: docs/ANALYTIC.md).  Beyond it, symmetric systems still run analytically
#: through the lumped chain when the metrics allow, everything else falls
#: back to Monte-Carlo.
AUTO_FULL_CHAIN_MAX_N = 14

#: Metrics the stochastic samplers cannot estimate (no density estimation —
#: the empirical cdf/sf are fine, a kernel-free pdf is not).
_STOCHASTIC_UNSUPPORTED = frozenset({"pdf"})

#: Metrics the lumped symmetric chain can serve without building the full
#: chain (the count metrics need full-chain occupancy).
_LUMPED_METRICS = frozenset({"mean", "variance", "std", "pdf", "cdf", "sf"})

#: Metrics the phase-type *approximation* of a non-exponential failure law
#: cannot serve: the per-process count/completion quantities come from the
#: split-chain occupancy analysis, which is specific to the exponential
#: ``2^n`` chain.  The stochastic engines estimate them exactly.
_PH_APPROX_UNSERVABLE = frozenset({"rp_counts", "completion_probabilities"})


@dataclass(frozen=True)
class SampleTask:
    """One picklable stochastic work item: a shard of a cell's budget."""

    system: Dict[str, object]
    n_intervals: int
    seed: np.random.SeedSequence
    max_events: int
    engine: str


def sample_shard(task: SampleTask) -> SimulatedIntervals:
    """Worker entry point shared by the ``mc`` and ``des`` engines."""
    system = SystemSpec.from_dict(task.system)
    params = system.build()
    law = system.failure_law
    if task.engine == "mc":
        if law != "exponential":
            from repro.markov.montecarlo import RenewalModelSimulator
            sampler = RenewalModelSimulator(params, seed=task.seed,
                                            failure_law=law,
                                            failure_shape=system.failure_shape)
            return sampler.sample_intervals(
                task.n_intervals, max_events_per_interval=task.max_events)
        return ModelSimulator(params, seed=task.seed).sample_intervals(
            task.n_intervals, max_events_per_interval=task.max_events)
    from repro.sim.interval_sampler import DESIntervalSampler
    sampler = DESIntervalSampler(params, seed=seed_to_int(task.seed),
                                 max_events_per_interval=task.max_events,
                                 failure_law=law,
                                 failure_shape=system.failure_shape)
    return sampler.sample_intervals(task.n_intervals)


class Evaluator:
    """Protocol-with-defaults every evaluation engine implements.

    Deterministic engines override :meth:`evaluate` directly; stochastic
    engines implement the :meth:`tasks` / :meth:`assemble` pair (and point
    :attr:`worker` at their picklable task function) so the facade can fan
    the work items of many cells through one backend ``map`` while
    :meth:`evaluate` remains the single-cell convenience composition.
    """

    #: Registry key and the ``method=`` name users write.
    name: str = "abstract"

    #: Whether results depend on the seed/budget (drives the store identity:
    #: stochastic cells key on their replication budget, exact ones do not).
    stochastic: bool = False

    #: Module-level function the backend maps over :meth:`tasks` output.
    worker = staticmethod(sample_shard)

    def validate(self, spec: StudySpec) -> None:
        """Reject *spec* early when this engine cannot serve it (no-op here)."""

    def tasks(self, spec: StudySpec, ctx: ExecutionContext) -> List[object]:
        """Picklable work items for *spec* (empty for deterministic engines)."""
        return []

    def cell_tasks(self, specs: Sequence[StudySpec], ctx: ExecutionContext
                   ) -> Tuple[List[object], List[int]]:
        """Work items for many cells sharing one context, plus slice bounds.

        The default simply concatenates :meth:`tasks` per cell — each cell
        spawns its own seeds, continuing the context's spawn counter.
        Engines with a cross-cell seed policy (the strategy engine's common
        random numbers) override this.
        """
        tasks: List[object] = []
        bounds = [0]
        for spec in specs:
            tasks.extend(self.tasks(spec, ctx))
            bounds.append(len(tasks))
        return tasks, bounds

    def assemble(self, spec: StudySpec,
                 outputs: Sequence[object]) -> Evaluation:
        """Combine the mapped task outputs into the evaluation."""
        raise NotImplementedError

    def evaluate(self, spec: StudySpec,
                 ctx: Optional[ExecutionContext] = None) -> Evaluation:
        """Evaluate one cell (tasks through the context's backend).

        Without a context one is built from the spec's own seed/reps, so
        direct engine use honours the declared seed policy exactly like the
        facade path does.
        """
        if ctx is None:
            ctx = ExecutionContext(seed=spec.seed, reps=spec.reps)
        # The phase markers feed `python -m repro eval --timing`; they are
        # no-ops (a shared null context) unless a collector is active.
        with _phase("assembly"):
            tasks = self.tasks(spec, ctx)
        with _phase("sim"):
            outputs = ctx.map(self.worker, tasks)
        with _phase("reduce"):
            return self.assemble(spec, outputs)


class AnalyticEvaluator(Evaluator):
    """Exact evaluation: phase-type interval model, or — for ``strategy``
    systems — the Section 3 closed forms of the synchronized scheme."""

    name = "analytic"

    def validate(self, spec: StudySpec) -> None:
        if spec.system.kind == "strategy":
            # Raises UnsupportedMetricError unless the scheme/metrics have
            # closed forms; evaluating would raise the same error later, but
            # resolve-time is where a bad explicit method should fail.
            from repro.api.strategy import analytic_strategy_checks
            analytic_strategy_checks(spec)
            return
        if spec.system.failure_law != "exponential":
            unservable = sorted(_PH_APPROX_UNSERVABLE & set(spec.metrics))
            if unservable:
                raise UnsupportedMetricError(
                    f"the analytic engine serves failure_law="
                    f"{spec.system.failure_law!r} through a phase-type "
                    f"approximation that cannot compute {unservable}; "
                    "estimate them with method='mc' or 'des'")

    def assemble(self, spec: StudySpec,
                 outputs: Sequence[object]) -> Evaluation:
        return self.evaluate(spec)

    def evaluate(self, spec: StudySpec,
                 ctx: Optional[ExecutionContext] = None) -> Evaluation:
        if spec.system.kind == "strategy":
            from repro.api.strategy import analytic_strategy_evaluation
            with _phase("solve"):
                return analytic_strategy_evaluation(spec)
        options = dict(spec.options)
        if spec.system.failure_law != "exponential":
            self.validate(spec)
            from repro.markov.phfit import renewal_phase_type
            ph_order = options.get("ph_order")
            with _phase("assembly"):
                chain = renewal_phase_type(
                    spec.system.build(), spec.system.failure_law,
                    spec.system.failure_shape,
                    order=None if ph_order is None else int(ph_order),
                    backend=str(options.get("backend", "auto")))
            with _phase("solve"):
                return self._solve_renewal(spec, chain)
        with _phase("assembly"):
            model = RecoveryLineIntervalModel(
                spec.system.build(),
                prefer_simplified=bool(options.get("prefer_simplified", True)),
                backend=str(options.get("backend", "auto")),
                structure_cache=bool(options.get("structure_cache", True)))
        with _phase("solve"):
            return self._solve(spec, model)

    def _solve_renewal(self, spec: StudySpec, chain) -> Evaluation:
        """Serve the metrics from the expanded phase-type chain.

        The result is exact for the *fitted* law; against the declared
        Weibull/lognormal law it is an approximation whose error is the
        phase-type fit error (the ``ph-approx-<order>`` backend label and
        the conformance suite's documented tolerances make this explicit).
        """
        ph = chain.phase_type
        metrics: Dict[str, float] = {"mean": ph.mean()}
        if spec.wants("variance"):
            metrics["variance"] = ph.variance()
        if spec.wants("std"):
            metrics["std"] = ph.std()
        bad = {name: value for name, value in metrics.items()
               if not np.isfinite(value) or value <= 0.0}
        if bad:
            raise ArithmeticError(
                f"phase-type approximation lost precision for "
                f"{spec.system.to_dict()}: {bad}")
        distributions: Dict[str, Tuple[float, ...]] = {}
        if spec.times and any(spec.wants(m) for m in ("pdf", "cdf", "sf")):
            grid = np.asarray(spec.times, dtype=float)
            distributions["times"] = tuple(spec.times)
            if spec.wants("pdf"):
                distributions["pdf"] = tuple(np.atleast_1d(ph.pdf(grid)))
            if spec.wants("cdf"):
                distributions["cdf"] = tuple(np.atleast_1d(ph.cdf(grid)))
            if spec.wants("sf"):
                distributions["sf"] = tuple(np.atleast_1d(ph.sf(grid)))
        return Evaluation(method=self.name,
                          backend=f"ph-approx-{chain.fit.order}",
                          n_processes=spec.system.n, metrics=metrics,
                          distributions=distributions, rel_tol=spec.rel_tol)

    def _solve(self, spec: StudySpec,
               model: RecoveryLineIntervalModel) -> Evaluation:
        # E[X] is always computed (cheap next to the factorisation, which is
        # cached on the model): Evaluation.mean and agrees_with() rely on it
        # regardless of the requested metric set.
        metrics: Dict[str, float] = {"mean": model.mean_interval()}
        if spec.wants("variance"):
            metrics["variance"] = model.interval_variance()
        if spec.wants("std"):
            metrics["std"] = model.interval_std()
        # E[X] and the dispersion metrics are strictly positive for every
        # valid parameterisation; a non-finite or non-positive value means
        # the fundamental-matrix solve lost all precision (E[X] beyond
        # ~1e15 at extreme communication densities overflows float64), and
        # garbage must not masquerade as an exact result.
        bad = {name: value for name, value in metrics.items()
               if not np.isfinite(value) or value <= 0.0}
        if bad:
            raise ArithmeticError(
                f"analytic solve lost precision for {spec.system.to_dict()}: "
                f"{bad}; the interval metrics are positive by construction, "
                "so this parameterisation is outside float64 range — reduce "
                "the communication density or use a stochastic engine")
        rp_counts = None
        if spec.wants("rp_counts"):
            rp_counts = tuple(float(v) for v in
                              model.expected_rp_counts(counting=spec.counting))
        completion = None
        if spec.wants("completion_probabilities"):
            completion = tuple(float(v)
                               for v in model.completion_probabilities())
        distributions: Dict[str, Tuple[float, ...]] = {}
        if spec.times and any(spec.wants(m) for m in ("pdf", "cdf", "sf")):
            grid = np.asarray(spec.times, dtype=float)
            distributions["times"] = tuple(spec.times)
            if spec.wants("pdf"):
                distributions["pdf"] = tuple(np.atleast_1d(model.pdf(grid)))
            if spec.wants("cdf"):
                distributions["cdf"] = tuple(np.atleast_1d(model.cdf(grid)))
            if spec.wants("sf"):
                distributions["sf"] = tuple(np.atleast_1d(model.survival(grid)))
        return Evaluation(method=self.name, backend=model.analytic_backend,
                          n_processes=model.params.n, metrics=metrics,
                          rp_counts=rp_counts,
                          completion_probabilities=completion,
                          distributions=distributions, rel_tol=spec.rel_tol)


class _StochasticEvaluator(Evaluator):
    """Shared shard/assemble machinery of the ``mc`` and ``des`` engines."""

    stochastic = True

    #: ``Evaluation.backend`` label; subclasses override.
    backend_label = "stochastic"

    def _check_metrics(self, spec: StudySpec) -> None:
        if spec.system.kind == "strategy":
            raise UnsupportedMetricError(
                f"the {self.name!r} engine samples interval quantities, not "
                "recovery-scheme runs; evaluate 'strategy' systems with "
                "method='strategy' (measured) or 'analytic' (closed forms)")
        unsupported = sorted(_STOCHASTIC_UNSUPPORTED & set(spec.metrics))
        if unsupported:
            raise UnsupportedMetricError(
                f"the {self.name!r} engine cannot estimate {unsupported}; "
                "use method='analytic' for densities")

    validate = _check_metrics

    def tasks(self, spec: StudySpec, ctx: ExecutionContext) -> List[SampleTask]:
        """Fixed-size shards with driver-spawned seeds, in spawn order.

        The shard layout depends only on the budget (never on the backend or
        worker count) and the seeds are spawned here, in the driver — the
        same determinism contract as :mod:`repro.experiments.sampling`.
        """
        self._check_metrics(spec)
        reps = ctx.reps_or(spec.effective_reps())
        sizes = ctx.shards_for(reps)
        seeds = ctx.spawn_seeds(len(sizes))
        system = spec.system.to_dict()
        max_events = int(spec.options.get("max_events_per_interval",
                                          10_000_000))
        return [SampleTask(system=system, n_intervals=size, seed=seed,
                           max_events=max_events, engine=self.name)
                for size, seed in zip(sizes, seeds)]

    def assemble(self, spec: StudySpec,
                 outputs: Sequence[SimulatedIntervals]) -> Evaluation:
        sample = concatenate_intervals(list(outputs))
        lengths = sample.lengths
        # The mean is always reported (Evaluation.mean / agrees_with depend
        # on it), as is its standard error.
        metrics: Dict[str, float] = {"mean": sample.mean_interval()}
        if spec.wants("variance"):
            metrics["variance"] = float(lengths.var(ddof=1)) \
                if sample.n_samples > 1 else 0.0
        if spec.wants("std"):
            metrics["std"] = float(lengths.std(ddof=1)) \
                if sample.n_samples > 1 else 0.0
        metrics["stderr_mean"] = sample.interval_stderr()
        rp_counts = None
        if spec.wants("rp_counts"):
            rp_counts = tuple(float(v)
                              for v in sample.mean_rp_counts(spec.counting))
        completion = None
        if spec.wants("completion_probabilities"):
            completion = tuple(float(v)
                               for v in sample.completion_frequencies())
        distributions: Dict[str, Tuple[float, ...]] = {}
        if spec.times and any(spec.wants(m) for m in ("cdf", "sf")):
            grid = np.asarray(spec.times, dtype=float)
            sorted_lengths = np.sort(lengths)
            ecdf = np.searchsorted(sorted_lengths, grid,
                                   side="right") / sample.n_samples
            distributions["times"] = tuple(spec.times)
            if spec.wants("cdf"):
                distributions["cdf"] = tuple(ecdf)
            if spec.wants("sf"):
                distributions["sf"] = tuple(1.0 - ecdf)
        return Evaluation(method=self.name, backend=self.backend_label,
                          n_processes=sample.n_processes, metrics=metrics,
                          rp_counts=rp_counts,
                          completion_probabilities=completion,
                          distributions=distributions,
                          n_samples=sample.n_samples, rel_tol=spec.rel_tol)


class MonteCarloEvaluator(_StochasticEvaluator):
    """Batched model-level Monte-Carlo (:class:`ModelSimulator`)."""

    name = "mc"
    backend_label = "model-mc"


class DiscreteEventEvaluator(_StochasticEvaluator):
    """Discrete-event measurement (:class:`DESIntervalSampler`)."""

    name = "des"
    backend_label = "des-engine"


_EVALUATORS: Dict[str, Evaluator] = {}


def register_evaluator(evaluator: Evaluator) -> Evaluator:
    """Register an engine under ``evaluator.name`` (an extension point)."""
    _EVALUATORS[evaluator.name] = evaluator
    return evaluator


register_evaluator(AnalyticEvaluator())
register_evaluator(MonteCarloEvaluator())
register_evaluator(DiscreteEventEvaluator())


def list_methods() -> List[str]:
    """The registered engine names, sorted (plus the ``auto`` selector)."""
    return sorted(_EVALUATORS)


def get_evaluator(method: str) -> Evaluator:
    """Look up a registered engine; unknown names list the alternatives."""
    try:
        return _EVALUATORS[method]
    except KeyError:
        known = ", ".join(sorted(_EVALUATORS))
        raise KeyError(f"unknown evaluation method {method!r}; known methods: "
                       f"auto, {known}") from None


def _system_is_symmetric(system: SystemSpec) -> bool:
    if system.kind == "symmetric":
        return True
    if system.kind == "heterogeneous":
        return float(system.args["mu_gradient"]) == 1.0 \
            and float(system.args["locality"]) == 0.0
    return system.build().is_symmetric()


def resolve_method(spec: StudySpec, method: str = "auto") -> str:
    """Resolve ``auto`` to a concrete engine and validate explicit choices.

    The auto rule (documented in docs/ARCHITECTURE.md):

    0. ``strategy`` systems — **analytic** when every requested metric has a
       Section 3 closed form (synchronized scheme only), otherwise the
       measuring **strategy** engine.
    1. ``n <= AUTO_FULL_CHAIN_MAX_N`` — the full chain is tractable, every
       metric is exact: **analytic**.
    2. larger but symmetric, and only lumped-servable metrics requested
       (moments/distributions, no per-process counts): **analytic** via the
       lumped ``n + 2``-state chain.
    3. otherwise **mc** — unless a density was requested, which no sampler
       can estimate; that is an error asking for an explicit method.

    A non-exponential ``failure_law`` short-circuits to **mc**: the analytic
    engine is then a phase-type *approximation*, which auto-selection must
    never silently substitute for an exact result — it is opt-in via
    ``method='analytic'`` (a requested density, which only the approximation
    can serve, is an error asking for that explicit opt-in).
    """
    if method in (None, "auto"):
        if spec.system.kind == "strategy":
            from repro.api.strategy import ANALYTIC_STRATEGY_METRICS
            if spec.system.scheme == "synchronized" \
                    and set(spec.metrics) <= ANALYTIC_STRATEGY_METRICS:
                return "analytic"
            return "strategy"
        if spec.system.failure_law != "exponential":
            unsupported = sorted(_STOCHASTIC_UNSUPPORTED & set(spec.metrics))
            if unsupported:
                raise UnsupportedMetricError(
                    f"metrics {unsupported} need the analytic engine, which "
                    f"under failure_law={spec.system.failure_law!r} is a "
                    "phase-type approximation; pass method='analytic' "
                    "explicitly to accept the approximation")
            return "mc"
        n = spec.system.n
        if n <= AUTO_FULL_CHAIN_MAX_N:
            return "analytic"
        # The lumped shortcut only applies when the evaluator is actually
        # allowed to take it: options forcing the full chain would make
        # "analytic" build 2^n states here, which is exactly what the size
        # cut-off above exists to prevent.
        if _system_is_symmetric(spec.system) \
                and set(spec.metrics) <= _LUMPED_METRICS \
                and bool(spec.options.get("prefer_simplified", True)):
            return "analytic"
        unsupported = sorted(_STOCHASTIC_UNSUPPORTED & set(spec.metrics))
        if unsupported:
            raise UnsupportedMetricError(
                f"metrics {unsupported} need the analytic engine, but the "
                f"state space of n={n} is beyond the auto-selection limit "
                f"({AUTO_FULL_CHAIN_MAX_N}); pass method='analytic' "
                "explicitly to force it")
        return "mc"
    name = str(method)
    evaluator = get_evaluator(name)
    evaluator.validate(spec)
    return name
