"""The ``strategy`` evaluation engine: recovery schemes as study cells.

The paper's conclusion is a *trade-off* argument between synchronized,
asynchronous and pseudo-recovery-point checkpointing.  This module makes that
argument a first-class citizen of the declarative facade: a ``strategy``
:class:`~repro.api.spec.SystemSpec` names a scheme plus a workload, and the
:class:`StrategyEvaluator` drives the corresponding :mod:`repro.recovery`
runtime over the replication budget, averaging the
:class:`~repro.recovery.report.RunReport` quantities into the same
:class:`~repro.api.evaluation.Evaluation` shape every other engine returns.

Determinism follows the runner's contract — seeds spawned in the driver,
results reduced in task order — with one strategy-specific refinement: when
several strategy cells are evaluated *in one context*
(:func:`repro.api.facade.evaluate_in_context`), all cells share one
replication seed block (common random numbers), so replication ``r`` uses the
same fault/interaction timeline under every scheme and the seed noise cancels
out of the scheme-vs-scheme deltas.  This is exactly the pre-facade
``strategy_comparison`` task/seed layout, which keeps its results
bit-identical across the migration.

Replications are shipped to workers in *chunks*: one :class:`StrategyTask`
carries a contiguous slice of the per-cell seed block, so a chunk pays for a
single payload pickle and a single ``SystemSpec.from_dict`` parse instead of
one per replication.  The chunk layout is a pure function of the budget and
the ``rep_chunk`` option — never of the backend or the worker count — and the
per-replication seeds and reduction order are exactly those of the historical
one-task-per-replication layout, so results are float-for-float identical for
every chunk size (pinned by tests/api/test_strategy_chunking.py).

The ``synchronized`` scheme additionally has a closed-form face: Section 3's
``CL`` (``sync_loss``) and ``E[Z]`` (``expected_wait``), served by the
``analytic`` engine through :func:`analytic_strategy_evaluation` so the
measured and exact values are directly comparable — the cross-engine
conformance suite's anchor for the new system kind.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.api.evaluation import Evaluation
from repro.api.evaluators import (Evaluator, UnsupportedMetricError,
                                  register_evaluator)
from repro.api.spec import StudySpec, SystemSpec
from repro.recovery.report import RunReport
from repro.runner import ExecutionContext, seed_to_int

__all__ = [
    "ANALYTIC_STRATEGY_METRICS",
    "DEFAULT_REP_CHUNK",
    "StrategyEvaluator",
    "StrategyTask",
    "analytic_strategy_checks",
    "analytic_strategy_evaluation",
    "run_strategy_task",
]

#: Metrics the runtimes cannot *measure* (they are closed-form quantities of
#: the synchronized scheme; ask the ``analytic`` engine).
_MEASURED_UNSUPPORTED = frozenset({"expected_wait"})

#: The analytic engine's strategy vocabulary (Section 3 closed forms).
ANALYTIC_STRATEGY_METRICS = frozenset({"sync_loss", "expected_wait"})

#: Per-run report getters, named exactly like the strategy metrics.  Averaging
#: these over the replications reproduces the pre-facade ``_summarize`` of the
#: strategy-comparison experiment float for float.
_REPORT_GETTERS = {
    "makespan": lambda r: r.makespan,
    "slowdown": lambda r: r.slowdown,
    "rollbacks": lambda r: float(r.rollback_count),
    "mean_rollback_distance": lambda r: r.mean_rollback_distance,
    "max_rollback_distance": lambda r: r.max_rollback_distance,
    "lost_work": lambda r: r.lost_work_total,
    "checkpoint_overhead": lambda r: r.checkpoint_overhead_total,
    "restart_overhead": lambda r: r.restart_overhead_total,
    "waiting_time": lambda r: r.waiting_time_total,
    "recovery_lines": lambda r: float(r.recovery_lines_committed),
    "dominoes": lambda r: float(r.domino_count),
    "peak_saved_states": lambda r: r.peak_saved_states,
    "total_saves": lambda r: r.total_saves,
    "completed": lambda r: 1.0 if r.completed else 0.0,
    "sync_loss": lambda r: r.extra.get("mean_sync_loss", 0.0),
}

#: Metrics reported as sums over the budget rather than means (no stderr).
_SUM_METRICS = frozenset({"recovery_lines_total"})


#: Default number of replications bundled into one :class:`StrategyTask`.
#: Large enough to amortise the per-task parse/pickle cost over the default
#: budgets, small enough that a multi-cell sweep still spreads over a pool.
DEFAULT_REP_CHUNK = 8


@dataclass(frozen=True)
class StrategyTask:
    """One picklable work item: a chunk of recovery-scheme replications.

    ``seeds`` is a contiguous slice of the driver-spawned per-cell seed
    block; the worker parses ``system`` once and runs one replication per
    seed, in slice order.  All chunks of one cell share the *same* system
    dict object, so a cell's sweep payload pickles the spec once per chunk
    rather than once per replication.
    """

    system: Dict[str, object]     # SystemSpec.to_dict() of a strategy system
    seeds: Tuple[int, ...]


def run_strategy_task(task: StrategyTask) -> List[RunReport]:
    """Worker entry point: run one chunk of replications, in seed order.

    The workload is materialised once per chunk and shared across the
    replications — runtimes treat :class:`~repro.workloads.spec.WorkloadSpec`
    as read-only, so a shared instance cannot couple the runs (the
    chunked-vs-unchunked equality tests would catch any leakage).
    """
    from repro.recovery import make_runtime
    system = SystemSpec.from_dict(task.system)
    workload = system.build_workload()
    sync_interval = float(system.args["sync_interval"])
    reports = []
    for seed in task.seeds:
        runtime = make_runtime(system.scheme, workload, seed=seed,
                               sync_interval=sync_interval)
        # Sweeps consume only the run report; recording the flat event log
        # (one buffered tuple per simulation event) would be pure overhead.
        # The history diagram the rollback machinery needs stays live.
        runtime.tracer.disable_log()
        reports.append(runtime.run())
    return reports


class StrategyEvaluator(Evaluator):
    """Measure a recovery scheme by running its runtime over the budget."""

    name = "strategy"
    stochastic = True
    worker = staticmethod(run_strategy_task)

    # ------------------------------------------------------------------ checks
    def validate(self, spec: StudySpec) -> None:
        if spec.system.kind != "strategy":
            raise UnsupportedMetricError(
                f"the 'strategy' engine evaluates 'strategy' systems only, "
                f"got system kind {spec.system.kind!r}; interval quantities "
                "are served by analytic/mc/des")
        unsupported = sorted(_MEASURED_UNSUPPORTED & set(spec.metrics))
        if unsupported:
            raise UnsupportedMetricError(
                f"the 'strategy' engine cannot measure {unsupported} (they "
                "are Section 3 closed forms, served by method='analytic' for "
                "the synchronized scheme); no single engine serves a mix of "
                "measured and closed-form-only metrics — split them into two "
                "specs on the same system")

    # ------------------------------------------------------------------ tasks
    @staticmethod
    def _chunk_size(spec: StudySpec) -> int:
        chunk = int(spec.options.get("rep_chunk", DEFAULT_REP_CHUNK))
        if chunk < 1:
            raise ValueError(f"rep_chunk must be >= 1, got {chunk}")
        return chunk

    def _tasks_with_seeds(self, spec: StudySpec,
                          seeds: Sequence[int]) -> List[StrategyTask]:
        """Chunked tasks over *seeds*; one shared system dict per cell."""
        system = spec.system.to_dict()
        chunk = self._chunk_size(spec)
        return [StrategyTask(system=system,
                             seeds=tuple(seeds[lo:lo + chunk]))
                for lo in range(0, len(seeds), chunk)]

    def tasks(self, spec: StudySpec, ctx: ExecutionContext) -> List[StrategyTask]:
        """Chunked replication tasks, seeds spawned in the driver."""
        self.validate(spec)
        reps = ctx.reps_or(spec.effective_reps())
        seeds = [seed_to_int(seq) for seq in ctx.spawn_seeds(reps)]
        return self._tasks_with_seeds(spec, seeds)

    def cell_tasks(self, specs: Sequence[StudySpec], ctx: ExecutionContext
                   ) -> Tuple[List[StrategyTask], List[int]]:
        """Common random numbers across cells sharing one context.

        One seed block — as long as the largest cell budget — is spawned up
        front and sliced per cell, so replication ``r`` of every scheme runs
        on the same fault/interaction timeline.  (A cell evaluated on its own
        spawns the identical block from its own root seed, so single-cell and
        many-cell layouts agree wherever they overlap.)  Chunks never span
        cells: each cell's seed slice is chunked on its own, so the returned
        ``bounds`` delimit whole cells at chunk granularity.
        """
        for spec in specs:
            self.validate(spec)
        if not specs:
            return [], [0]
        budgets = [ctx.reps_or(spec.effective_reps()) for spec in specs]
        seeds = [seed_to_int(seq) for seq in ctx.spawn_seeds(max(budgets))]
        tasks: List[StrategyTask] = []
        bounds = [0]
        for spec, reps in zip(specs, budgets):
            tasks.extend(self._tasks_with_seeds(spec, seeds[:reps]))
            bounds.append(len(tasks))
        return tasks, bounds

    # ------------------------------------------------------------------ reduce
    def assemble(self, spec: StudySpec,
                 outputs: Sequence[Sequence[RunReport]]) -> Evaluation:
        # Each output is one chunk's report list; flattening in task order
        # restores the exact per-replication order of the unchunked layout.
        reports = [report for chunk in outputs for report in chunk]
        metrics: Dict[str, float] = {}
        for name in spec.metrics:
            if name in _SUM_METRICS:
                # recovery_lines_total: the integer total across the budget
                # (python sum, so it matches the pre-facade accumulation).
                metrics[name] = float(sum(r.recovery_lines_committed
                                          for r in reports))
                continue
            values = [_REPORT_GETTERS[name](r) for r in reports]
            metrics[name] = float(np.mean(values))
            if len(values) > 1:
                metrics[f"stderr_{name}"] = float(
                    np.std(values, ddof=1) / math.sqrt(len(values)))
        return Evaluation(method=self.name, backend="recovery-runtime",
                          n_processes=spec.system.n, metrics=metrics,
                          n_samples=len(reports), rel_tol=spec.rel_tol)


def analytic_strategy_checks(spec: StudySpec) -> None:
    """Reject strategy specs outside the analytic engine's closed forms."""
    if spec.system.scheme != "synchronized":
        raise UnsupportedMetricError(
            f"the analytic engine has closed forms for the 'synchronized' "
            f"scheme only, got {spec.system.scheme!r}; measure other schemes "
            "with method='strategy'")
    unsupported = sorted(set(spec.metrics) - ANALYTIC_STRATEGY_METRICS)
    if unsupported:
        raise UnsupportedMetricError(
            f"the analytic engine cannot compute {unsupported} for a "
            f"strategy system; only {sorted(ANALYTIC_STRATEGY_METRICS)} have "
            "closed forms.  Measure the rest with method='strategy' — and if "
            "one spec mixes both families, split it into a measured spec and "
            "a closed-form spec on the same system")


def analytic_strategy_evaluation(spec: StudySpec) -> Evaluation:
    """Section 3 closed forms for a ``strategy`` spec (synchronized scheme).

    ``sync_loss`` is ``CL = n·E[Z] − Σ 1/μ_i`` and ``expected_wait`` is
    ``E[Z]``, both from :class:`~repro.analysis.synchronized_loss.
    SynchronizedLossModel` on the workload's (possibly spread) rates.
    """
    analytic_strategy_checks(spec)
    system = spec.system
    from repro.analysis.synchronized_loss import SynchronizedLossModel
    from repro.workloads.generators import spread_rates
    rates = spread_rates(int(system.args["n"]), float(system.args["mu"]),
                         float(system.args["mu_spread"]))
    model = SynchronizedLossModel(rates)
    metrics: Dict[str, float] = {}
    if spec.wants("sync_loss"):
        metrics["sync_loss"] = model.expected_loss()
    if spec.wants("expected_wait"):
        metrics["expected_wait"] = model.expected_wait()
    return Evaluation(method="analytic", backend="closed-form",
                      n_processes=system.n, metrics=metrics,
                      rel_tol=spec.rel_tol)


register_evaluator(StrategyEvaluator())
