"""The one front door: ``repro.evaluate(spec, method=...)``.

The facade composes the pieces the rest of the package already provides —
the declarative :class:`~repro.api.spec.StudySpec`, the engine registry of
:mod:`repro.api.evaluators`, and the
:class:`~repro.runner.runner.ExperimentRunner` — into a single entry point:

* ``method="auto"`` resolves to an engine by state-space size and requested
  metrics (:func:`~repro.api.evaluators.resolve_method`);
* every cell runs as the internal registered ``evaluate`` scenario, so an
  attached :class:`~repro.report.store.ResultStore` gives caching and resume
  for free, and the cell's store key is exactly
  :meth:`StudySpec.canonical_key`;
* sweep axes expand into grid cells; each cell's stochastic shards fan out
  through the execution backend, so ``backend="process"`` parallelises a
  sweep end to end with bit-identical results.

Scenario code that already *has* an :class:`ExecutionContext` (it is being
run by the runner) uses :func:`evaluate_in_context` instead, which flattens
the shards of many cells into one backend ``map`` — the same task layout the
pre-facade experiment modules used, which is what keeps their stored results
bit-identical across the migration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.api.evaluation import Evaluation
from repro.api.evaluators import get_evaluator, resolve_method
from repro.bench import phase as _phase
from repro.api.spec import EVALUATE_SCENARIO_NAME, StudySpec
from repro.experiments.common import ExperimentResult
from repro.runner import ExecutionContext, ExperimentRunner, scenario

__all__ = ["CellResult", "StudyResult", "evaluate", "evaluate_in_context",
           "evaluate_record"]


# --------------------------------------------------------------------- scenario
@scenario(EVALUATE_SCENARIO_NAME,
          description="Evaluate a declarative StudySpec through one engine",
          paper_reference="Section 2.3 (the interval distribution, via the "
                          "unified facade)",
          internal=True)
def evaluate_scenario(ctx: ExecutionContext, *,
                      spec: Optional[Dict[str, object]] = None,
                      method: str = "analytic") -> ExperimentResult:
    """The facade's internal scenario: one study cell, one engine.

    ``spec`` is a :meth:`StudySpec.to_dict` payload; ``method`` must already
    be resolved (the facade never hands ``"auto"`` down).  Registered like
    any other scenario so the runner's store hook addresses facade cells
    exactly like hand-written experiments, but marked *internal* so generic
    enumeration (``list``, ``report --all``) never runs it parameterless.
    """
    if spec is None:
        raise ValueError(
            "the 'evaluate' scenario needs a StudySpec: call "
            "repro.evaluate(spec), use `python -m repro eval SPEC.json`, or "
            "pass --params with a {'spec': {...}, 'method': ...} payload")
    carried = sorted({"seed", "reps", "sweep"} & set(spec))
    if carried:
        # The runner's seed/reps slots are authoritative here (that is how
        # the cell is keyed), and a sweep would be silently collapsed to
        # its base cell — the facade expands sweeps *before* dispatching
        # cells to this scenario.
        raise ValueError(
            f"the 'evaluate' scenario payload must not embed {carried}; "
            "seed/reps are runner-level, and sweeps are expanded by "
            "repro.evaluate / `python -m repro eval` before dispatch")
    study = StudySpec.from_dict(spec)
    evaluation = get_evaluator(method).evaluate(study, ctx)
    return evaluation.to_experiment_result()


# --------------------------------------------------------------------- results
@dataclass(frozen=True)
class CellResult:
    """One evaluated sweep cell, with its provenance."""

    spec: StudySpec
    evaluation: Evaluation
    method: str
    cached: bool
    key: Optional[str]
    elapsed_seconds: float


@dataclass(frozen=True)
class StudyResult:
    """What :func:`evaluate` returns for a sweep spec."""

    spec: StudySpec
    cells: List[CellResult]

    @property
    def evaluations(self) -> List[Evaluation]:
        return [cell.evaluation for cell in self.cells]

    @property
    def cache_hits(self) -> int:
        return sum(cell.cached for cell in self.cells)

    def to_experiment_result(self) -> ExperimentResult:
        """Tabulate the sweep: one row per cell, scalar metrics as columns."""
        axes = list(self.spec.sweep)
        scalar_columns: List[str] = []
        for cell in self.cells:
            for name in cell.evaluation.metrics:
                if name not in scalar_columns:
                    scalar_columns.append(name)
        result = ExperimentResult(
            name="api_study_sweep",
            paper_reference="repro.api facade sweep",
            columns=scalar_columns,
            notes=f"sweep axes: {', '.join(axes)}" if axes else "",
        )
        for cell in self.cells:
            label = _cell_label(self.spec, cell.spec) + f" [{cell.method}]"
            values = {name: cell.evaluation.metrics.get(name, float("nan"))
                      for name in scalar_columns}
            result.add_row(label, **values)
        return result


def _cell_label(parent: StudySpec, cell: StudySpec) -> str:
    """Human label of a cell: the swept axis values that identify it."""
    parts = []
    for axis in parent.sweep:
        if axis == "reps":
            parts.append(f"reps={cell.effective_reps()}")
        elif axis == "seed":
            parts.append(f"seed={cell.seed}")
        else:
            value = cell.system.args.get(axis)
            parts.append(f"{axis}={value:g}" if isinstance(value, float)
                         else f"{axis}={value}")
    return ", ".join(parts) if parts else "cell"


# --------------------------------------------------------------------- facade
def evaluate(spec: Union[StudySpec, Mapping[str, object]],
             method: str = "auto", *,
             backend=None, workers: Optional[int] = None,
             store=None, force: bool = False
             ) -> Union[Evaluation, StudyResult]:
    """Evaluate a study spec (or its dict form) through one entry point.

    Parameters
    ----------
    spec:
        A :class:`StudySpec` or its :meth:`~StudySpec.to_dict` payload (the
        JSON form ``python -m repro eval`` reads from a file).
    method:
        ``"auto"`` (select by system kind, state-space size and metrics),
        ``"analytic"``, ``"mc"``, ``"des"``, or — for ``strategy`` systems —
        ``"strategy"`` (measure a recovery scheme by running its runtime).
    backend / workers:
        Execution backend for the stochastic shards and sweep cells (same
        semantics as everywhere else: results are backend independent).
    store:
        Optional :class:`~repro.report.store.ResultStore` (or path); cells
        already evaluated under the same canonical key are reloaded, not
        recomputed — interrupted sweeps resume.
    force:
        Recompute even on a cache hit (the result is re-written through).

    Returns
    -------
    A single :class:`Evaluation` for a plain spec, a :class:`StudyResult`
    for a spec with sweep axes.  (:func:`evaluate_record` always returns the
    :class:`StudyResult` form, with per-cell cache provenance.)
    """
    result = evaluate_record(spec, method, backend=backend, workers=workers,
                             store=store, force=force)
    if not result.spec.is_sweep:
        return result.cells[0].evaluation
    return result


def evaluate_record(spec: Union[StudySpec, Mapping[str, object]],
                    method: str = "auto", *,
                    backend=None, workers: Optional[int] = None,
                    store=None, force: bool = False) -> StudyResult:
    """Like :func:`evaluate`, but always return the full :class:`StudyResult`
    — one :class:`CellResult` per cell with cache status and store key.

    Parallelism covers both engine families: stochastic cells fan their
    fixed-size shards through the backend (inside the runner), and
    deterministic cells that are not served from the store are batched into
    one backend ``map`` — so an analytic sweep with ``backend="process"``
    computes its grid cells concurrently.
    """
    if not isinstance(spec, StudySpec):
        spec = StudySpec.from_dict(spec)
    if isinstance(store, str):
        from repro.report.store import ResultStore
        store = ResultStore(store)
    import json as _json

    runner = ExperimentRunner(backend, workers=workers, store=store)
    cells: List[Optional[CellResult]] = []
    # Deterministic cache misses, deduplicated: sweep cells whose identity
    # coincides (e.g. a reps axis, which deterministic results ignore) are
    # computed once and fanned back to every requesting cell.
    pending_payloads: List[_DeterministicCell] = []
    pending_targets: List[List[tuple]] = []      # [(cell index, cell spec)]
    pending_by_identity: Dict[object, int] = {}

    def decode(result, cell: StudySpec) -> Evaluation:
        """Rebuild a stored/runner evaluation, restamping the cell's stated
        tolerance: rel_tol is a spec-side annotation excluded from the cell
        identity, so the *requesting* spec's value — not whatever the stored
        payload happened to carry — is what the caller declared."""
        return _dc_replace(Evaluation.from_experiment_result(result),
                           rel_tol=cell.rel_tol)

    for index, cell in enumerate(spec.cells()):
        resolved = resolve_method(cell, method)
        evaluator = get_evaluator(resolved)
        if evaluator.stochastic:
            # The runner owns stochastic cells end to end: shard fan-out,
            # store caching, and the seed=None fresh-entropy bypass.
            record = runner.run_record(
                EVALUATE_SCENARIO_NAME,
                seed=cell.seed,
                reps=cell.effective_reps(),
                force=force,
                **cell.cell_params(resolved))
            cells.append(CellResult(
                spec=cell,
                evaluation=decode(record.result, cell),
                method=resolved,
                cached=record.cached,
                key=record.key,
                elapsed_seconds=record.elapsed_seconds))
            continue
        # Deterministic cells: results do not depend on the seed, so even
        # seedless cells cache — keyed under the canonical (seed, reps=None)
        # identity, which is exactly StudySpec.canonical_key.  Cache misses
        # are deferred and batched into one backend map below.
        key = None
        if store is not None:
            key = store.key(EVALUATE_SCENARIO_NAME,
                            cell.cell_params(resolved), cell.seed, None)
            with _phase("store"):
                hit = None if force else store.get(key,
                                                   EVALUATE_SCENARIO_NAME)
            if hit is not None:
                cells.append(CellResult(
                    spec=cell,
                    evaluation=decode(hit.result, cell),
                    method=resolved, cached=True, key=key,
                    elapsed_seconds=hit.elapsed_seconds))
                continue
        cells.append(None)
        identity = (_json.dumps(cell.cell_params(resolved), sort_keys=True),
                    cell.seed)
        position = pending_by_identity.get(identity)
        if position is None:
            pending_by_identity[identity] = len(pending_payloads)
            pending_payloads.append(_DeterministicCell(spec=cell,
                                                       method=resolved))
            pending_targets.append([(index, cell)])
        else:
            pending_targets[position].append((index, cell))

    if pending_payloads:
        outputs = runner.backend.map(_evaluate_deterministic_cell_timed,
                                     pending_payloads)
        for payload, targets, (evaluation, elapsed) in zip(
                pending_payloads, pending_targets, outputs):
            key = None
            if store is not None:
                first = payload.spec
                key = store.key(EVALUATE_SCENARIO_NAME,
                                first.cell_params(payload.method),
                                first.seed, None)
                with _phase("store"):
                    store.put(EVALUATE_SCENARIO_NAME,
                              first.cell_params(payload.method), first.seed,
                              None, backend=runner.backend.describe(),
                              elapsed_seconds=elapsed,
                              result=evaluation.to_experiment_result())
            for index, cell in targets:
                cells[index] = CellResult(
                    spec=cell,
                    evaluation=_dc_replace(evaluation,
                                           rel_tol=cell.rel_tol),
                    method=payload.method,
                    cached=False, key=key, elapsed_seconds=elapsed)
    return StudyResult(spec=spec, cells=[cell for cell in cells
                                         if cell is not None])


# ----------------------------------------------------------------- in-context
@dataclass(frozen=True)
class _DeterministicCell:
    """Picklable payload for deterministic engines fanned through a backend.

    Specs and evaluations are plain frozen dataclasses, so they cross the
    process boundary directly — no dict round trip on the hot path.
    """

    spec: StudySpec
    method: str


def _evaluate_deterministic_cell(cell: _DeterministicCell) -> Evaluation:
    """Worker entry point: evaluate one deterministic cell."""
    return get_evaluator(cell.method).evaluate(cell.spec)


def _evaluate_deterministic_cell_timed(cell: _DeterministicCell):
    """Worker entry point returning ``(Evaluation, elapsed seconds)``.

    Timing happens in the worker so store provenance records the cell's own
    compute time, not the batch's.
    """
    start = time.perf_counter()
    evaluation = _evaluate_deterministic_cell(cell)
    return evaluation, time.perf_counter() - start


def evaluate_in_context(ctx: ExecutionContext,
                        specs: Iterable[StudySpec],
                        method: str = "analytic") -> List[Evaluation]:
    """Evaluate many cells inside an already-running scenario.

    All cells must resolve to the *same* engine.  Deterministic cells are
    fanned out one-per-task; stochastic cells contribute their work items —
    laid out by the engine's :meth:`~repro.api.evaluators.Evaluator.
    cell_tasks` — to a single flat backend ``map``.  For ``mc``/``des`` that
    is the fixed-size shard stream of
    :func:`repro.experiments.sampling.sample_interval_cases` (seeds spawned
    per cell, in cell order); the ``strategy`` engine instead shares one
    replication seed block across the cells (common random numbers), the
    pre-facade strategy-comparison layout.
    """
    specs = list(specs)
    if not specs:
        return []
    names = {resolve_method(s, method) for s in specs}
    if len(names) != 1:
        raise ValueError(f"evaluate_in_context needs one engine per call, "
                         f"got {sorted(names)}")
    resolved = names.pop()
    evaluator = get_evaluator(resolved)
    if not evaluator.stochastic:
        payloads = [_DeterministicCell(spec=s, method=resolved)
                    for s in specs]
        return ctx.map(_evaluate_deterministic_cell, payloads)
    tasks, bounds = evaluator.cell_tasks(specs, ctx)
    outputs = ctx.map(evaluator.worker, tasks)
    return [evaluator.assemble(s, outputs[lo:hi])
            for s, lo, hi in zip(specs, bounds, bounds[1:])]
