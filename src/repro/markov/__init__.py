"""Markov models for asynchronous recovery blocks (Section 2 of the paper).

The paper models the interval ``X`` between two successive recovery lines of a set
of asynchronously checkpointing processes as the absorption time of a
continuous-time Markov chain whose states record, per process, whether the last
action was a recovery point (1) or an interaction (0).

Sub-modules
-----------
``state_space``
    Encoding of the chain's states (entry state ``S_r``, the intermediate
    ``(x_1,…,x_n)`` states, and the absorbing state ``S_{r+1}``).
``generator``
    Assembly of the transition-rate matrix according to rules R1–R4 (dense
    ground truth plus a vectorised CSR builder for large state spaces).
``structure_cache``
    Memoized structural phase of the generator assembly: COO index arrays
    keyed on ``(n, interaction zero-pattern)``, so rates-only sweeps pay the
    state-space enumeration once and refill only the value array.
``operators``
    The :class:`TransientOperator` seam: interchangeable dense
    (``expm``/LU) and sparse (``expm_multiply``/sparse-LU/GMRES) numeric
    backends, with a size-based auto-selection policy.
``simplified``
    The lumped symmetric chain of Figure 3 (rules R1'–R4').
``ctmc`` / ``dtmc``
    Generic phase-type / absorbing-chain mathematics.
``split_chain``
    The discrete chain ``Y_d`` with split states (Figure 4) used to obtain the mean
    number of recovery points ``E[L_i]`` recorded during ``X``.
``density``
    Evaluation of the density ``f_X(t)`` on a grid (Figure 6).
``montecarlo``
    Model-level Monte-Carlo sampling of ``X`` and ``L_i`` (the paper's own numbers in
    Table 1 were obtained this way).
``recovery_line_interval``
    High-level façade tying everything together.
"""

from repro.markov.state_space import AsyncStateSpace
from repro.markov.generator import (build_generator, build_generator_sparse,
                                    build_phase_type)
from repro.markov.operators import (DENSE_STATE_LIMIT, DenseTransientOperator,
                                    SparseTransientOperator, TransientOperator,
                                    as_operator, select_backend)
from repro.markov.simplified import SimplifiedChain, simplified_mean_interval
from repro.markov.ctmc import PhaseType, transient_distribution
from repro.markov.dtmc import AbsorbingDTMC
from repro.markov.split_chain import SplitChainYd, expected_rp_counts
from repro.markov.density import interval_density, interval_cdf
from repro.markov.montecarlo import ModelSimulator, SimulatedIntervals
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.markov.structure_cache import (GeneratorStructure, cache_info,
                                          clear_structure_cache, structure_for)

__all__ = [
    "GeneratorStructure",
    "cache_info",
    "clear_structure_cache",
    "structure_for",
    "AsyncStateSpace",
    "DENSE_STATE_LIMIT",
    "DenseTransientOperator",
    "SparseTransientOperator",
    "TransientOperator",
    "as_operator",
    "build_generator",
    "build_generator_sparse",
    "build_phase_type",
    "select_backend",
    "SimplifiedChain",
    "simplified_mean_interval",
    "PhaseType",
    "transient_distribution",
    "AbsorbingDTMC",
    "SplitChainYd",
    "expected_rp_counts",
    "interval_density",
    "interval_cdf",
    "ModelSimulator",
    "SimulatedIntervals",
    "RecoveryLineIntervalModel",
]
