"""The simplified (lumped) chain for homogeneous systems — Figure 3, rules R1'–R4'.

When every process has the same recovery-point rate ``μ`` and every pair the same
interaction rate ``λ``, the ``2^n + 1``-state chain of Figure 2 collapses: all
intermediate states with exactly ``u`` ones are interchangeable and can be merged
into a single state ``S̄_u``.  The lumped chain has only ``n + 2`` states (entry,
``S̄_0 … S̄_{n-1}``, absorbing) which makes the large-``n`` sweeps of Figure 5 cheap.

Transition rules (paper numbering):

R1'  ``S̄_u → S̄_{u+1}`` at rate ``(n − u)·μ`` (a 0-bit process checkpoints); for
     ``u = n − 1`` the destination is the absorbing state.
R2'  ``S̄_u → S̄_{u−2}`` at rate ``u(u−1)/2 · λ`` (two 1-bit processes interact),
     for ``u ≥ 2``.
R3'  ``S̄_u → S̄_{u−1}`` at rate ``u(n−u)·λ`` (a 1-bit process interacts with a
     0-bit process), for ``u ≥ 1``.
R4'  entry ``S_r`` → absorbing ``S_{r+1}`` at rate ``n·μ``; interactions from the
     entry state behave like ``u = n`` under R2' (to ``S̄_{n−2}``).

Lumpability of the full chain onto this one is verified by a dedicated test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.markov.ctmc import PhaseType
from repro.util.validation import check_non_negative, check_positive

__all__ = ["SimplifiedChain", "simplified_mean_interval"]


@dataclass(frozen=True)
class SimplifiedChain:
    """Lumped symmetric chain for ``n`` processes with rates ``μ`` and ``λ``.

    State indexing: ``0`` = entry ``S_r``; ``1 + u`` = intermediate ``S̄_u`` for
    ``u = 0 … n−1``; ``n + 1`` = absorbing ``S_{r+1}``.
    """

    n: int
    mu: float
    lam: float

    def __post_init__(self) -> None:
        if int(self.n) < 1:
            raise ValueError("need at least one process")
        object.__setattr__(self, "n", int(self.n))
        object.__setattr__(self, "mu", check_positive(self.mu, "mu"))
        object.__setattr__(self, "lam", check_non_negative(self.lam, "lam"))

    # ------------------------------------------------------------------ indices
    @property
    def entry_index(self) -> int:
        return 0

    @property
    def absorbing_index(self) -> int:
        return self.n + 1

    @property
    def n_states(self) -> int:
        return self.n + 2

    def index_of_u(self, u: int) -> int:
        """State index of the intermediate state with ``u`` one-bits."""
        if not (0 <= u <= self.n - 1):
            raise ValueError(f"u must be in [0, {self.n - 1}]")
        return 1 + u

    # ------------------------------------------------------------------ generator
    def generator(self) -> np.ndarray:
        """Full ``(n+2) × (n+2)`` generator matrix."""
        n, mu, lam = self.n, self.mu, self.lam
        m = self.n_states
        H = np.zeros((m, m))

        # Entry state (behaves like u = n).
        H[self.entry_index, self.absorbing_index] += n * mu          # R4'
        if n >= 2 and lam > 0.0:
            H[self.entry_index, self.index_of_u(n - 2)] += n * (n - 1) / 2.0 * lam

        for u in range(0, n):
            src = self.index_of_u(u)
            # R1'
            dest = self.absorbing_index if u + 1 == n else self.index_of_u(u + 1)
            H[src, dest] += (n - u) * mu
            # R2'
            if u >= 2 and lam > 0.0:
                H[src, self.index_of_u(u - 2)] += u * (u - 1) / 2.0 * lam
            # R3'
            if u >= 1 and lam > 0.0 and (n - u) >= 1:
                H[src, self.index_of_u(u - 1)] += u * (n - u) * lam

        np.fill_diagonal(H, 0.0)
        H[np.arange(m), np.arange(m)] = -H.sum(axis=1)
        H[self.absorbing_index, :] = 0.0
        return H

    def phase_type(self) -> PhaseType:
        """Phase-type distribution of the inter-recovery-line interval ``X``."""
        H = self.generator()
        transient = list(range(self.absorbing_index))
        T = H[np.ix_(transient, transient)]
        alpha = np.zeros(len(transient))
        alpha[self.entry_index] = 1.0
        return PhaseType(alpha=alpha, T=T)

    # ------------------------------------------------------------------ shortcuts
    def mean_interval(self) -> float:
        """``E[X]`` for the homogeneous system."""
        return self.phase_type().mean()

    def interval_std(self) -> float:
        return self.phase_type().std()

    def lumping_map(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (full-state → lumped-state map, lumped sizes) for verification.

        The map covers the full chain of :class:`~repro.markov.state_space.AsyncStateSpace`
        with the same ``n``: entry → entry, absorbing → absorbing, intermediate mask
        with ``u`` ones → ``S̄_u``.
        """
        from repro.markov.state_space import AsyncStateSpace

        space = AsyncStateSpace(self.n)
        mapping = np.empty(space.n_states, dtype=int)
        mapping[space.entry_index] = self.entry_index
        mapping[space.absorbing_index] = self.absorbing_index
        # Intermediate state index = mask + 1 and S̄_u sits at index u + 1, so
        # the map over all intermediates is one vectorised popcount.
        masks = space.intermediate_masks()
        mapping[masks + 1] = space.popcounts(masks) + 1
        sizes = np.bincount(mapping, minlength=self.n_states)
        return mapping, sizes


def simplified_mean_interval(n: int, mu: float, lam: float) -> float:
    """Convenience wrapper: ``E[X]`` of the homogeneous ``n``-process system."""
    return SimplifiedChain(n=n, mu=mu, lam=lam).mean_interval()
