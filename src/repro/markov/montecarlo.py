"""Model-level Monte-Carlo simulation of the asynchronous recovery-block model.

The paper's Table 1 values were produced by "computer simulation" of the Section 2
model.  :class:`ModelSimulator` reproduces that experiment: it samples the competing
Poisson processes (recovery points at rates ``μ_i``, pairwise interactions at rates
``λ_ij``) directly, tracks the ``(x_1,…,x_n)`` state, and records

* the interval ``X`` between successive recovery lines, and
* the number of recovery points each process establishes during the interval.

Because it simulates exactly the stochastic model underlying the CTMC, its
estimates converge to the analytic phase-type results — this is the basis of the
validation experiment (E10 in DESIGN.md).  The simulator can also emit a full
:class:`~repro.core.history.HistoryDiagram` for cross-checking the history-level
recovery-line detectors against the bit-level bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.history import HistoryDiagram
from repro.core.parameters import SystemParameters

__all__ = ["SimulatedIntervals", "ModelSimulator"]


@dataclass(frozen=True)
class SimulatedIntervals:
    """Sampled inter-recovery-line intervals and recovery-point counts.

    ``rp_counts`` uses the *all* counting convention (the recovery point that
    completes the next line is included); ``completing_process[r]`` identifies which
    process's RP completed interval ``r``, so the *interior* convention is simply
    ``rp_counts`` with one subtracted from that process's column.
    """

    lengths: np.ndarray
    rp_counts: np.ndarray
    completing_process: np.ndarray

    def __post_init__(self) -> None:
        if self.lengths.ndim != 1 or self.rp_counts.ndim != 2:
            raise ValueError("malformed simulation output")
        if self.lengths.shape[0] != self.rp_counts.shape[0]:
            raise ValueError("lengths and rp_counts disagree on sample count")
        if self.completing_process.shape != self.lengths.shape:
            raise ValueError("completing_process must align with lengths")

    @property
    def n_samples(self) -> int:
        return int(self.lengths.shape[0])

    @property
    def n_processes(self) -> int:
        return int(self.rp_counts.shape[1])

    def mean_interval(self) -> float:
        """Estimate of ``E[X]``."""
        return float(self.lengths.mean())

    def interval_stderr(self) -> float:
        if self.n_samples < 2:
            return 0.0
        return float(self.lengths.std(ddof=1) / np.sqrt(self.n_samples))

    def mean_rp_counts(self, counting: str = "interior") -> np.ndarray:
        """Estimate of ``E[L_i]`` under the requested counting convention."""
        if counting not in ("interior", "all"):
            raise ValueError("counting must be 'interior' or 'all'")
        counts = self.rp_counts.astype(float)
        if counting == "interior":
            counts = counts.copy()
            rows = np.arange(self.n_samples)
            counts[rows, self.completing_process] -= 1.0
        return counts.mean(axis=0)

    def completion_frequencies(self) -> np.ndarray:
        """Empirical estimate of ``q_i`` (who completes the recovery line)."""
        freq = np.bincount(self.completing_process, minlength=self.n_processes)
        return freq / max(self.n_samples, 1)


class ModelSimulator:
    """Monte-Carlo sampler of the Section 2 model.

    Parameters
    ----------
    params:
        System parameters (``μ``, ``λ``).
    seed:
        Seed for the dedicated :class:`numpy.random.Generator`; runs with the same
        seed are bit-for-bit reproducible.
    """

    def __init__(self, params: SystemParameters, seed: Optional[int] = None) -> None:
        self.params = params
        self.rng = np.random.default_rng(seed)
        # Pre-compute the event alphabet: ("rp", i) and ("interaction", (i, j)).
        self._event_rates: List[float] = []
        self._events: List[Tuple[str, Tuple[int, ...]]] = []
        for i in range(params.n):
            self._events.append(("rp", (i,)))
            self._event_rates.append(float(params.mu[i]))
        for i in range(params.n):
            for j in range(i + 1, params.n):
                rate = params.pair_rate(i, j)
                if rate > 0.0:
                    self._events.append(("interaction", (i, j)))
                    self._event_rates.append(rate)
        self._rates = np.asarray(self._event_rates, dtype=float)
        self._total_rate = float(self._rates.sum())
        if self._total_rate <= 0.0:
            raise ValueError("the system has no events (all rates zero)")
        self._probs = self._rates / self._total_rate

    # ------------------------------------------------------------------ sampling
    def _next_event(self) -> Tuple[float, str, Tuple[int, ...]]:
        """Sample the next event: (holding time, kind, participants)."""
        dt = self.rng.exponential(1.0 / self._total_rate)
        idx = int(self.rng.choice(len(self._events), p=self._probs))
        kind, who = self._events[idx]
        return dt, kind, who

    def sample_intervals(self, n_intervals: int,
                         max_events_per_interval: int = 10_000_000
                         ) -> SimulatedIntervals:
        """Sample *n_intervals* successive inter-recovery-line intervals."""
        if n_intervals < 1:
            raise ValueError("need at least one interval")
        n = self.params.n
        lengths = np.empty(n_intervals)
        counts = np.zeros((n_intervals, n), dtype=np.int64)
        completing = np.empty(n_intervals, dtype=np.int64)

        for r in range(n_intervals):
            bits = [True] * n           # entry state: all last actions are RPs
            elapsed = 0.0
            events = 0
            while True:
                events += 1
                if events > max_events_per_interval:
                    raise RuntimeError("interval did not close; check the rates")
                dt, kind, who = self._next_event()
                elapsed += dt
                if kind == "rp":
                    (i,) = who
                    counts[r, i] += 1
                    bits[i] = True
                    if all(bits):
                        lengths[r] = elapsed
                        completing[r] = i
                        break
                else:
                    i, j = who
                    bits[i] = False
                    bits[j] = False
        return SimulatedIntervals(lengths=lengths, rp_counts=counts,
                                  completing_process=completing)

    # ------------------------------------------------------------------ histories
    def generate_history(self, duration: float) -> HistoryDiagram:
        """Generate a full history diagram of length *duration*.

        Recovery points and interactions are drawn from the same competing Poisson
        processes; the result feeds the history-level recovery-line detectors and
        the rollback-propagation analysis.
        """
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        history = HistoryDiagram(self.params.n)
        t = 0.0
        while True:
            dt, kind, who = self._next_event()
            t += dt
            if t > duration:
                break
            if kind == "rp":
                history.add_recovery_point(who[0], t)
            else:
                i, j = who
                # Interactions of the analytic model are symmetric and
                # instantaneous; direction is irrelevant, pick the lower id as the
                # sender for determinism.
                history.add_interaction(i, j, t, receive_time=t)
        return history

    def estimate_mean_interval(self, n_intervals: int) -> float:
        """Convenience shortcut for ``E[X]`` estimation."""
        return self.sample_intervals(n_intervals).mean_interval()
