"""Model-level Monte-Carlo simulation of the asynchronous recovery-block model.

The paper's Table 1 values were produced by "computer simulation" of the Section 2
model.  :class:`ModelSimulator` reproduces that experiment: it samples the competing
Poisson processes (recovery points at rates ``μ_i``, pairwise interactions at rates
``λ_ij``) directly, tracks the ``(x_1,…,x_n)`` state, and records

* the interval ``X`` between successive recovery lines, and
* the number of recovery points each process establishes during the interval.

Because it simulates exactly the stochastic model underlying the CTMC, its
estimates converge to the analytic phase-type results — this is the basis of the
validation experiment (E10 in DESIGN.md).  The simulator can also emit a full
:class:`~repro.core.history.HistoryDiagram` for cross-checking the history-level
recovery-line detectors against the bit-level bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.core.history import HistoryDiagram
from repro.core.parameters import SystemParameters

__all__ = ["SimulatedIntervals", "ModelSimulator", "RenewalModelSimulator",
           "concatenate_intervals"]

#: Events drawn from the generator per batch.  One batch covers a few hundred
#: intervals of a typical Table 1 case, so the per-event cost is dominated by
#: the (cheap) Python state update rather than by RNG calls.
DEFAULT_BATCH_SIZE = 8_192


@dataclass(frozen=True)
class SimulatedIntervals:
    """Sampled inter-recovery-line intervals and recovery-point counts.

    ``rp_counts`` uses the *all* counting convention (the recovery point that
    completes the next line is included); ``completing_process[r]`` identifies which
    process's RP completed interval ``r``, so the *interior* convention is simply
    ``rp_counts`` with one subtracted from that process's column.
    """

    lengths: np.ndarray
    rp_counts: np.ndarray
    completing_process: np.ndarray

    def __post_init__(self) -> None:
        if self.lengths.ndim != 1 or self.rp_counts.ndim != 2:
            raise ValueError("malformed simulation output")
        if self.lengths.shape[0] != self.rp_counts.shape[0]:
            raise ValueError("lengths and rp_counts disagree on sample count")
        if self.completing_process.shape != self.lengths.shape:
            raise ValueError("completing_process must align with lengths")

    @property
    def n_samples(self) -> int:
        return int(self.lengths.shape[0])

    @property
    def n_processes(self) -> int:
        return int(self.rp_counts.shape[1])

    def mean_interval(self) -> float:
        """Estimate of ``E[X]``."""
        return float(self.lengths.mean())

    def interval_stderr(self) -> float:
        if self.n_samples < 2:
            return 0.0
        return float(self.lengths.std(ddof=1) / np.sqrt(self.n_samples))

    def mean_rp_counts(self, counting: str = "interior") -> np.ndarray:
        """Estimate of ``E[L_i]`` under the requested counting convention."""
        if counting not in ("interior", "all"):
            raise ValueError("counting must be 'interior' or 'all'")
        counts = self.rp_counts.astype(float)
        if counting == "interior":
            counts = counts.copy()
            rows = np.arange(self.n_samples)
            counts[rows, self.completing_process] -= 1.0
        return counts.mean(axis=0)

    def completion_frequencies(self) -> np.ndarray:
        """Empirical estimate of ``q_i`` (who completes the recovery line)."""
        freq = np.bincount(self.completing_process, minlength=self.n_processes)
        return freq / max(self.n_samples, 1)


def concatenate_intervals(parts: Sequence["SimulatedIntervals"]
                          ) -> "SimulatedIntervals":
    """Merge per-shard sample sets into one, preserving shard order.

    The experiment runner shards a Monte-Carlo budget across workers and merges
    the shard outputs with this helper; because the merge respects the shard
    order, the combined sample set is independent of which backend produced it.
    """
    if not parts:
        raise ValueError("need at least one shard to concatenate")
    n_processes = parts[0].n_processes
    if any(part.n_processes != n_processes for part in parts):
        raise ValueError("shards disagree on the number of processes")
    if len(parts) == 1:
        return parts[0]
    return SimulatedIntervals(
        lengths=np.concatenate([part.lengths for part in parts]),
        rp_counts=np.concatenate([part.rp_counts for part in parts]),
        completing_process=np.concatenate([part.completing_process
                                           for part in parts]),
    )


class ModelSimulator:
    """Monte-Carlo sampler of the Section 2 model.

    The sampler exploits the structure of the underlying Markov jump chain: the
    holding times are i.i.d. ``Exp(Λ)`` with ``Λ`` the total event rate, and the
    event identities are i.i.d. categorical draws with probabilities
    ``rate/Λ`` — the competing exponentials of the model.  Both streams are
    therefore drawn from numpy in large batches instead of one generator call
    per event, and the per-event state update is a pair of integer bitmask
    operations; this is an order of magnitude faster than the event-at-a-time
    reference implementation (kept as :meth:`sample_intervals_legacy`) while
    sampling the exact same process law.

    Parameters
    ----------
    params:
        System parameters (``μ``, ``λ``).
    seed:
        Seed (or a pre-spawned :class:`numpy.random.SeedSequence`) for the
        dedicated :class:`numpy.random.Generator`; runs with the same seed are
        bit-for-bit reproducible.
    batch_size:
        Events drawn per numpy batch.
    """

    def __init__(self, params: SystemParameters,
                 seed: Union[int, np.random.SeedSequence, None] = None,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.batch_size = int(batch_size)
        # Pre-compute the event alphabet: ("rp", i) and ("interaction", (i, j)).
        self._event_rates: List[float] = []
        self._events: List[Tuple[str, Tuple[int, ...]]] = []
        for i in range(params.n):
            self._events.append(("rp", (i,)))
            self._event_rates.append(float(params.mu[i]))
        for i in range(params.n):
            for j in range(i + 1, params.n):
                rate = params.pair_rate(i, j)
                if rate > 0.0:
                    self._events.append(("interaction", (i, j)))
                    self._event_rates.append(rate)
        self._rates = np.asarray(self._event_rates, dtype=float)
        self._total_rate = float(self._rates.sum())
        if self._total_rate <= 0.0:
            raise ValueError("the system has no events (all rates zero)")
        self._probs = self._rates / self._total_rate
        # Per-event lookup tables for the batched fast path, as plain Python
        # lists (scalar indexing of lists is ~3x faster than numpy scalars).
        # Applying an event to the bit-vector state is
        #   mask = (mask & and_mask[e]) | or_mask[e]
        # (an RP sets the process bit, an interaction clears both bits).
        full = (1 << params.n) - 1
        self._full_mask = full
        self._or_masks: List[int] = []
        self._and_masks: List[int] = []
        self._rp_proc: List[int] = []       # process id for RPs, -1 otherwise
        self._pair: List[Tuple[int, int]] = []
        for kind, who in self._events:
            if kind == "rp":
                (i,) = who
                self._or_masks.append(1 << i)
                self._and_masks.append(full)
                self._rp_proc.append(i)
                self._pair.append((i, i))
            else:
                i, j = who
                self._or_masks.append(0)
                self._and_masks.append(full & ~((1 << i) | (1 << j)))
                self._rp_proc.append(-1)
                self._pair.append((i, j))
        self._cumprobs = np.cumsum(self._probs)
        self._cumprobs[-1] = 1.0

    # ------------------------------------------------------------------ sampling
    def _next_event(self) -> Tuple[float, str, Tuple[int, ...]]:
        """Sample the next event: (holding time, kind, participants).

        Event-at-a-time reference path; the batched sampler below draws the
        same two streams (exponential holding times, categorical identities)
        in numpy blocks instead.
        """
        dt = self.rng.exponential(1.0 / self._total_rate)
        idx = int(self.rng.choice(len(self._events), p=self._probs))
        kind, who = self._events[idx]
        return dt, kind, who

    def _draw_batch(self) -> Tuple[List[float], List[int]]:
        """Draw one numpy batch of (holding times, event indices)."""
        size = self.batch_size
        dts = self.rng.exponential(1.0 / self._total_rate, size=size)
        idxs = np.searchsorted(self._cumprobs, self.rng.random(size),
                               side="right")
        return dts.tolist(), idxs.tolist()

    def sample_intervals(self, n_intervals: int,
                         max_events_per_interval: int = 10_000_000
                         ) -> SimulatedIntervals:
        """Sample *n_intervals* successive inter-recovery-line intervals."""
        if n_intervals < 1:
            raise ValueError("need at least one interval")
        n = self.params.n
        lengths = np.empty(n_intervals)
        counts = np.zeros((n_intervals, n), dtype=np.int64)
        completing = np.empty(n_intervals, dtype=np.int64)

        full = self._full_mask
        or_masks = self._or_masks
        and_masks = self._and_masks
        rp_proc = self._rp_proc
        dts: List[float] = []
        idxs: List[int] = []
        ptr = buffered = 0

        for r in range(n_intervals):
            mask = full                 # entry state: all last actions are RPs
            elapsed = 0.0
            events = 0
            row = [0] * n
            while True:
                if ptr == buffered:
                    dts, idxs = self._draw_batch()
                    ptr, buffered = 0, len(dts)
                dt = dts[ptr]
                idx = idxs[ptr]
                ptr += 1
                events += 1
                if events > max_events_per_interval:
                    raise RuntimeError("interval did not close; check the rates")
                elapsed += dt
                i = rp_proc[idx]
                if i >= 0:
                    row[i] += 1
                    mask |= or_masks[idx]
                    if mask == full:
                        lengths[r] = elapsed
                        completing[r] = i
                        break
                else:
                    mask &= and_masks[idx]
            counts[r] = row
        return SimulatedIntervals(lengths=lengths, rp_counts=counts,
                                  completing_process=completing)

    def sample_intervals_legacy(self, n_intervals: int,
                                max_events_per_interval: int = 10_000_000
                                ) -> SimulatedIntervals:
        """Event-at-a-time reference implementation of :meth:`sample_intervals`.

        Kept as the cross-check and benchmark baseline for the batched fast
        path: both sample the identical process law, but this one pays two
        generator calls per event.
        """
        if n_intervals < 1:
            raise ValueError("need at least one interval")
        n = self.params.n
        lengths = np.empty(n_intervals)
        counts = np.zeros((n_intervals, n), dtype=np.int64)
        completing = np.empty(n_intervals, dtype=np.int64)

        for r in range(n_intervals):
            bits = [True] * n           # entry state: all last actions are RPs
            elapsed = 0.0
            events = 0
            while True:
                events += 1
                if events > max_events_per_interval:
                    raise RuntimeError("interval did not close; check the rates")
                dt, kind, who = self._next_event()
                elapsed += dt
                if kind == "rp":
                    (i,) = who
                    counts[r, i] += 1
                    bits[i] = True
                    if all(bits):
                        lengths[r] = elapsed
                        completing[r] = i
                        break
                else:
                    i, j = who
                    bits[i] = False
                    bits[j] = False
        return SimulatedIntervals(lengths=lengths, rp_counts=counts,
                                  completing_process=completing)

    # ------------------------------------------------------------------ histories
    def generate_history(self, duration: float) -> HistoryDiagram:
        """Generate a full history diagram of length *duration*.

        Recovery points and interactions are drawn from the same competing Poisson
        processes; the result feeds the history-level recovery-line detectors and
        the rollback-propagation analysis.
        """
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        history = HistoryDiagram(self.params.n)
        rp_proc = self._rp_proc
        pair = self._pair
        t = 0.0
        dts: List[float] = []
        idxs: List[int] = []
        ptr = buffered = 0
        while True:
            if ptr == buffered:
                dts, idxs = self._draw_batch()
                ptr, buffered = 0, len(dts)
            t += dts[ptr]
            idx = idxs[ptr]
            ptr += 1
            if t > duration:
                break
            i = rp_proc[idx]
            if i >= 0:
                history.add_recovery_point(i, t)
            else:
                i, j = pair[idx]
                # Interactions of the analytic model are symmetric and
                # instantaneous; direction is irrelevant, pick the lower id as the
                # sender for determinism.
                history.add_interaction(i, j, t, receive_time=t)
        return history

    def estimate_mean_interval(self, n_intervals: int) -> float:
        """Convenience shortcut for ``E[X]`` estimation."""
        return self.sample_intervals(n_intervals).mean_interval()


class RenewalModelSimulator:
    """Monte-Carlo sampler of the model under a *non-exponential* failure law.

    The exponential model is a race of memoryless clocks, which is what lets
    :class:`ModelSimulator` draw holding times and event identities as two
    i.i.d. streams.  Under a ``weibull``/``lognormal`` ``failure_law`` the
    per-process recovery-point interarrivals become a renewal process of that
    law (scaled to keep the mean at ``1/μ_i``) and the race structure is lost,
    so this sampler keeps one *absolute* next-event time per source — ``n``
    renewal timers plus one Poisson timer per interacting pair — and fires the
    earliest.  Every renewal timer is redrawn when a recovery line forms
    (process order ``0..n−1``), which makes successive intervals i.i.d. — the
    property the phase-type expanded chain of :mod:`repro.markov.phfit`
    relies on to stay exact given the fitted law.  Interaction timers are
    Poisson and simply keep running.

    This is the ground truth the analytic phase-type approximation is gated
    against by the conformance suite; it samples the declared law *exactly*.
    """

    def __init__(self, params: SystemParameters,
                 seed: Union[int, np.random.SeedSequence, None] = None,
                 failure_law: str = "weibull",
                 failure_shape: float = 1.0) -> None:
        if failure_law not in ("exponential", "weibull", "lognormal"):
            raise ValueError(f"unknown failure law {failure_law!r}")
        if failure_law != "exponential" and not failure_shape > 0.0:
            raise ValueError("failure_shape must be positive")
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.failure_law = failure_law
        self.failure_shape = float(failure_shape)
        means = 1.0 / np.asarray(params.mu, dtype=float)
        self._means = means.tolist()
        if failure_law == "weibull":
            from scipy.special import gamma as _gamma_fn
            self._scales = (means / _gamma_fn(1.0 + 1.0 / self.failure_shape)
                            ).tolist()
        elif failure_law == "lognormal":
            sigma = self.failure_shape
            self._log_means = (np.log(means) - 0.5 * sigma * sigma).tolist()
        self._pairs: List[Tuple[int, int, float]] = [
            (i, j, params.pair_rate(i, j)) for i, j in params.pairs]

    def _draw_interarrival(self, i: int) -> float:
        if self.failure_law == "weibull":
            return float(self.rng.weibull(self.failure_shape)) * self._scales[i]
        if self.failure_law == "lognormal":
            return float(self.rng.lognormal(self._log_means[i],
                                            self.failure_shape))
        return float(self.rng.exponential(self._means[i]))

    def sample_intervals(self, n_intervals: int,
                         max_events_per_interval: int = 10_000_000
                         ) -> SimulatedIntervals:
        """Sample *n_intervals* successive inter-recovery-line intervals."""
        if n_intervals < 1:
            raise ValueError("need at least one interval")
        n = self.params.n
        lengths = np.empty(n_intervals)
        counts = np.zeros((n_intervals, n), dtype=np.int64)
        completing = np.empty(n_intervals, dtype=np.int64)

        full = (1 << n) - 1
        t = 0.0
        # Absolute next-event times; the canonical draw order (all RP timers
        # in process order at every line formation, then pair timers in pair
        # order once at the start; the fired source redrawn after each event)
        # is part of the determinism contract pinned by the golden snapshots.
        next_rp = [t + self._draw_interarrival(i) for i in range(n)]
        next_pair = [t + self.rng.exponential(1.0 / rate)
                     for _i, _j, rate in self._pairs]
        for r in range(n_intervals):
            mask = full                 # entry state: all last actions are RPs
            start = t
            events = 0
            row = [0] * n
            while True:
                events += 1
                if events > max_events_per_interval:
                    raise RuntimeError("interval did not close; check the rates")
                source = min(range(n + len(next_pair)),
                             key=lambda s: next_rp[s] if s < n
                             else next_pair[s - n])
                if source < n:
                    i = source
                    t = next_rp[i]
                    row[i] += 1
                    mask |= 1 << i
                    if mask == full:
                        lengths[r] = t - start
                        completing[r] = i
                        counts[r] = row
                        # Line formed: every renewal timer resets.
                        for p in range(n):
                            next_rp[p] = t + self._draw_interarrival(p)
                        break
                    next_rp[i] = t + self._draw_interarrival(i)
                else:
                    k = source - n
                    i, j, rate = self._pairs[k]
                    t = next_pair[k]
                    mask &= full & ~((1 << i) | (1 << j))
                    next_pair[k] = t + self.rng.exponential(1.0 / rate)
        return SimulatedIntervals(lengths=lengths, rp_counts=counts,
                                  completing_process=completing)

    def generate_history(self, duration: float) -> HistoryDiagram:
        """Generate a history diagram of length *duration* under the law.

        Same renewal semantics as :meth:`sample_intervals` (timers reset when
        a recovery line forms); interactions are emitted with the lower id as
        the sender, mirroring :meth:`ModelSimulator.generate_history`.
        """
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        n = self.params.n
        history = HistoryDiagram(n)
        full = (1 << n) - 1
        mask = full
        t = 0.0
        next_rp = [t + self._draw_interarrival(i) for i in range(n)]
        next_pair = [t + self.rng.exponential(1.0 / rate)
                     for _i, _j, rate in self._pairs]
        while True:
            source = min(range(n + len(next_pair)),
                         key=lambda s: next_rp[s] if s < n
                         else next_pair[s - n])
            when = next_rp[source] if source < n else next_pair[source - n]
            if when > duration:
                return history
            t = when
            if source < n:
                i = source
                history.add_recovery_point(i, t)
                mask |= 1 << i
                if mask == full:
                    for p in range(n):
                        next_rp[p] = t + self._draw_interarrival(p)
                else:
                    next_rp[i] = t + self._draw_interarrival(i)
            else:
                k = source - n
                i, j, rate = self._pairs[k]
                history.add_interaction(i, j, t, receive_time=t)
                mask &= full & ~((1 << i) | (1 << j))
                next_pair[k] = t + self.rng.exponential(1.0 / rate)

    def estimate_mean_interval(self, n_intervals: int) -> float:
        """Convenience shortcut for ``E[X]`` estimation."""
        return self.sample_intervals(n_intervals).mean_interval()
