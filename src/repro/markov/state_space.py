"""State space of the asynchronous recovery-block Markov chain.

Following Section 2.3 of the paper, the chain over ``n`` processes has ``2^n + 1``
states:

* state ``0`` — the entry state ``S_r`` (the r-th recovery line has just formed);
* states ``1 … 2^n − 1`` — the intermediate states ``(x_1,…,x_n)`` with at least one
  ``x_i = 0``; we use the paper's numbering ``index = Σ x_i 2^{i-1} + 1`` which maps
  the bit mask ``m`` to index ``m + 1``;
* state ``2^n`` — the absorbing state ``S_{r+1}`` (the next recovery line formed).
  The all-ones bit pattern maps to this index, reflecting that reaching
  "every process's last action was a recovery point" *is* the formation of the next
  recovery line.

The entry state behaves dynamically like the all-ones pattern but is kept separate
so that the direct ``S_r → S_{r+1}`` transition of rule R4 (and the spike of
``f_X(t)`` near zero it produces, visible in Figure 6) is represented faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

__all__ = ["AsyncStateSpace"]


@dataclass(frozen=True)
class AsyncStateSpace:
    """Index arithmetic for the asynchronous-RB chain over ``n`` processes."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("need at least one process")
        if self.n > 20:
            raise ValueError("state space of 2^n + 1 states is impractical for n > 20")

    # ------------------------------------------------------------------ sizes
    @property
    def full_mask(self) -> int:
        """Bit mask with every process's bit set (the all-ones pattern)."""
        return (1 << self.n) - 1

    @property
    def n_states(self) -> int:
        """Total number of states: entry + intermediates + absorbing = 2^n + 1."""
        return (1 << self.n) + 1

    @property
    def n_transient(self) -> int:
        """Number of transient states (everything except the absorbing state)."""
        return 1 << self.n

    @property
    def entry_index(self) -> int:
        """Index of the entry state ``S_r``."""
        return 0

    @property
    def absorbing_index(self) -> int:
        """Index of the absorbing state ``S_{r+1}``."""
        return 1 << self.n

    # ------------------------------------------------------------------ encoding
    def index_of_mask(self, mask: int) -> int:
        """Map a bit mask to its state index (paper numbering ``mask + 1``).

        The all-ones mask maps to the absorbing state.
        """
        self._check_mask(mask)
        return mask + 1

    def mask_of_index(self, index: int) -> int:
        """Inverse of :meth:`index_of_mask` for intermediate/absorbing states.

        The entry state also corresponds to the all-ones pattern dynamically; this
        method returns ``full_mask`` for both the entry and the absorbing index.
        """
        if index == self.entry_index:
            return self.full_mask
        if index == self.absorbing_index:
            return self.full_mask
        if not (1 <= index < self.absorbing_index):
            raise ValueError(f"state index {index} out of range")
        return index - 1

    def _check_mask(self, mask: int) -> None:
        if not (0 <= mask <= self.full_mask):
            raise ValueError(f"mask {mask} out of range for n={self.n}")

    def is_absorbing(self, index: int) -> bool:
        return index == self.absorbing_index

    def is_entry(self, index: int) -> bool:
        return index == self.entry_index

    def is_intermediate(self, index: int) -> bool:
        return 0 < index < self.absorbing_index

    # ------------------------------------------------------------------ bit helpers
    def bit(self, mask: int, process: int) -> int:
        """The ``x_i`` value of *process* in *mask*."""
        self._check_process(process)
        return (mask >> process) & 1

    def set_bit(self, mask: int, process: int) -> int:
        self._check_process(process)
        return mask | (1 << process)

    def clear_bit(self, mask: int, process: int) -> int:
        self._check_process(process)
        return mask & ~(1 << process)

    def ones(self, mask: int) -> List[int]:
        """Processes whose last action was a recovery point (``x_i = 1``)."""
        return [p for p in range(self.n) if (mask >> p) & 1]

    def zeros(self, mask: int) -> List[int]:
        """Processes whose last action was an interaction (``x_i = 0``)."""
        return [p for p in range(self.n) if not (mask >> p) & 1]

    def count_ones(self, mask: int) -> int:
        return bin(mask & self.full_mask).count("1")

    def _check_process(self, process: int) -> None:
        if not (0 <= process < self.n):
            raise ValueError(f"process {process} out of range [0, {self.n})")

    # ------------------------------------------------------------------ iteration
    def intermediate_indices(self) -> Iterator[int]:
        """Indices of all intermediate states, ascending."""
        return iter(range(1, self.absorbing_index))

    def transient_indices(self) -> Iterator[int]:
        """Indices of all transient states (entry + intermediates)."""
        return iter(range(self.absorbing_index))

    # ------------------------------------------------------------------ vectorized
    def intermediate_masks(self) -> np.ndarray:
        """All intermediate bit masks ``0 … 2^n − 2`` as one integer array.

        The all-ones mask is excluded: it is the absorbing state, which has no
        departures.  This is the mask enumeration the sparse generator builder
        vectorises over (one numpy selection per transition rule instead of a
        Python loop over ``2^n`` states).
        """
        return np.arange(self.full_mask, dtype=np.int64)

    def indices_of_masks(self, masks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`index_of_mask`: all-ones masks map to absorbing."""
        masks = np.asarray(masks, dtype=np.int64)
        if masks.size and (masks.min() < 0 or masks.max() > self.full_mask):
            raise ValueError(f"mask out of range for n={self.n}")
        return np.where(masks == self.full_mask, self.absorbing_index, masks + 1)

    def popcounts(self, masks: np.ndarray) -> np.ndarray:
        """Number of one-bits of each mask (vectorised :meth:`count_ones`)."""
        masks = np.asarray(masks, dtype=np.int64)
        counts = np.zeros(masks.shape, dtype=np.int64)
        for p in range(self.n):
            counts += (masks >> p) & 1
        return counts

    def tuple_of_index(self, index: int) -> Tuple[int, ...]:
        """The ``(x_1,…,x_n)`` tuple of a state (entry/absorbing give all ones)."""
        mask = self.mask_of_index(index)
        return tuple((mask >> p) & 1 for p in range(self.n))

    def label(self, index: int) -> str:
        """Readable label: ``S_r``, ``S_{r+1}``, or the bit tuple."""
        if self.is_entry(index):
            return "S_r"
        if self.is_absorbing(index):
            return "S_{r+1}"
        bits = "".join(str(b) for b in self.tuple_of_index(index))
        return f"({bits})"
