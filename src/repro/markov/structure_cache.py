"""Structure-cached assembly of the recovery-line generator.

Sweeps that vary only the *rates* (``μ_i``, ``λ_ij``) rebuild exactly the same
transition *structure* every cell: which ``(row, col)`` pairs of the
``(2^n + 1)²`` generator are populated depends only on ``n`` and on which
interaction rates are non-zero, never on the rate values themselves.  This
module factors :func:`repro.markov.generator.build_generator_sparse` into

* a **structural phase** — :class:`GeneratorStructure`: the
  :class:`~repro.markov.state_space.AsyncStateSpace`, the intermediate-mask
  enumeration, and the concatenated COO row/col index arrays, each index range
  tagged with the rule parameter (``μ_i`` or ``λ_ij``) that fills it — memoized
  per ``(n, interaction zero-pattern)`` in a small process-local LRU; and
* a **data-refill phase** — :meth:`GeneratorStructure.refill_sparse` /
  :meth:`GeneratorStructure.fill_dense`: rewrite the value array from a new
  parameter set and re-run only the cheap final assembly.

A 1000-cell heterogeneous sweep therefore enumerates the state space and
builds the index arrays once, and every subsequent cell is a vectorised value
fill.

Bit-identity contract
---------------------
Both refill paths reproduce the legacy builders *exactly*:

* :meth:`refill_sparse` keeps the COO entry order of
  :func:`~repro.markov.generator.build_generator_sparse` (the cached row/col
  arrays are recorded from the same rule loops) and the same
  ``coo_matrix(...).tocsr()`` duplicate-summing conversion, so the CSR
  ``data``/``indices``/``indptr`` are bit-for-bit those of the uncached
  builder.
* :meth:`fill_dense` scatter-accumulates the same entries (a ``bincount`` over
  the flattened matrix, summing duplicates in entry order) and then applies
  the *verbatim* diagonal ops of
  :func:`~repro.markov.generator.build_generator`.  Distinct rules never
  collide on a ``(row, col)`` cell (they change the popcount by +1, −1 and −2
  respectively), and the only duplicates — the per-partner R3 contributions —
  are recorded in ascending-partner order, the order the dense builder's
  ``sum(pair_rate(i, j) for j in zeros)`` accumulates them in.  Left-to-right
  float addition from 0.0 is the same in both, so the scattered ``H`` equals
  the loop-built ``H`` bit for bit (pinned by tests/markov/
  test_structure_cache.py).

The memo key covers the full upper-triangle zero-pattern of the pair rates, so
a sweep cell that *zeroes* (or un-zeroes) an interaction misses the cache and
gets a fresh structure; ``μ`` values never affect the key (both legacy
builders emit R1/R4 entries unconditionally, even for ``μ_i = 0``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy import sparse

from repro.core.parameters import SystemParameters
from repro.markov.state_space import AsyncStateSpace

__all__ = [
    "GeneratorStructure",
    "cache_info",
    "clear_structure_cache",
    "structure_for",
]

#: Structures retained per process.  A structure is O(n² · 2^n) integers —
#: a handful of MB at n=14 — and sweeps touch very few distinct patterns,
#: so a small LRU is plenty.
STRUCTURE_CACHE_SIZE = 16

#: Value-block tags: the rate that fills the block's index range.
_MU = 0          # params.mu[i]
_PAIR = 1        # params.pair_rate(i, j)
_ENTRY_TOTAL = 2  # params.total_rp_rate (the R4 entry → absorbing rate)


@dataclass(frozen=True)
class _Block:
    """One contiguous COO index range filled by a single rate value."""

    start: int
    stop: int
    tag: int
    i: int = -1
    j: int = -1


class GeneratorStructure:
    """Rates-independent structure of the generator ``H`` for one zero-pattern.

    The index arrays are immutable after construction and safe to share
    across refills (only the :meth:`fill_dense_shared` scratch buffer
    mutates, see its docstring); obtain instances through
    :func:`structure_for` (memoized) rather than constructing directly.
    """

    def __init__(self, n: int, pattern: Tuple[Tuple[int, int], ...]) -> None:
        self.space = AsyncStateSpace(n)
        self.n = n
        #: Pairs ``(i, j)``, ``i < j``, with a non-zero interaction rate.
        self.pattern = pattern
        space = self.space
        full, m = space.full_mask, space.n_states
        masks = space.intermediate_masks()
        positive = set(pattern)

        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        blocks: List[_Block] = []
        cursor = 0

        def add(src: np.ndarray, dest: np.ndarray, tag: int,
                i: int = -1, j: int = -1) -> None:
            nonlocal cursor
            rows.append(src)
            cols.append(dest)
            blocks.append(_Block(cursor, cursor + src.size, tag, i, j))
            cursor += src.size

        # The loops below mirror build_generator_sparse entry for entry; the
        # entry *order* is part of the bit-identity contract (see module
        # docstring) and must not be changed independently of it.
        # R1: a 0-bit process establishes a recovery point.
        for i in range(n):
            bit = 1 << i
            sel = masks[(masks & bit) == 0]
            add(sel + 1, space.indices_of_masks(sel | bit), _MU, i)

        for i in range(n):
            bi = 1 << i
            for j in range(i + 1, n):
                if (i, j) not in positive:
                    continue
                bj = 1 << j
                # R2: both bits set — clear both.
                sel = masks[((masks & bi) != 0) & ((masks & bj) != 0)]
                add(sel + 1, (sel & ~bi & ~bj) + 1, _PAIR, i, j)
                # R3: exactly one of the pair's bits set — clear it.
                sel = masks[((masks & bi) != 0) & ((masks & bj) == 0)]
                add(sel + 1, (sel & ~bi) + 1, _PAIR, i, j)
                sel = masks[((masks & bj) != 0) & ((masks & bi) == 0)]
                add(sel + 1, (sel & ~bj) + 1, _PAIR, i, j)

        # Entry state S_r: R4 plus pair interactions from the all-ones pattern.
        entry = np.array([space.entry_index])
        add(entry, np.array([space.absorbing_index]), _ENTRY_TOTAL)
        for i in range(n):
            for j in range(i + 1, n):
                if (i, j) not in positive:
                    continue
                dest_mask = full & ~(1 << i) & ~(1 << j)
                add(entry, np.array([dest_mask + 1]), _PAIR, i, j)

        self.row = np.concatenate(rows)
        self.col = np.concatenate(cols)
        self.blocks: Tuple[_Block, ...] = tuple(blocks)
        self.nnz = int(self.row.size)
        self.m = m
        diag = np.arange(m)
        #: Off-diagonal entries followed by one diagonal entry per state —
        #: the exact COO layout build_generator_sparse hands to coo_matrix.
        self.row_with_diag = np.concatenate([self.row, diag])
        self.col_with_diag = np.concatenate([self.col, diag])
        #: Flattened (row-major) cell index of every COO entry, for the dense
        #: bincount scatter.
        self.linear = self.row * m + self.col
        # Scratch matrix for fill_dense_shared, allocated on first use.
        self._dense_scratch: np.ndarray | None = None

    # ------------------------------------------------------------------ refill
    def fill_values(self, params: SystemParameters) -> np.ndarray:
        """The COO value array for *params* (off-diagonal entries only)."""
        if params.n != self.n:
            raise ValueError(f"structure is for n={self.n}, got n={params.n}")
        val = np.empty(self.nnz)
        for block in self.blocks:
            if block.tag == _MU:
                rate = float(params.mu[block.i])
            elif block.tag == _PAIR:
                rate = params.pair_rate(block.i, block.j)
            else:
                rate = params.total_rp_rate
            val[block.start:block.stop] = rate
        return val

    def refill_sparse(self, params: SystemParameters) -> sparse.csr_matrix:
        """``H`` in CSR form — bit-identical to ``build_generator_sparse``."""
        val = self.fill_values(params)
        # Diagonal = negative off-diagonal row sums; the absorbing row has no
        # entries, so its diagonal is 0 and the row stays identically zero.
        diag = -np.bincount(self.row, weights=val, minlength=self.m)
        full_val = np.concatenate([val, diag])
        return sparse.coo_matrix(
            (full_val, (self.row_with_diag, self.col_with_diag)),
            shape=(self.m, self.m)).tocsr()

    def fill_dense(self, params: SystemParameters) -> np.ndarray:
        """Dense ``H`` — bit-identical to the loop-built ``build_generator``."""
        val = self.fill_values(params)
        m = self.m
        # Scatter-accumulate over the flattened matrix.  bincount adds the
        # duplicate contributions sequentially in entry order — the same
        # left-to-right float accumulation as the loop builder's per-state
        # ``sum`` (and as np.add.at), just without the per-element dispatch.
        H = np.bincount(self.linear, weights=val,
                        minlength=m * m).reshape(m, m)
        return self._finish_dense(H)

    def fill_dense_shared(self, params: SystemParameters) -> np.ndarray:
        """Dense ``H`` in a scratch buffer *owned by the structure*.

        Same bits as :meth:`fill_dense` (``np.add.at`` accumulates the
        duplicate entries in the same sequential order as the bincount and
        the loop builder), but the returned array is reused by the next call
        on this structure — it spares a multi-MB allocation per sweep cell.
        Callers must copy (or finish consuming) the buffer before refilling;
        :func:`~repro.markov.generator.build_phase_type` qualifies because
        :class:`~repro.markov.ctmc.PhaseType` makes a defensive copy of ``T``
        up front.  Structures are process-local (the cache is never shared
        across workers), so the single scratch matches the evaluators'
        in-process serial assembly.
        """
        H = self._dense_scratch
        if H is None or H.shape[0] != self.m:
            H = np.zeros((self.m, self.m), dtype=float)
            self._dense_scratch = H
        else:
            H.fill(0.0)
        np.add.at(H, (self.row, self.col), self.fill_values(params))
        return self._finish_dense(H)

    def _finish_dense(self, H: np.ndarray) -> np.ndarray:
        # Verbatim diagonal ops of build_generator, on identical row contents.
        m = self.m
        np.fill_diagonal(H, 0.0)
        H[np.arange(m), np.arange(m)] = -H.sum(axis=1)
        H[self.space.absorbing_index, :] = 0.0
        return H


# ----------------------------------------------------------------------- memo
_CACHE: "OrderedDict[Tuple[int, Tuple[Tuple[int, int], ...]], GeneratorStructure]" \
    = OrderedDict()
_STATS = {"hits": 0, "misses": 0}


def _pattern_of(params: SystemParameters) -> Tuple[Tuple[int, int], ...]:
    """Upper-triangle zero-pattern of the pair rates, as the positive pairs."""
    n = params.n
    return tuple((i, j) for i in range(n) for j in range(i + 1, n)
                 if params.pair_rate(i, j) > 0.0)


def structure_for(params: SystemParameters) -> GeneratorStructure:
    """The (memoized) generator structure for *params*' size and zero-pattern."""
    key = (params.n, _pattern_of(params))
    structure = _CACHE.get(key)
    if structure is not None:
        _STATS["hits"] += 1
        _CACHE.move_to_end(key)
        return structure
    _STATS["misses"] += 1
    structure = GeneratorStructure(params.n, key[1])
    _CACHE[key] = structure
    while len(_CACHE) > STRUCTURE_CACHE_SIZE:
        _CACHE.popitem(last=False)
    return structure


def cache_info() -> Dict[str, int]:
    """Process-local cache counters: ``hits``, ``misses``, ``size``."""
    return {"hits": _STATS["hits"], "misses": _STATS["misses"],
            "size": len(_CACHE)}


def clear_structure_cache() -> None:
    """Drop every cached structure and reset the counters (tests, benches)."""
    _CACHE.clear()
    _STATS["hits"] = _STATS["misses"] = 0
