"""Absorbing discrete-time Markov-chain analysis.

Used by :mod:`repro.markov.split_chain` (the paper's chain ``Y_d``) to compute the
expected number of visits to each transient state before absorption, from which the
mean recovery-point counts ``E[L_i]`` follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.linalg import (
    absorption_probabilities,
    expected_visits_absorbing,
    fundamental_matrix,
)

__all__ = ["AbsorbingDTMC"]


@dataclass(frozen=True)
class AbsorbingDTMC:
    """A DTMC partitioned into transient and absorbing states.

    Parameters
    ----------
    P:
        Full row-stochastic transition matrix.
    absorbing:
        Indices (into ``P``) of the absorbing states.  Their rows must be unit rows
        (probability 1 of staying put).
    """

    P: np.ndarray
    absorbing: tuple

    def __post_init__(self) -> None:
        P = np.asarray(self.P, dtype=float).copy()
        if P.ndim != 2 or P.shape[0] != P.shape[1]:
            raise ValueError("P must be square")
        if np.any(P < -1e-12):
            raise ValueError("transition probabilities must be non-negative")
        if not np.allclose(P.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("rows of P must sum to 1")
        absorbing = tuple(sorted(int(a) for a in self.absorbing))
        for a in absorbing:
            if not (0 <= a < P.shape[0]):
                raise ValueError(f"absorbing index {a} out of range")
            if abs(P[a, a] - 1.0) > 1e-9:
                raise ValueError(f"state {a} declared absorbing but P[{a},{a}] != 1")
        P.setflags(write=False)
        object.__setattr__(self, "P", P)
        object.__setattr__(self, "absorbing", absorbing)

    # ------------------------------------------------------------------ structure
    @property
    def n_states(self) -> int:
        return int(self.P.shape[0])

    @property
    def transient(self) -> tuple:
        absorbing = set(self.absorbing)
        return tuple(s for s in range(self.n_states) if s not in absorbing)

    def _transient_position(self, state: int) -> int:
        try:
            return self.transient.index(state)
        except ValueError as exc:
            raise ValueError(f"state {state} is not transient") from exc

    @property
    def transient_block(self) -> np.ndarray:
        idx = list(self.transient)
        return self.P[np.ix_(idx, idx)]

    @property
    def absorbing_block(self) -> np.ndarray:
        t_idx = list(self.transient)
        a_idx = list(self.absorbing)
        return self.P[np.ix_(t_idx, a_idx)]

    # ------------------------------------------------------------------ analysis
    def fundamental(self) -> np.ndarray:
        """Fundamental matrix ``N = (I − T)^{-1}`` over the transient states."""
        return fundamental_matrix(self.transient_block)

    def expected_visits(self, start: int) -> np.ndarray:
        """Expected visit counts to each *transient* state before absorption.

        The returned array is indexed like :attr:`transient` (not like ``P``); the
        initial occupancy of the start state counts as one visit.
        """
        return expected_visits_absorbing(self.transient_block,
                                         self._transient_position(start))

    def expected_visits_by_state(self, start: int) -> dict:
        """Mapping ``state index -> expected visits`` for transient states."""
        visits = self.expected_visits(start)
        return {state: float(visits[pos]) for pos, state in enumerate(self.transient)}

    def absorption_distribution(self, start: int) -> np.ndarray:
        """Probability of ending in each absorbing state (ordered as ``absorbing``)."""
        return absorption_probabilities(self.transient_block, self.absorbing_block,
                                        self._transient_position(start))

    def expected_steps_to_absorption(self, start: int) -> float:
        """Mean number of steps before absorption, starting from *start*."""
        return float(self.expected_visits(start).sum())

    def simulate_to_absorption(self, start: int, rng: np.random.Generator,
                               max_steps: int = 10_000_000) -> Sequence[int]:
        """Sample one trajectory (sequence of visited states, ending absorbed)."""
        state = int(start)
        path = [state]
        absorbing = set(self.absorbing)
        for _ in range(max_steps):
            if state in absorbing:
                return path
            state = int(rng.choice(self.n_states, p=self.P[state]))
            path.append(state)
        raise RuntimeError("simulation did not reach an absorbing state")
