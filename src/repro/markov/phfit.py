"""Phase-type fitting of non-exponential failure laws (Weibull, lognormal).

The paper's Markov analysis hinges on assumption 5 — exponential recovery-point
interarrivals.  The ``failure_law`` axis of :class:`~repro.api.spec.SystemSpec`
relaxes that assumption to Weibull and lognormal renewal processes: each
process establishes recovery points at the renewal epochs of its own law
(scaled to keep the mean interarrival at ``1/μ_i``), every renewal timer is
redrawn when a recovery line forms, and pairwise interactions stay Poisson.
The stochastic engines sample that law exactly; this module is what keeps the
*analytic* engine usable as a controlled approximation:

* :func:`fit_phase_type` maps a :class:`TargetLaw` onto a small phase-type
  distribution — a two-moment minimal fit (mixed Erlang below cv² = 1,
  balanced-means hyperexponential above) or, for an explicit ``order``, a
  cdf-binned common-rate Erlang mixture whose fit error shrinks as the order
  grows (Tijms' discretisation scheme);
* :func:`select_order` walks the order ladder until the fit-quality
  diagnostic meets a requested tolerance;
* :func:`renewal_phase_type` assembles the *expanded* recovery-line chain —
  states are ``(mask, phase vector)`` pairs — which is **exact** for the
  fitted phase-type law: because every renewal timer resets at line
  formation, the intervals are i.i.d. and the only analytic error is the
  phase-type fit error itself, so the approximation tightens with the fitter
  order (asserted by the conformance suite).

With order-1 (exponential) phases the expanded chain collapses, state for
state, to the original ``2^n``-state chain of Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from math import ceil, exp, log, sqrt
from typing import Optional, Tuple

import numpy as np
from scipy import sparse, stats
from scipy.special import gamma as _gamma_fn

from repro.core.parameters import SystemParameters
from repro.markov.ctmc import PhaseType
from repro.markov.operators import select_backend

__all__ = [
    "DEFAULT_SELECT_TOL",
    "EXPANDED_STATE_LIMIT",
    "FITTABLE_LAWS",
    "MAX_FIT_ORDER",
    "PHFit",
    "RenewalChain",
    "TargetLaw",
    "expanded_state_count",
    "fit_phase_type",
    "renewal_phase_type",
    "select_order",
]

#: Interarrival laws the fitters (and the renewal samplers) understand.
FITTABLE_LAWS = ("weibull", "lognormal")

#: Largest order :func:`select_order` will climb to.
MAX_FIT_ORDER = 64

#: Default sup-norm CDF tolerance of :func:`select_order`.
DEFAULT_SELECT_TOL = 0.02

#: Hard cap on the expanded chain's transient state count
#: (``2^n · order^n``); beyond it the analytic approximation is pointless —
#: the stochastic engines sample the true law exactly and cheaply.
EXPANDED_STATE_LIMIT = 262_144

#: Probe quantiles for the CDF-distance diagnostic (sup-norm over this grid).
_PROBE_QUANTILES = np.linspace(0.01, 0.99, 99)


@dataclass(frozen=True)
class TargetLaw:
    """A non-exponential interarrival law to be fitted.

    ``name`` is one of :data:`FITTABLE_LAWS`; ``shape`` is the Weibull shape
    ``k`` or the lognormal ``σ``; ``mean`` fixes the time scale (both families
    are scale families at fixed shape, so a unit-mean fit rescales exactly).
    """

    name: str
    shape: float
    mean: float = 1.0

    def __post_init__(self) -> None:
        if self.name not in FITTABLE_LAWS:
            raise ValueError(f"unknown failure law {self.name!r}; fittable "
                             f"laws: {', '.join(FITTABLE_LAWS)}")
        if not (float(self.shape) > 0.0):
            raise ValueError("the shape parameter must be positive")
        if not (float(self.mean) > 0.0):
            raise ValueError("the mean must be positive")
        object.__setattr__(self, "shape", float(self.shape))
        object.__setattr__(self, "mean", float(self.mean))

    @cached_property
    def _dist(self):
        """The frozen scipy distribution with the requested mean."""
        if self.name == "weibull":
            scale = self.mean / _gamma_fn(1.0 + 1.0 / self.shape)
            return stats.weibull_min(self.shape, scale=scale)
        sigma = self.shape
        mu_ln = log(self.mean) - 0.5 * sigma * sigma
        return stats.lognorm(sigma, scale=exp(mu_ln))

    def cdf(self, times) -> np.ndarray:
        return self._dist.cdf(times)

    def ppf(self, q) -> np.ndarray:
        return self._dist.ppf(q)

    def variance(self) -> float:
        if self.name == "weibull":
            g1 = _gamma_fn(1.0 + 1.0 / self.shape)
            g2 = _gamma_fn(1.0 + 2.0 / self.shape)
            return self.mean * self.mean * (g2 / (g1 * g1) - 1.0)
        sigma2 = self.shape * self.shape
        return self.mean * self.mean * (exp(sigma2) - 1.0)

    def cv2(self) -> float:
        """Squared coefficient of variation (drives the fitter family)."""
        return self.variance() / (self.mean * self.mean)

    def sample(self, rng: np.random.Generator, size=None):
        """Exact draws of the law (the stochastic engines' ground truth)."""
        if self.name == "weibull":
            scale = self.mean / _gamma_fn(1.0 + 1.0 / self.shape)
            return rng.weibull(self.shape, size) * scale
        sigma = self.shape
        return rng.lognormal(log(self.mean) - 0.5 * sigma * sigma, sigma, size)


@dataclass(frozen=True)
class PHFit:
    """A fitted phase-type law plus its fit-quality diagnostics.

    ``family`` names the construction (``"erlang-mixture"``,
    ``"hyperexponential"``, ``"erlang-grid"``, ``"exponential"``);
    ``cdf_distance`` is the sup-norm distance between the fitted and the
    target CDF over the probe-quantile grid — the quantity
    :func:`select_order` drives below its tolerance, and the quantity the
    conformance suite's documented error bounds are stated in.
    """

    law: TargetLaw
    family: str
    order: int
    phase_type: PhaseType
    mean_rel_error: float
    variance_rel_error: float
    cdf_distance: float


def _chain_phase_type(weights: np.ndarray, rate: float) -> PhaseType:
    """Common-rate Erlang mixture as a bidiagonal phase-type distribution.

    State ``s`` means ``s + 1`` exponential stages (rate ``rate``) remain
    before absorption; ``weights[j - 1]`` is the probability of starting with
    ``j`` stages.  One shared representation serves the two-moment mixed
    Erlang and the cdf-binned grid fit.
    """
    order = int(weights.shape[0])
    T = np.zeros((order, order))
    idx = np.arange(order)
    T[idx, idx] = -rate
    if order > 1:
        T[idx[1:], idx[1:] - 1] = rate
    return PhaseType(alpha=weights, T=T)


def _two_moment_fit(law: TargetLaw) -> Tuple[str, PhaseType]:
    """Minimal-order fit matching the first two moments exactly.

    cv² ≤ 1: the classic mixture of ``Erlang(k−1)`` and ``Erlang(k)`` with a
    common rate, ``k = ⌈1/cv²⌉`` (Tijms); cv² > 1: the balanced-means
    two-phase hyperexponential.
    """
    cv2 = law.cv2()
    mean = law.mean
    if abs(cv2 - 1.0) <= 1e-9:
        return "exponential", _chain_phase_type(np.ones(1), 1.0 / mean)
    if cv2 < 1.0:
        k = max(2, ceil(1.0 / cv2))
        p = (k * cv2 - sqrt(k * (1.0 + cv2) - k * k * cv2)) / (1.0 + cv2)
        rate = (k - p) / mean
        weights = np.zeros(k)
        weights[k - 2] = p              # k − 1 stages with probability p
        weights[k - 1] = 1.0 - p        # k stages otherwise
        return "erlang-mixture", _chain_phase_type(weights, rate)
    p1 = 0.5 * (1.0 + sqrt((cv2 - 1.0) / (cv2 + 1.0)))
    rates = np.array([2.0 * p1 / mean, 2.0 * (1.0 - p1) / mean])
    T = np.diag(-rates)
    return "hyperexponential", PhaseType(alpha=np.array([p1, 1.0 - p1]), T=T)


def _grid_fit(law: TargetLaw, order: int) -> PhaseType:
    """CDF-binned common-rate Erlang mixture of the requested *order*.

    The target CDF is binned on a uniform grid reaching the
    ``1 − 1/(2·order)`` quantile; bin ``j`` maps to ``Erlang(j)`` stages at
    the common rate ``1/Δ`` (the tail mass lands in the last bin), and the
    time axis is rescaled once so the mean is matched *exactly* — the
    remaining error is pure shape error and vanishes as the order grows.
    """
    if order < 2:
        raise ValueError("the grid fit needs order >= 2")
    horizon = float(law.ppf(1.0 - 1.0 / (2.0 * order)))
    delta = horizon / order
    edges = delta * np.arange(order + 1)
    cdf = np.asarray(law.cdf(edges))
    weights = np.diff(cdf)
    weights[-1] = 1.0 - cdf[-2]         # tail mass joins the last bin
    weights = np.maximum(weights, 0.0)
    weights /= weights.sum()
    # Exact-mean rescale: the binned mean is Δ·Σ j·p_j; scaling the common
    # rate by (binned mean / target mean) rescales time without reshaping.
    binned_mean = delta * float(weights @ np.arange(1, order + 1))
    rate = (1.0 / delta) * (binned_mean / law.mean)
    return _chain_phase_type(weights, rate)


def _diagnose(law: TargetLaw, family: str, ph: PhaseType) -> PHFit:
    probe = np.asarray(law.ppf(_PROBE_QUANTILES), dtype=float)
    distance = float(np.max(np.abs(np.asarray(ph.cdf(probe))
                                   - np.asarray(law.cdf(probe)))))
    mean_err = abs(ph.mean() - law.mean) / law.mean
    target_var = law.variance()
    var_err = abs(ph.variance() - target_var) / target_var
    return PHFit(law=law, family=family, order=ph.order, phase_type=ph,
                 mean_rel_error=float(mean_err),
                 variance_rel_error=float(var_err),
                 cdf_distance=distance)


def fit_phase_type(law: TargetLaw, order: Optional[int] = None) -> PHFit:
    """Fit *law* as a phase-type distribution.

    ``order=None`` returns the minimal two-moment fit (mean and variance
    exact).  An explicit ``order`` is a phase *budget*: the best of the
    cdf-binned Erlang grid at that order and the two-moment fit (when it
    fits the budget) by CDF distance, so the diagnostic never worsens as
    the budget grows.  ``order=1`` is the exponential of the same mean —
    the documented baseline the error bounds are stated against.
    """
    if order is None:
        family, ph = _two_moment_fit(law)
        return _diagnose(law, family, ph)
    order = int(order)
    if order < 1:
        raise ValueError("order must be >= 1")
    if order > MAX_FIT_ORDER:
        raise ValueError(f"order {order} exceeds MAX_FIT_ORDER "
                         f"({MAX_FIT_ORDER})")
    if order == 1:
        return _diagnose(law, "exponential",
                         _chain_phase_type(np.ones(1), 1.0 / law.mean))
    best = _diagnose(law, "erlang-grid", _grid_fit(law, order))
    family, ph = _two_moment_fit(law)
    if ph.order <= order:
        moment = _diagnose(law, family, ph)
        if moment.cdf_distance < best.cdf_distance:
            best = moment
    return best


def select_order(law: TargetLaw, tol: float = DEFAULT_SELECT_TOL,
                 max_order: int = MAX_FIT_ORDER) -> PHFit:
    """Smallest fit whose CDF distance meets *tol* (order-ladder search).

    Starts from the minimal two-moment fit and doubles the grid order until
    the diagnostic passes or *max_order* is reached; returns the best fit
    found either way (callers check ``fit.cdf_distance`` when the tolerance
    is a hard requirement).
    """
    if tol <= 0.0:
        raise ValueError("tol must be positive")
    best = fit_phase_type(law)
    if best.cdf_distance <= tol:
        return best
    order = max(4, 2 * best.order)
    while order <= max_order:
        candidate = fit_phase_type(law, order)
        if candidate.cdf_distance < best.cdf_distance:
            best = candidate
        if best.cdf_distance <= tol:
            return best
        order *= 2
    return best


# --------------------------------------------------------------------------
# The expanded renewal chain
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RenewalChain:
    """The expanded chain of a renewal system plus the fit that built it."""

    phase_type: PhaseType
    fit: PHFit
    n_states: int


def expanded_state_count(n: int, order: int) -> int:
    """Transient states of the expanded chain: ``2^n · order^n``."""
    return (1 << int(n)) * int(order) ** int(n)


def renewal_phase_type(params: SystemParameters, law: str, shape: float, *,
                       order: Optional[int] = None,
                       backend: str = "auto") -> RenewalChain:
    """Phase-type distribution of ``X`` under a renewal failure law.

    Each process establishes recovery points at the renewal epochs of
    ``law(shape)`` scaled to mean ``1/μ_i``; all renewal timers reset when a
    recovery line forms; interactions stay Poisson at ``λ_ij``.  The law is
    replaced by its phase-type fit (``order=None`` → two-moment minimal,
    else the cdf-binned grid fit) and the chain is expanded over
    ``(mask, phase-vector)`` states — entry states reuse the full-mask slot,
    mirroring the original chain's indexing, and the result is *exact* for
    the fitted law (the renewal resets make the intervals i.i.d.).

    Because both families are scale families at fixed shape, one unit-mean
    fit is shared by all processes and rescaled by ``μ_i`` per process.
    """
    fit = fit_phase_type(TargetLaw(law, shape, 1.0), order)
    unit = fit.phase_type
    k = unit.order
    n = params.n
    n_states = expanded_state_count(n, k)
    if n_states > EXPANDED_STATE_LIMIT:
        raise ValueError(
            f"the expanded renewal chain has {n_states} states "
            f"(n={n}, order={k}), beyond EXPANDED_STATE_LIMIT "
            f"({EXPANDED_STATE_LIMIT}); lower the fitter order or use a "
            "stochastic engine — they sample the true law exactly")
    T_unit = unit.T if not unit.is_sparse else unit.T.toarray()
    T_unit = np.asarray(T_unit, dtype=float)
    t0_unit = np.asarray(unit.exit_vector, dtype=float)
    alpha_unit = np.asarray(unit.alpha, dtype=float)
    mu = np.asarray(params.mu, dtype=float)

    K = k ** n
    full = (1 << n) - 1
    masks = np.arange(full + 1)
    phase_idx = np.arange(K)
    # Mixed-radix phase digits: digit i of a phase index is process i's phase.
    digits = [(phase_idx // (k ** i)) % k for i in range(n)]

    rows, cols, vals = [], [], []

    def add(mask_src: np.ndarray, phase_src: np.ndarray,
            mask_dst: np.ndarray, phase_dst: np.ndarray, rate: float) -> None:
        rows.append((mask_src[:, None] * K + phase_src[None, :]).ravel())
        cols.append((mask_dst[:, None] * K + phase_dst[None, :]).ravel())
        vals.append(np.full(mask_src.size * phase_src.size, rate))

    for i in range(n):
        stride = k ** i
        bit = 1 << i
        live_masks = masks[(masks | bit) != full]   # RP here does not absorb
        for p in range(k):
            sel = phase_idx[digits[i] == p]
            # Internal phase moves of process i (mask unchanged).
            for q in range(k):
                if q == p or T_unit[p, q] <= 0.0:
                    continue
                add(masks, sel, masks, sel + (q - p) * stride,
                    float(T_unit[p, q]) * mu[i])
            # Renewal epoch: the RP fires, bit i sets, phase i resets to α.
            # Masks where the RP completes the line (incl. the entry states
            # at the full-mask slot) go to absorption — diagonal only.
            if t0_unit[p] <= 0.0:
                continue
            for q in range(k):
                if alpha_unit[q] <= 0.0:
                    continue
                add(live_masks, sel, live_masks | bit,
                    sel + (q - p) * stride,
                    float(t0_unit[p]) * float(alpha_unit[q]) * mu[i])

    # Poisson pair interactions clear both bits; phases are untouched
    # (interactions never disturb the renewal timers).  Pairs with neither
    # bit set are no-change events and are not transitions of the chain.
    for i in range(n):
        bi = 1 << i
        for j in range(i + 1, n):
            rate = params.pair_rate(i, j)
            if rate <= 0.0:
                continue
            bj = 1 << j
            sel_masks = masks[(masks & (bi | bj)) != 0]
            add(sel_masks, phase_idx, sel_masks & ~bi & ~bj, phase_idx, rate)

    # Absorption rates (for the diagonal): process i's renewal epoch from a
    # mask whose only unset bit is i — or from an entry state — forms a line.
    absorb = np.zeros((full + 1, K))
    for i in range(n):
        bit = 1 << i
        closing = masks[(masks | bit) == full]
        absorb[closing] += t0_unit[digits[i]] * mu[i]

    row = np.concatenate(rows)
    col = np.concatenate(cols)
    val = np.concatenate(vals)
    diag = -(np.bincount(row, weights=val, minlength=n_states)
             + absorb.ravel())
    row = np.concatenate([row, np.arange(n_states)])
    col = np.concatenate([col, np.arange(n_states)])
    val = np.concatenate([val, diag])
    T = sparse.coo_matrix((val, (row, col)),
                          shape=(n_states, n_states)).tocsr()

    # Entry: mask = full (all last actions are RPs), phases drawn fresh.
    alpha = np.zeros((full + 1, K))
    entry = np.ones(K)
    for i in range(n):
        entry *= alpha_unit[digits[i]]
    alpha[full] = entry

    chosen = select_backend(n_states, backend)
    ph = PhaseType(alpha=alpha.ravel(),
                   T=T.toarray() if chosen == "dense" else T)
    return RenewalChain(phase_type=ph, fit=fit, n_states=n_states)
