"""Assembly of the CTMC transition-rate matrix (rules R1–R4 of Section 2.2).

Given :class:`~repro.core.parameters.SystemParameters`, :func:`build_generator`
produces the full ``(2^n + 1) × (2^n + 1)`` generator matrix ``H`` (the paper's
notation) whose ``(u, v)`` entry is the transition rate from state ``u`` to state
``v``.  :func:`build_phase_type` extracts the transient sub-generator and packages
the absorption-time distribution — the interval ``X`` between successive recovery
lines — as a :class:`~repro.markov.ctmc.PhaseType` object.

Transition rules (paper numbering, processes 1-based there / 0-based here):

R1  A process with ``x_i = 0`` establishes a recovery point: ``x_i`` becomes 1, at
    rate ``μ_i``.  If that makes every bit 1, the next recovery line has formed and
    the transition targets the absorbing state.
R2  Two processes with ``x_i = x_j = 1`` interact: both bits drop to 0, at rate
    ``λ_ij``.
R3  A process with ``x_i = 1`` interacts with some process with ``x_j = 0``: bit
    ``i`` drops to 0 (bit ``j`` is already 0), at total rate ``Σ_{j∈B_i} λ_ij``.
R4  From the entry state ``S_r`` (all bits conceptually 1), any recovery point
    immediately yields the next recovery line: direct transition to ``S_{r+1}`` at
    rate ``Σ_k μ_k``.

Events that change no bits (an RP by a process whose bit is already 1, or an
interaction between two 0-bit processes) are not transitions of the chain; they are
accounted for by the uniformised chain ``Y_d`` when counting recovery points
(:mod:`repro.markov.split_chain`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.parameters import SystemParameters
from repro.markov.ctmc import PhaseType
from repro.markov.state_space import AsyncStateSpace

__all__ = ["build_generator", "build_phase_type", "transition_rate"]


def build_generator(params: SystemParameters) -> Tuple[np.ndarray, AsyncStateSpace]:
    """Build the full generator matrix ``H`` and its state space.

    Returns
    -------
    (H, space):
        ``H`` is a dense ``(2^n + 1)²`` array; ``space`` the index arithmetic
        helper.  Row sums are zero; the absorbing row is identically zero.
    """
    space = AsyncStateSpace(params.n)
    m = space.n_states
    H = np.zeros((m, m), dtype=float)
    n = params.n
    full = space.full_mask

    # --- entry state S_r -----------------------------------------------------
    entry = space.entry_index
    # R4: any recovery point completes a new line immediately.
    H[entry, space.absorbing_index] += params.total_rp_rate
    # R2: an interaction between any pair clears both bits.
    for i in range(n):
        for j in range(i + 1, n):
            rate = params.pair_rate(i, j)
            if rate <= 0.0:
                continue
            dest_mask = space.clear_bit(space.clear_bit(full, i), j)
            H[entry, space.index_of_mask(dest_mask)] += rate

    # --- intermediate states --------------------------------------------------
    for index in space.intermediate_indices():
        mask = space.mask_of_index(index)
        ones = space.ones(mask)
        zeros = space.zeros(mask)
        # R1: a 0-bit process establishes a recovery point.
        for i in zeros:
            dest_mask = space.set_bit(mask, i)
            dest = (space.absorbing_index if dest_mask == full
                    else space.index_of_mask(dest_mask))
            H[index, dest] += params.mu[i]
        # R2: two 1-bit processes interact.
        for a_pos in range(len(ones)):
            for b_pos in range(a_pos + 1, len(ones)):
                i, j = ones[a_pos], ones[b_pos]
                rate = params.pair_rate(i, j)
                if rate <= 0.0:
                    continue
                dest_mask = space.clear_bit(space.clear_bit(mask, i), j)
                H[index, space.index_of_mask(dest_mask)] += rate
        # R3: a 1-bit process interacts with a 0-bit process.
        for i in ones:
            rate = sum(params.pair_rate(i, j) for j in zeros)
            if rate <= 0.0:
                continue
            dest_mask = space.clear_bit(mask, i)
            H[index, space.index_of_mask(dest_mask)] += rate

    # --- diagonal --------------------------------------------------------------
    np.fill_diagonal(H, 0.0)
    H[np.arange(m), np.arange(m)] = -H.sum(axis=1)
    # Absorbing state: no departures.
    H[space.absorbing_index, :] = 0.0
    return H, space


def transition_rate(params: SystemParameters, source: int, dest: int) -> float:
    """Rate of the ``source → dest`` transition (state indices); 0 if none.

    Convenience accessor used by tests that check individual rules without building
    the whole matrix.
    """
    H, _space = build_generator(params)
    return float(H[source, dest])


def build_phase_type(params: SystemParameters) -> PhaseType:
    """Phase-type representation of the inter-recovery-line interval ``X``.

    The chain starts in the entry state ``S_r`` with probability 1; the transient
    sub-generator is the restriction of ``H`` to the ``2^n`` transient states.
    """
    H, space = build_generator(params)
    transient = list(space.transient_indices())
    T = H[np.ix_(transient, transient)]
    alpha = np.zeros(len(transient))
    alpha[space.entry_index] = 1.0
    return PhaseType(alpha=alpha, T=T)
