"""Assembly of the CTMC transition-rate matrix (rules R1–R4 of Section 2.2).

Given :class:`~repro.core.parameters.SystemParameters`, :func:`build_generator`
produces the full ``(2^n + 1) × (2^n + 1)`` generator matrix ``H`` (the paper's
notation) whose ``(u, v)`` entry is the transition rate from state ``u`` to state
``v``.  :func:`build_phase_type` extracts the transient sub-generator and packages
the absorption-time distribution — the interval ``X`` between successive recovery
lines — as a :class:`~repro.markov.ctmc.PhaseType` object.

Transition rules (paper numbering, processes 1-based there / 0-based here):

R1  A process with ``x_i = 0`` establishes a recovery point: ``x_i`` becomes 1, at
    rate ``μ_i``.  If that makes every bit 1, the next recovery line has formed and
    the transition targets the absorbing state.
R2  Two processes with ``x_i = x_j = 1`` interact: both bits drop to 0, at rate
    ``λ_ij``.
R3  A process with ``x_i = 1`` interacts with some process with ``x_j = 0``: bit
    ``i`` drops to 0 (bit ``j`` is already 0), at total rate ``Σ_{j∈B_i} λ_ij``.
R4  From the entry state ``S_r`` (all bits conceptually 1), any recovery point
    immediately yields the next recovery line: direct transition to ``S_{r+1}`` at
    rate ``Σ_k μ_k``.

Events that change no bits (an RP by a process whose bit is already 1, or an
interaction between two 0-bit processes) are not transitions of the chain; they are
accounted for by the uniformised chain ``Y_d`` when counting recovery points
(:mod:`repro.markov.split_chain`).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import sparse

from repro.core.parameters import SystemParameters
from repro.markov.ctmc import PhaseType
from repro.markov.operators import select_backend
from repro.markov.state_space import AsyncStateSpace

__all__ = ["build_generator", "build_generator_sparse", "build_phase_type",
           "transition_rate"]


def build_generator(params: SystemParameters) -> Tuple[np.ndarray, AsyncStateSpace]:
    """Build the full generator matrix ``H`` and its state space.

    Returns
    -------
    (H, space):
        ``H`` is a dense ``(2^n + 1)²`` array; ``space`` the index arithmetic
        helper.  Row sums are zero; the absorbing row is identically zero.
    """
    space = AsyncStateSpace(params.n)
    m = space.n_states
    H = np.zeros((m, m), dtype=float)
    n = params.n
    full = space.full_mask

    # --- entry state S_r -----------------------------------------------------
    entry = space.entry_index
    # R4: any recovery point completes a new line immediately.
    H[entry, space.absorbing_index] += params.total_rp_rate
    # R2: an interaction between any pair clears both bits.
    for i in range(n):
        for j in range(i + 1, n):
            rate = params.pair_rate(i, j)
            if rate <= 0.0:
                continue
            dest_mask = space.clear_bit(space.clear_bit(full, i), j)
            H[entry, space.index_of_mask(dest_mask)] += rate

    # --- intermediate states --------------------------------------------------
    for index in space.intermediate_indices():
        mask = space.mask_of_index(index)
        ones = space.ones(mask)
        zeros = space.zeros(mask)
        # R1: a 0-bit process establishes a recovery point.
        for i in zeros:
            dest_mask = space.set_bit(mask, i)
            dest = (space.absorbing_index if dest_mask == full
                    else space.index_of_mask(dest_mask))
            H[index, dest] += params.mu[i]
        # R2: two 1-bit processes interact.
        for a_pos in range(len(ones)):
            for b_pos in range(a_pos + 1, len(ones)):
                i, j = ones[a_pos], ones[b_pos]
                rate = params.pair_rate(i, j)
                if rate <= 0.0:
                    continue
                dest_mask = space.clear_bit(space.clear_bit(mask, i), j)
                H[index, space.index_of_mask(dest_mask)] += rate
        # R3: a 1-bit process interacts with a 0-bit process.
        for i in ones:
            rate = sum(params.pair_rate(i, j) for j in zeros)
            if rate <= 0.0:
                continue
            dest_mask = space.clear_bit(mask, i)
            H[index, space.index_of_mask(dest_mask)] += rate

    # --- diagonal --------------------------------------------------------------
    np.fill_diagonal(H, 0.0)
    H[np.arange(m), np.arange(m)] = -H.sum(axis=1)
    # Absorbing state: no departures.
    H[space.absorbing_index, :] = 0.0
    return H, space


def build_generator_sparse(params: SystemParameters
                           ) -> Tuple[sparse.csr_matrix, AsyncStateSpace]:
    """Build ``H`` directly in CSR form, without the dense ``(2^n+1)²`` array.

    The chain has only ``O(n² · 2^n)`` nonzeros (each state has at most ``n``
    R1 departures plus one per interacting pair), so the CSR form stays
    assembleable and usable far past the dense path's n≈10 memory wall.
    Assembly is fully vectorised: one numpy selection over all intermediate
    masks per (rule, process/pair) combination; duplicate ``(row, col)``
    entries — e.g. the per-pair R3 contributions the dense builder aggregates —
    are summed by the COO→CSR conversion.

    Agreement with the dense :func:`build_generator` (the small-``n`` ground
    truth) is pinned by tests.
    """
    space = AsyncStateSpace(params.n)
    n, full, m = params.n, space.full_mask, space.n_states
    masks = space.intermediate_masks()
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    vals: List[np.ndarray] = []

    def add(src: np.ndarray, dest: np.ndarray, rate: float) -> None:
        rows.append(src)
        cols.append(dest)
        vals.append(np.full(src.size, rate))

    # R1: a 0-bit process establishes a recovery point.
    for i in range(n):
        bit = 1 << i
        sel = masks[(masks & bit) == 0]
        add(sel + 1, space.indices_of_masks(sel | bit), float(params.mu[i]))

    for i in range(n):
        bi = 1 << i
        for j in range(i + 1, n):
            rate = params.pair_rate(i, j)
            if rate <= 0.0:
                continue
            bj = 1 << j
            # R2: both bits set — clear both.
            sel = masks[((masks & bi) != 0) & ((masks & bj) != 0)]
            add(sel + 1, (sel & ~bi & ~bj) + 1, rate)
            # R3: exactly one of the pair's bits set — clear it.
            sel = masks[((masks & bi) != 0) & ((masks & bj) == 0)]
            add(sel + 1, (sel & ~bi) + 1, rate)
            sel = masks[((masks & bj) != 0) & ((masks & bi) == 0)]
            add(sel + 1, (sel & ~bj) + 1, rate)

    # Entry state S_r: R4 plus pair interactions from the all-ones pattern.
    entry = np.array([space.entry_index])
    add(entry, np.array([space.absorbing_index]), params.total_rp_rate)
    for i in range(n):
        for j in range(i + 1, n):
            rate = params.pair_rate(i, j)
            if rate <= 0.0:
                continue
            dest_mask = full & ~(1 << i) & ~(1 << j)
            add(entry, np.array([dest_mask + 1]), rate)

    row = np.concatenate(rows)
    col = np.concatenate(cols)
    val = np.concatenate(vals)
    # Diagonal = negative off-diagonal row sums; the absorbing row has no
    # entries, so its diagonal is 0 and the row stays identically zero.
    diag = -np.bincount(row, weights=val, minlength=m)
    row = np.concatenate([row, np.arange(m)])
    col = np.concatenate([col, np.arange(m)])
    val = np.concatenate([val, diag])
    H = sparse.coo_matrix((val, (row, col)), shape=(m, m)).tocsr()
    return H, space


def transition_rate(params: SystemParameters, source: int, dest: int) -> float:
    """Rate of the ``source → dest`` transition (state indices); 0 if none.

    Convenience accessor used by tests that check individual rules without building
    the whole matrix.
    """
    H, _space = build_generator(params)
    return float(H[source, dest])


def build_phase_type(params: SystemParameters, *,
                     backend: str = "auto",
                     structure_cache: bool = True) -> PhaseType:
    """Phase-type representation of the inter-recovery-line interval ``X``.

    The chain starts in the entry state ``S_r`` with probability 1; the transient
    sub-generator is the restriction of ``H`` to the ``2^n`` transient states.

    ``backend`` selects the numeric representation of ``T``: ``"dense"`` (the
    small-``n`` ground truth), ``"sparse"`` (CSR + Krylov/sparse-LU evaluation,
    the only feasible path for large ``n``), or ``"auto"`` (size policy of
    :func:`repro.markov.operators.select_backend`).

    ``structure_cache`` (default on) assembles ``H`` through the memoized
    :mod:`~repro.markov.structure_cache`: the state space and COO index arrays
    are built once per ``(n, interaction zero-pattern)`` and every further
    call — e.g. the cells of a rates-only sweep — only rewrites the value
    array.  Both cached fills are bit-identical to the legacy builders (the
    loop-built :func:`build_generator` and :func:`build_generator_sparse`),
    so the flag only trades assembly time, never results.
    """
    space = AsyncStateSpace(params.n)
    chosen = select_backend(space.n_transient, backend)
    if structure_cache:
        from repro.markov.structure_cache import structure_for
        structure = structure_for(params)
        if chosen == "sparse":
            H_sparse = structure.refill_sparse(params)
            k = space.n_transient
            T = H_sparse[:k, :k].tocsr()
        else:
            # Scratch-buffer fill: PhaseType copies T defensively below, so
            # the structure-owned buffer is consumed before any refill.
            H = structure.fill_dense_shared(params)
            # The transient states are exactly indices 0 … 2^n − 1, so the
            # restriction is a plain leading sub-block; the view's elements
            # are the same floats np.ix_ would copy, and PhaseType makes its
            # own defensive copy anyway.
            T = H[:space.n_transient, :space.n_transient]
    elif chosen == "sparse":
        H_sparse, space = build_generator_sparse(params)
        k = space.n_transient
        T = H_sparse[:k, :k].tocsr()
    else:
        H, space = build_generator(params)
        transient = list(space.transient_indices())
        T = H[np.ix_(transient, transient)]
    alpha = np.zeros(space.n_transient)
    alpha[space.entry_index] = 1.0
    return PhaseType(alpha=alpha, T=T)
