"""Density and distribution of the inter-recovery-line interval (Figure 6).

Thin convenience wrappers over the phase-type machinery, plus the grid generator
used by the Figure 6 experiment.  The paper plots ``f_X(t)`` on a "normalised"
time axis from 0 to 2; the sharp spike near ``t = 0`` comes from the direct
``S_r → S_{r+1}`` transition (rule R4).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.parameters import SystemParameters
from repro.markov.generator import build_phase_type

__all__ = ["interval_density", "interval_cdf", "density_curve", "density_mass_check"]


def interval_density(params: SystemParameters,
                     times: Sequence[float] | float) -> np.ndarray | float:
    """Evaluate ``f_X(t)`` for the system described by *params*."""
    return build_phase_type(params).pdf(times)


def interval_cdf(params: SystemParameters,
                 times: Sequence[float] | float) -> np.ndarray | float:
    """Evaluate ``P(X ≤ t)`` for the system described by *params*."""
    return build_phase_type(params).cdf(times)


def density_curve(params: SystemParameters, *, t_max: float = 2.0,
                  n_points: int = 201) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(t, f_X(t))`` on a uniform grid — one curve of Figure 6."""
    if t_max <= 0.0:
        raise ValueError("t_max must be positive")
    if n_points < 2:
        raise ValueError("need at least two grid points")
    times = np.linspace(0.0, float(t_max), int(n_points))
    return times, np.asarray(interval_density(params, times))


def density_mass_check(params: SystemParameters, *, t_max: float = 50.0,
                       n_points: int = 2001) -> float:
    """Numerically integrate the density up to *t_max*; should be close to 1.

    Used as a sanity check in tests: the phase-type density must integrate to the
    CDF value at ``t_max``.
    """
    times, values = density_curve(params, t_max=t_max, n_points=n_points)
    return float(np.trapezoid(values, times))
