"""High-level façade over the asynchronous recovery-block analysis.

:class:`RecoveryLineIntervalModel` bundles the quantities Section 2.3 derives —
the density/moments of the interval ``X`` between successive recovery lines and the
mean recovery-point counts ``E[L_i]`` — behind one object, choosing the full or the
lumped (symmetric) chain automatically and caching the expensive pieces.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.parameters import SystemParameters
from repro.markov.ctmc import PhaseType
from repro.markov.generator import build_generator, build_phase_type
from repro.markov.montecarlo import ModelSimulator, SimulatedIntervals
from repro.markov.operators import check_backend_name, select_backend
from repro.markov.simplified import SimplifiedChain
from repro.markov.split_chain import absorption_by_process, expected_rp_counts
from repro.markov.state_space import AsyncStateSpace

__all__ = ["RecoveryLineIntervalModel"]


class RecoveryLineIntervalModel:
    """Analytic + Monte-Carlo model of the interval between recovery lines.

    Parameters
    ----------
    params:
        System parameters (``μ_i``, ``λ_ij``).
    prefer_simplified:
        Use the lumped chain of Figure 3 when the system is homogeneous; the full
        ``2^n``-state chain is used otherwise (or when False).  The lumped chain is
        the cheapest route for the large-``n`` symmetric sweeps of Figure 5.
    backend:
        Numeric backend for the full chain: ``"auto"`` (dense up to
        :data:`~repro.markov.operators.DENSE_STATE_LIMIT` transient states,
        sparse beyond — the sparse path keeps heterogeneous analyses feasible
        to n≈14 and beyond), ``"dense"`` or ``"sparse"`` to force one.  The
        lumped chain is always dense (it has only ``n + 2`` states).
    structure_cache:
        Assemble the full chain through the memoized
        :mod:`~repro.markov.structure_cache` (default), so a rates-only sweep
        of models pays the structural enumeration once.  The cached assembly
        is bit-identical to the legacy builders; disable only to measure or
        to pin that equality.
    """

    def __init__(self, params: SystemParameters, *,
                 prefer_simplified: bool = True,
                 backend: str = "auto",
                 structure_cache: bool = True) -> None:
        self.params = params
        self.prefer_simplified = bool(prefer_simplified)
        self.backend = check_backend_name(backend)
        self.structure_cache = bool(structure_cache)

    # ------------------------------------------------------------------ structure
    @cached_property
    def uses_simplified_chain(self) -> bool:
        """Whether the lumped symmetric chain is being used."""
        return self.prefer_simplified and self.params.is_symmetric() \
            and self.params.n >= 2

    @cached_property
    def analytic_backend(self) -> str:
        """Resolved numeric route: ``"lumped"``, ``"dense"`` or ``"sparse"``."""
        if self.uses_simplified_chain:
            return "lumped"
        return select_backend(AsyncStateSpace(self.params.n).n_transient,
                              self.backend)

    @cached_property
    def phase_type(self) -> PhaseType:
        """Phase-type distribution of ``X``."""
        if self.uses_simplified_chain:
            lam = float(self.params.lam[0, 1]) if self.params.n >= 2 else 0.0
            chain = SimplifiedChain(n=self.params.n, mu=float(self.params.mu[0]),
                                    lam=lam)
            return chain.phase_type()
        return build_phase_type(self.params, backend=self.backend,
                                structure_cache=self.structure_cache)

    @cached_property
    def generator(self) -> np.ndarray:
        """Full *dense* generator matrix ``H`` (always the unlumped chain).

        Kept for small-``n`` inspection and ODE cross-checks; large state
        spaces should use :func:`repro.markov.generator.build_generator_sparse`
        instead of materialising ``(2^n + 1)²`` entries.
        """
        H, _space = build_generator(self.params)
        return H

    @cached_property
    def _counting_phase_type(self) -> PhaseType:
        """Full-chain phase type backing the occupancy-based counts.

        ``E[L_i]`` and ``q_i`` are functionals of the *full* chain's occupancy
        vector, so the lumped chain cannot serve here; a model running lumped
        builds (and caches) the full chain on demand, every other model reuses
        :attr:`phase_type` — and with it the cached factorisation and
        occupancy solve.
        """
        if not self.uses_simplified_chain:
            return self.phase_type
        return build_phase_type(self.params, backend=self.backend,
                                structure_cache=self.structure_cache)

    @property
    def n_states(self) -> int:
        """Number of states of the chain actually used for the analysis."""
        return self.phase_type.order + 1

    # ------------------------------------------------------------------ interval X
    def mean_interval(self) -> float:
        """``E[X]`` — mean interval between two successive recovery lines."""
        return self.phase_type.mean()

    def interval_variance(self) -> float:
        return self.phase_type.variance()

    def interval_std(self) -> float:
        return self.phase_type.std()

    def interval_moment(self, k: int) -> float:
        """Raw moment ``E[X^k]``."""
        return self.phase_type.moment(k)

    def pdf(self, times: Sequence[float] | float) -> np.ndarray | float:
        """Density ``f_X(t)`` (Figure 6)."""
        return self.phase_type.pdf(times)

    def cdf(self, times: Sequence[float] | float) -> np.ndarray | float:
        return self.phase_type.cdf(times)

    def survival(self, times: Sequence[float] | float) -> np.ndarray | float:
        return self.phase_type.sf(times)

    # ------------------------------------------------------------------ counts L_i
    def expected_rp_counts(self, counting: str = "interior") -> np.ndarray:
        """``E[L_i]`` for each process (see :mod:`repro.markov.split_chain`)."""
        return expected_rp_counts(self.params, counting=counting,
                                  phase_type=self._counting_phase_type)

    def expected_total_rp_count(self, counting: str = "interior") -> float:
        """``E[Σ_i L_i]`` — total states saved per interval (Table 1 bottom row)."""
        return float(self.expected_rp_counts(counting=counting).sum())

    def completion_probabilities(self) -> np.ndarray:
        """``q_i`` — probability the next line is completed by ``P_i``'s RP."""
        return absorption_by_process(self.params,
                                     phase_type=self._counting_phase_type)

    # ------------------------------------------------------------------ simulation
    def simulate(self, n_intervals: int, seed: Optional[int] = None
                 ) -> SimulatedIntervals:
        """Monte-Carlo sample of the model (the paper's Table 1 methodology)."""
        return ModelSimulator(self.params, seed=seed).sample_intervals(n_intervals)

    def validation_report(self, n_intervals: int = 20_000,
                          seed: Optional[int] = None,
                          counting: str = "all") -> Dict[str, object]:
        """Compare analytic and simulated estimates side by side.

        Returns a dict with analytic/simulated means of ``X`` and ``L_i`` plus the
        relative errors; used by the validation experiment and its tests.
        """
        sim = self.simulate(n_intervals, seed=seed)
        analytic_x = self.mean_interval()
        analytic_l = self.expected_rp_counts(counting=counting)
        sim_x = sim.mean_interval()
        sim_l = sim.mean_rp_counts(counting=counting)
        return {
            "n_intervals": n_intervals,
            "counting": counting,
            "analytic_mean_X": analytic_x,
            "simulated_mean_X": sim_x,
            "relative_error_X": abs(sim_x - analytic_x) / analytic_x,
            "analytic_mean_L": analytic_l,
            "simulated_mean_L": sim_l,
            "relative_error_L": np.abs(sim_l - analytic_l) / np.maximum(analytic_l, 1e-12),
            "simulated_stderr_X": sim.interval_stderr(),
        }

    # ------------------------------------------------------------------ reporting
    def table1_row(self, counting: str = "all") -> Dict[str, float]:
        """The quantities of one Table 1 column for this parameter set."""
        counts = self.expected_rp_counts(counting=counting)
        row: Dict[str, float] = {"E[X]": self.mean_interval()}
        for i, value in enumerate(counts):
            row[f"E[L{i + 1}]"] = float(value)
        row["E[sum L]"] = float(counts.sum())
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "simplified" if self.uses_simplified_chain else "full"
        return (f"RecoveryLineIntervalModel({self.params.describe()}, chain={kind}, "
                f"backend={self.analytic_backend}, states={self.n_states})")
