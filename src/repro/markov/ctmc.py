"""Continuous-time Markov-chain mathematics: phase-type distributions.

The interval ``X`` between successive recovery lines is the time to absorption of
the chain built in :mod:`repro.markov.generator`; absorption times of finite CTMCs
are *phase-type* distributed.  :class:`PhaseType` provides the density, CDF,
survival function and factorial moments used throughout the reproduction:

* density       ``f_X(t) = α · exp(T t) · t⁰`` with exit vector ``t⁰ = −T·1``
  (this is exactly the paper's ``f_X(t) = d/dt π_m(t)``),
* CDF           ``F_X(t) = 1 − α · exp(T t) · 1``,
* survival      ``S_X(t) = α · exp(T t) · 1`` (computed directly, *not* as
  ``1 − F`` — the subtraction cancels catastrophically in the deep tail),
* moments       ``E[X^k] = (−1)^k k! · α · T^{−k} · 1``.

``T`` may be a dense array or any ``scipy.sparse`` matrix; all numerics are
routed through the matching :class:`~repro.markov.operators.TransientOperator`
backend (dense ``expm``/LU versus sparse ``expm_multiply``/sparse-LU), so the
same :class:`PhaseType` object scales from the 3-state toy chains of the unit
tests to the ``2^14``-state heterogeneous recovery-line chains.

:func:`transient_distribution` additionally integrates the Chapman–Kolmogorov
equations ``dπ/dt = π H`` directly (the formulation the paper states); it serves as
an independent cross-check of the matrix-exponential path in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence, Union

import numpy as np
from scipy import sparse
from scipy.integrate import solve_ivp

from repro.markov.operators import TransientOperator, as_operator

__all__ = ["PhaseType", "transient_distribution"]

#: Largest order at which :meth:`PhaseType.sample` will densify a sparse ``T``
#: to build its per-state jump tables.
_SAMPLE_DENSIFY_LIMIT = 4096


@dataclass(frozen=True)
class PhaseType:
    """Phase-type distribution ``PH(α, T)``.

    Parameters
    ----------
    alpha:
        Initial probability vector over the transient states (length ``p``).  A
        deficient vector (summing to less than 1) would put mass at zero; the
        recovery-line model always starts in a transient state so ``Σα = 1``.
    T:
        ``p × p`` sub-generator: non-positive diagonal, non-negative off-diagonal,
        row sums ≤ 0 with strict inequality for at least one reachable state
        (otherwise absorption would never happen).  Dense ``ndarray`` or any
        ``scipy.sparse`` matrix (stored as CSR).
    """

    alpha: np.ndarray
    T: Union[np.ndarray, sparse.spmatrix]

    def __post_init__(self) -> None:
        alpha = np.asarray(self.alpha, dtype=float).copy()
        if alpha.ndim != 1:
            raise ValueError("alpha must be a vector")
        if np.any(alpha < -1e-12) or abs(alpha.sum() - 1.0) > 1e-9:
            raise ValueError("alpha must be a probability vector")
        if sparse.issparse(self.T):
            T = sparse.csr_matrix(self.T, copy=True)
            if T.shape[0] != T.shape[1]:
                raise ValueError("T must be square")
            diagonal = T.diagonal()
            coo = T.tocoo()
            off = coo.data[coo.row != coo.col]
            if off.size and np.min(off) < -1e-9:
                raise ValueError("off-diagonal entries of T must be non-negative")
            row_sums = np.asarray(T.sum(axis=1)).ravel()
        else:
            T = np.asarray(self.T, dtype=float).copy()
            if T.ndim != 2 or T.shape[0] != T.shape[1]:
                raise ValueError("T must be square")
            diagonal = np.diagonal(T)
            # Off-diagonal sign check without materialising T - diag(T): flag
            # the negative entries and discount the (legitimately negative)
            # diagonal.
            negative = T < -1e-9
            np.fill_diagonal(negative, False)
            if np.any(negative):
                raise ValueError("off-diagonal entries of T must be non-negative")
            row_sums = T.sum(axis=1)
            T.setflags(write=False)
        if T.shape[0] != alpha.shape[0]:
            raise ValueError("alpha and T have mismatched sizes")
        if np.any(diagonal > 1e-9):
            raise ValueError("diagonal entries of T must be non-positive")
        if np.any(row_sums > 1e-7):
            raise ValueError("row sums of T must be non-positive")
        alpha.setflags(write=False)
        object.__setattr__(self, "alpha", alpha)
        object.__setattr__(self, "T", T)

    # ------------------------------------------------------------------ basics
    @property
    def order(self) -> int:
        """Number of transient phases."""
        return int(self.alpha.shape[0])

    @property
    def is_sparse(self) -> bool:
        """Whether ``T`` is stored (and evaluated) sparsely."""
        return sparse.issparse(self.T)

    @cached_property
    def operator(self) -> TransientOperator:
        """The numeric backend evaluating everything against ``T``.

        Chosen strictly by storage format: a sparse ``T`` gets the
        Krylov/sparse-LU backend, a dense ``T`` the ``expm``/LU ground-truth
        backend — never by size, so a caller who forced ``backend="dense"`` in
        :func:`~repro.markov.generator.build_phase_type` really measures the
        dense numerics.
        """
        return as_operator(self.T,
                           backend="sparse" if self.is_sparse else "dense")

    @property
    def backend(self) -> str:
        """Name of the numeric backend (``"dense"`` / ``"sparse"``)."""
        return self.operator.name

    @cached_property
    def exit_vector(self) -> np.ndarray:
        """Exit-rate vector ``t⁰ = −T·1`` (rate of absorption from each phase)."""
        return self.operator.exit_vector()

    # ------------------------------------------------------------------ densities
    def _expm_states(self, times: np.ndarray) -> np.ndarray:
        """Row vectors ``α·exp(T t)`` for each requested time.

        Dense backend: uniform grids are propagated with a single cached step
        matrix, arbitrary grids fall back to one matrix exponential per time.
        Sparse backend: Krylov propagation (``expm_multiply``) over the grid —
        no matrix exponential is ever materialised.
        """
        flat = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(flat < 0.0):
            raise ValueError("times must be non-negative")
        return self.operator.expm_states(self.alpha, flat)

    def pdf(self, times: Iterable[float] | float) -> np.ndarray | float:
        """Density ``f_X(t)`` evaluated at *times*."""
        scalar = np.isscalar(times)
        states = self._expm_states(np.atleast_1d(np.asarray(times, dtype=float)))
        values = states @ self.exit_vector
        return float(values[0]) if scalar else values

    def cdf(self, times: Iterable[float] | float) -> np.ndarray | float:
        """Distribution function ``P(X ≤ t)``."""
        scalar = np.isscalar(times)
        states = self._expm_states(np.atleast_1d(np.asarray(times, dtype=float)))
        values = 1.0 - states.sum(axis=1)
        return float(values[0]) if scalar else values

    def sf(self, times: Iterable[float] | float) -> np.ndarray | float:
        """Survival function ``P(X > t)``, accurate deep into the tail.

        Computed directly as ``α·exp(T t)·1`` — the remaining transient mass —
        rather than ``1 − cdf``: the latter cancels to 0 (or slips negative)
        once the survival drops below the double-precision epsilon of 1,
        whereas the direct sum stays accurate down to the underflow threshold.
        """
        scalar = np.isscalar(times)
        states = self._expm_states(np.atleast_1d(np.asarray(times, dtype=float)))
        values = states.sum(axis=1)
        return float(values[0]) if scalar else values

    # ------------------------------------------------------------------ moments
    def moment(self, k: int = 1) -> float:
        """Raw moment ``E[X^k] = (−1)^k k! α T^{−k} 1``.

        Each power is one (cached-factorisation) solve against ``T`` — dense LU
        for the dense backend, sparse LU or preconditioned GMRES for the
        sparse one.
        """
        if k < 1:
            raise ValueError("moment order must be >= 1")
        # The solved vectors T^{-j}·1 are shared across moment orders (the
        # j-th is the input of the (j+1)-th solve), so E[X] followed by
        # Var[X] pays two solves, not three; a cached vector is the *same*
        # solve output it replaces, never a numeric shortcut.
        vecs = self.__dict__.get("_moment_vecs")
        if vecs is None:
            vecs = [np.ones(self.order)]
            object.__setattr__(self, "_moment_vecs", vecs)
        while len(vecs) <= k:
            vecs.append(self.operator.solve(vecs[-1]))
        sign = -1.0 if k % 2 else 1.0
        return float(sign * _factorial(k) * (self.alpha @ vecs[k]))

    def mean(self) -> float:
        """``E[X]`` — the paper's mean interval between successive recovery lines."""
        return self.moment(1)

    def variance(self) -> float:
        m1 = self.moment(1)
        return self.moment(2) - m1 * m1

    def std(self) -> float:
        return float(np.sqrt(max(self.variance(), 0.0)))

    @cached_property
    def _occupancy_vector(self) -> np.ndarray:
        vector = self.operator.occupancy(self.alpha)
        vector.setflags(write=False)
        return vector

    def occupancy(self) -> np.ndarray:
        """``τ = α(−T)^{-1}`` — expected time in each phase before absorption.

        ``τ.sum()`` is ``E[X]``; the split-chain recovery-point counts are
        linear functionals of this vector.  Cached: repeated callers
        (``E[L_i]``, ``q_i``) share one transpose solve.
        """
        return self._occupancy_vector

    # ------------------------------------------------------------------ sampling
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw *size* absorption times by simulating the underlying jump chain."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if self.is_sparse:
            if self.order > _SAMPLE_DENSIFY_LIMIT:
                raise RuntimeError(
                    f"jump-chain sampling densifies T; order {self.order} exceeds "
                    f"the {_SAMPLE_DENSIFY_LIMIT}-state limit — sample the model "
                    "with repro.markov.montecarlo.ModelSimulator instead")
            T = self.T.toarray()
        else:
            T = self.T
        exit_rates = self.exit_vector
        diag = -np.diagonal(T)
        out = np.empty(size)
        # Pre-compute per-state jump distributions (to transient states + exit).
        jump_probs = []
        for s in range(self.order):
            total = diag[s]
            if total <= 0.0:
                jump_probs.append((np.zeros(self.order), 1.0))
                continue
            probs = np.maximum(T[s].copy(), 0.0)
            probs[s] = 0.0
            jump_probs.append((probs / total, exit_rates[s] / total))
        for i in range(size):
            t = 0.0
            state = int(rng.choice(self.order, p=self.alpha))
            while True:
                rate = diag[state]
                if rate <= 0.0:
                    raise RuntimeError("reached a transient state with no exit rate")
                t += rng.exponential(1.0 / rate)
                probs, p_exit = jump_probs[state]
                if rng.random() < p_exit:
                    break
                state = int(rng.choice(self.order, p=probs / max(probs.sum(), 1e-300)))
            out[i] = t
        return out


def _factorial(k: int) -> float:
    out = 1.0
    for i in range(2, k + 1):
        out *= i
    return out


def transient_distribution(H: Union[np.ndarray, sparse.spmatrix],
                           pi0: Sequence[float],
                           times: Sequence[float], *, rtol: float = 1e-9,
                           atol: float = 1e-12) -> np.ndarray:
    """Integrate the Chapman–Kolmogorov equations ``dπ/dt = π H``.

    Parameters
    ----------
    H:
        Full generator (absorbing rows included), dense or sparse.
    pi0:
        Initial distribution over all states.
    times:
        Non-decreasing evaluation times (the first may be 0).

    Returns
    -------
    Array of shape ``(len(times), n_states)`` with the state distribution at each
    requested time.  This is the formulation the paper writes down explicitly; the
    phase-type machinery above is the closed-form equivalent.
    """
    if sparse.issparse(H):
        Ht = H.T.tocsr()
    else:
        H = np.asarray(H, dtype=float)
        Ht = H.T
    pi0 = np.asarray(pi0, dtype=float)
    times = np.asarray(times, dtype=float)
    if np.any(np.diff(times) < 0):
        raise ValueError("times must be non-decreasing")
    if times.size == 0:
        return np.empty((0, Ht.shape[0]))

    def rhs(_t: float, pi: np.ndarray) -> np.ndarray:
        return Ht @ pi

    t_span = (0.0, float(times[-1]) if times[-1] > 0 else 1e-12)
    solution = solve_ivp(rhs, t_span, pi0, t_eval=np.maximum(times, 0.0),
                         method="LSODA", rtol=rtol, atol=atol)
    if not solution.success:  # pragma: no cover - defensive
        raise RuntimeError(f"ODE integration failed: {solution.message}")
    return solution.y.T
