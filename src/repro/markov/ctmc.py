"""Continuous-time Markov-chain mathematics: phase-type distributions.

The interval ``X`` between successive recovery lines is the time to absorption of
the chain built in :mod:`repro.markov.generator`; absorption times of finite CTMCs
are *phase-type* distributed.  :class:`PhaseType` provides the density, CDF,
survival function and factorial moments used throughout the reproduction:

* density       ``f_X(t) = α · exp(T t) · t⁰`` with exit vector ``t⁰ = −T·1``
  (this is exactly the paper's ``f_X(t) = d/dt π_m(t)``),
* CDF           ``F_X(t) = 1 − α · exp(T t) · 1``,
* moments       ``E[X^k] = (−1)^k k! · α · T^{−k} · 1``.

:func:`transient_distribution` additionally integrates the Chapman–Kolmogorov
equations ``dπ/dt = π H`` directly (the formulation the paper states); it serves as
an independent cross-check of the matrix-exponential path in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import linalg as sla
from scipy.integrate import solve_ivp

from repro.util.linalg import solve_linear

__all__ = ["PhaseType", "transient_distribution"]


@dataclass(frozen=True)
class PhaseType:
    """Phase-type distribution ``PH(α, T)``.

    Parameters
    ----------
    alpha:
        Initial probability vector over the transient states (length ``p``).  A
        deficient vector (summing to less than 1) would put mass at zero; the
        recovery-line model always starts in a transient state so ``Σα = 1``.
    T:
        ``p × p`` sub-generator: non-positive diagonal, non-negative off-diagonal,
        row sums ≤ 0 with strict inequality for at least one reachable state
        (otherwise absorption would never happen).
    """

    alpha: np.ndarray
    T: np.ndarray

    def __post_init__(self) -> None:
        alpha = np.asarray(self.alpha, dtype=float).copy()
        T = np.asarray(self.T, dtype=float).copy()
        if alpha.ndim != 1:
            raise ValueError("alpha must be a vector")
        if T.ndim != 2 or T.shape[0] != T.shape[1]:
            raise ValueError("T must be square")
        if T.shape[0] != alpha.shape[0]:
            raise ValueError("alpha and T have mismatched sizes")
        if np.any(alpha < -1e-12) or abs(alpha.sum() - 1.0) > 1e-9:
            raise ValueError("alpha must be a probability vector")
        off = T - np.diag(np.diagonal(T))
        if np.any(off < -1e-9):
            raise ValueError("off-diagonal entries of T must be non-negative")
        if np.any(np.diagonal(T) > 1e-9):
            raise ValueError("diagonal entries of T must be non-positive")
        row_sums = T.sum(axis=1)
        if np.any(row_sums > 1e-7):
            raise ValueError("row sums of T must be non-positive")
        alpha.setflags(write=False)
        T.setflags(write=False)
        object.__setattr__(self, "alpha", alpha)
        object.__setattr__(self, "T", T)

    # ------------------------------------------------------------------ basics
    @property
    def order(self) -> int:
        """Number of transient phases."""
        return int(self.alpha.shape[0])

    @property
    def exit_vector(self) -> np.ndarray:
        """Exit-rate vector ``t⁰ = −T·1`` (rate of absorption from each phase)."""
        return -self.T @ np.ones(self.order)

    # ------------------------------------------------------------------ densities
    def _expm_states(self, times: np.ndarray) -> np.ndarray:
        """Row vectors ``α·exp(T t)`` for each requested time.

        Uniform grids are propagated with a single cached step matrix; arbitrary
        grids fall back to one matrix exponential per distinct time.
        """
        times = np.asarray(times, dtype=float)
        flat = np.atleast_1d(times).astype(float)
        if np.any(flat < 0.0):
            raise ValueError("times must be non-negative")
        out = np.empty((flat.size, self.order))
        diffs = np.diff(flat)
        uniform = (flat.size > 2 and np.allclose(diffs, diffs[0], rtol=1e-10, atol=1e-14)
                   and flat[0] >= 0.0 and diffs[0] > 0)
        if uniform:
            step = sla.expm(self.T * diffs[0])
            vec = self.alpha @ sla.expm(self.T * flat[0])
            out[0] = vec
            for k in range(1, flat.size):
                vec = vec @ step
                out[k] = vec
        else:
            for k, t in enumerate(flat):
                out[k] = self.alpha @ sla.expm(self.T * t)
        return out

    def pdf(self, times: Iterable[float] | float) -> np.ndarray | float:
        """Density ``f_X(t)`` evaluated at *times*."""
        scalar = np.isscalar(times)
        states = self._expm_states(np.atleast_1d(np.asarray(times, dtype=float)))
        values = states @ self.exit_vector
        return float(values[0]) if scalar else values

    def cdf(self, times: Iterable[float] | float) -> np.ndarray | float:
        """Distribution function ``P(X ≤ t)``."""
        scalar = np.isscalar(times)
        states = self._expm_states(np.atleast_1d(np.asarray(times, dtype=float)))
        values = 1.0 - states.sum(axis=1)
        return float(values[0]) if scalar else values

    def sf(self, times: Iterable[float] | float) -> np.ndarray | float:
        """Survival function ``P(X > t)``."""
        cdf = self.cdf(times)
        return 1.0 - cdf

    # ------------------------------------------------------------------ moments
    def moment(self, k: int = 1) -> float:
        """Raw moment ``E[X^k] = (−1)^k k! α T^{−k} 1``."""
        if k < 1:
            raise ValueError("moment order must be >= 1")
        vec = np.ones(self.order)
        for _ in range(k):
            vec = solve_linear(self.T, vec)
        sign = -1.0 if k % 2 else 1.0
        return float(sign * _factorial(k) * (self.alpha @ vec))

    def mean(self) -> float:
        """``E[X]`` — the paper's mean interval between successive recovery lines."""
        return self.moment(1)

    def variance(self) -> float:
        m1 = self.moment(1)
        return self.moment(2) - m1 * m1

    def std(self) -> float:
        return float(np.sqrt(max(self.variance(), 0.0)))

    # ------------------------------------------------------------------ sampling
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw *size* absorption times by simulating the underlying jump chain."""
        if size < 0:
            raise ValueError("size must be non-negative")
        exit_rates = self.exit_vector
        diag = -np.diagonal(self.T)
        out = np.empty(size)
        # Pre-compute per-state jump distributions (to transient states + exit).
        jump_probs = []
        for s in range(self.order):
            total = diag[s]
            if total <= 0.0:
                jump_probs.append((np.zeros(self.order), 1.0))
                continue
            probs = np.maximum(self.T[s].copy(), 0.0)
            probs[s] = 0.0
            jump_probs.append((probs / total, exit_rates[s] / total))
        for i in range(size):
            t = 0.0
            state = int(rng.choice(self.order, p=self.alpha))
            while True:
                rate = diag[state]
                if rate <= 0.0:
                    raise RuntimeError("reached a transient state with no exit rate")
                t += rng.exponential(1.0 / rate)
                probs, p_exit = jump_probs[state]
                if rng.random() < p_exit:
                    break
                state = int(rng.choice(self.order, p=probs / max(probs.sum(), 1e-300)))
            out[i] = t
        return out


def _factorial(k: int) -> float:
    out = 1.0
    for i in range(2, k + 1):
        out *= i
    return out


def transient_distribution(H: np.ndarray, pi0: Sequence[float],
                           times: Sequence[float], *, rtol: float = 1e-9,
                           atol: float = 1e-12) -> np.ndarray:
    """Integrate the Chapman–Kolmogorov equations ``dπ/dt = π H``.

    Parameters
    ----------
    H:
        Full generator (absorbing rows included).
    pi0:
        Initial distribution over all states.
    times:
        Non-decreasing evaluation times (the first may be 0).

    Returns
    -------
    Array of shape ``(len(times), n_states)`` with the state distribution at each
    requested time.  This is the formulation the paper writes down explicitly; the
    phase-type machinery above is the closed-form equivalent.
    """
    H = np.asarray(H, dtype=float)
    pi0 = np.asarray(pi0, dtype=float)
    times = np.asarray(times, dtype=float)
    if np.any(np.diff(times) < 0):
        raise ValueError("times must be non-decreasing")
    if times.size == 0:
        return np.empty((0, H.shape[0]))

    def rhs(_t: float, pi: np.ndarray) -> np.ndarray:
        return pi @ H

    t_span = (0.0, float(times[-1]) if times[-1] > 0 else 1e-12)
    solution = solve_ivp(rhs, t_span, pi0, t_eval=np.maximum(times, 0.0),
                         method="LSODA", rtol=rtol, atol=atol)
    if not solution.success:  # pragma: no cover - defensive
        raise RuntimeError(f"ODE integration failed: {solution.message}")
    return solution.y.T
