"""The discrete chain ``Y_d`` with split states (Section 2.3, Figure 4).

The paper obtains the mean number of recovery points ``E[L_i]`` that process
``P_i`` establishes during an inter-recovery-line interval ``X`` by

1. uniformising the CTMC with the normalisation factor
   ``G = Σ_{i<j} λ_ij + Σ_k μ_k`` (every event — recovery point or interaction —
   becomes one step of a discrete chain, whether or not it changes the state), and
2. splitting every state with ``x_i = 1`` into ``S_u'`` (entered because ``P_i``
   just established a recovery point) and ``S_u''`` (entered for any other reason),
   so that the expected number of visits to the primed copies equals the expected
   number of recovery points ``P_i`` records while the chain is still transient.

Two implementations are provided and cross-checked by tests:

* :class:`SplitChainYd` — the explicit split construction, faithful to Figure 4;
* :func:`expected_rp_counts` — a direct occupancy-time computation
  (``E[L_i] = Σ_u τ_u · μ_i`` over the transient states ``u`` from which an RP by
  ``P_i`` does **not** complete the recovery line), which is much cheaper and also
  yields the complementary quantity ``q_i`` — the probability that the line is
  completed by an RP of ``P_i`` (:func:`absorption_by_process`).

Counting conventions
--------------------
``counting="interior"`` (the split-chain/paper construction) excludes the recovery
point that *completes* the next recovery line; ``counting="all"`` includes it, in
which case Wald's identity gives the closed form ``E[L_i] = μ_i · E[X]``.  The two
are related by ``E[L_i]^all − E[L_i]^interior = q_i`` with ``Σ_i q_i = 1``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.parameters import SystemParameters
from repro.markov.dtmc import AbsorbingDTMC
from repro.markov.generator import build_phase_type
from repro.markov.state_space import AsyncStateSpace

__all__ = ["SplitTag", "SplitChainYd", "expected_rp_counts", "absorption_by_process"]


class SplitTag(enum.Enum):
    """Arrival class of a split state."""

    PRIME = "prime"      # entered because the target process established an RP
    OTHER = "other"      # entered for any other reason (x_i = 1 nonetheless)
    NONE = "none"        # states with x_i = 0 are not split


@dataclass(frozen=True)
class _SplitState:
    kind: str            # "entry", "mask", "absorbing"
    mask: int = -1
    tag: SplitTag = SplitTag.NONE

    def label(self, n: int) -> str:
        if self.kind == "entry":
            return "S_r"
        if self.kind == "absorbing":
            return "S_{r+1}"
        bits = "".join(str((self.mask >> p) & 1) for p in range(n))
        suffix = {"prime": "'", "other": "''", "none": ""}[self.tag.value]
        return f"({bits}){suffix}"


class SplitChainYd:
    """Explicit construction of the split discrete chain for one target process.

    Parameters
    ----------
    params:
        The system parameters (rates ``μ``, ``λ``).
    target:
        The process ``P_i`` whose recovery points are being counted.
    """

    def __init__(self, params: SystemParameters, target: int) -> None:
        if not (0 <= target < params.n):
            raise ValueError(f"target process {target} out of range")
        self.params = params
        self.target = int(target)
        self.space = AsyncStateSpace(params.n)
        self.G = params.uniformization_constant()
        self._states: List[_SplitState] = []
        self._index: Dict[Tuple[str, int, SplitTag], int] = {}
        self._build_states()
        self._P = self._build_matrix()
        self._dtmc = AbsorbingDTMC(P=self._P, absorbing=(self.absorbing_index,))

    # ------------------------------------------------------------------ states
    def _add_state(self, state: _SplitState) -> int:
        idx = len(self._states)
        self._states.append(state)
        self._index[(state.kind, state.mask, state.tag)] = idx
        return idx

    def _build_states(self) -> None:
        self._add_state(_SplitState(kind="entry"))
        for index in self.space.intermediate_indices():
            mask = self.space.mask_of_index(index)
            if self.space.bit(mask, self.target):
                self._add_state(_SplitState(kind="mask", mask=mask, tag=SplitTag.PRIME))
                self._add_state(_SplitState(kind="mask", mask=mask, tag=SplitTag.OTHER))
            else:
                self._add_state(_SplitState(kind="mask", mask=mask, tag=SplitTag.NONE))
        self._add_state(_SplitState(kind="absorbing"))

    @property
    def states(self) -> List[_SplitState]:
        return list(self._states)

    @property
    def n_states(self) -> int:
        return len(self._states)

    @property
    def entry_index(self) -> int:
        return 0

    @property
    def absorbing_index(self) -> int:
        return len(self._states) - 1

    @property
    def dtmc(self) -> AbsorbingDTMC:
        return self._dtmc

    def state_index(self, mask: int, tag: SplitTag) -> int:
        return self._index[("mask", mask, tag)]

    # ------------------------------------------------------------------ matrix
    def _destination(self, dest_mask: int, *, rp_by: int | None) -> int:
        """Index of the state reached when the new bit pattern is *dest_mask*.

        ``rp_by`` is the process that just established a recovery point, or None
        when the event was an interaction.
        """
        if dest_mask == self.space.full_mask:
            return self.absorbing_index
        if self.space.bit(dest_mask, self.target):
            tag = SplitTag.PRIME if rp_by == self.target else SplitTag.OTHER
        else:
            tag = SplitTag.NONE
        return self.state_index(dest_mask, tag)

    def _events_from(self, mask: int, *, entry: bool) -> List[Tuple[float, int]]:
        """All uniformised events from a state with bit pattern *mask*.

        Returns ``(rate, destination index)`` pairs; rates sum to ``G`` exactly, so
        no residual self-loop probability is needed.
        """
        params, space = self.params, self.space
        events: List[Tuple[float, int]] = []
        # Recovery points by each process.
        for k in range(params.n):
            rate = float(params.mu[k])
            if rate <= 0.0:
                continue
            if entry:
                # Rule R4: any recovery point from S_r completes the next line.
                events.append((rate, self.absorbing_index))
                continue
            dest_mask = space.set_bit(mask, k)
            events.append((rate, self._destination(dest_mask, rp_by=k)))
        # Interactions for each pair.
        for a in range(params.n):
            for b in range(a + 1, params.n):
                rate = params.pair_rate(a, b)
                if rate <= 0.0:
                    continue
                dest_mask = space.clear_bit(space.clear_bit(mask, a), b)
                events.append((rate, self._destination(dest_mask, rp_by=None)))
        return events

    def _build_matrix(self) -> np.ndarray:
        m = self.n_states
        P = np.zeros((m, m))
        for idx, state in enumerate(self._states):
            if state.kind == "absorbing":
                P[idx, idx] = 1.0
                continue
            mask = self.space.full_mask if state.kind == "entry" else state.mask
            for rate, dest in self._events_from(mask, entry=(state.kind == "entry")):
                P[idx, dest] += rate / self.G
            residual = 1.0 - P[idx].sum()
            if residual > 1e-12:
                # Only possible if some rates are zero-valued pairs; keep the chain
                # stochastic by an explicit self-loop on the same arrival class.
                P[idx, idx] += residual
        return P

    # ------------------------------------------------------------------ results
    def expected_rp_count(self) -> float:
        """``E[L_i]`` for the target process (interior counting convention)."""
        visits = self._dtmc.expected_visits_by_state(self.entry_index)
        total = 0.0
        for (kind, _mask, tag), idx in self._index.items():
            if kind == "mask" and tag is SplitTag.PRIME:
                total += visits.get(idx, 0.0)
        return total

    def expected_visits(self) -> Dict[str, float]:
        """Readable mapping of state label → expected visits (for inspection)."""
        visits = self._dtmc.expected_visits_by_state(self.entry_index)
        return {self._states[idx].label(self.params.n): count
                for idx, count in visits.items()}


# --------------------------------------------------------------------- shortcuts

def _occupancy_times(params: SystemParameters, *, backend: str = "auto",
                     phase_type=None) -> Tuple[np.ndarray, AsyncStateSpace]:
    """Expected total time spent in each transient CTMC state before absorption.

    ``τ = α (−T)^{-1}`` — one transpose solve against the transient operator,
    which auto-selects the dense or sparse-LU backend by state-space size, so
    the occupancy vector (and everything derived from it: ``E[L_i]``, ``q_i``)
    stays computable far past the dense n≈10 wall.

    ``phase_type`` lets a caller that already built the *full-chain* phase
    type (e.g. :class:`~repro.markov.recovery_line_interval.RecoveryLineIntervalModel`)
    reuse it — and its cached factorisation/occupancy — instead of paying a
    fresh generator assembly and solve.
    """
    if phase_type is None:
        phase_type = build_phase_type(params, backend=backend)
    return phase_type.occupancy(), AsyncStateSpace(params.n)


def _rp_completes_line(space: AsyncStateSpace, state_index: int, process: int) -> bool:
    """Whether an RP by *process* from transient state *state_index* forms the line."""
    if space.is_entry(state_index):
        return True
    mask = space.mask_of_index(state_index)
    return space.set_bit(mask, process) == space.full_mask and \
        not space.bit(mask, process)


def _absorption_from_occupancy(tau: np.ndarray, space: AsyncStateSpace,
                               params: SystemParameters) -> np.ndarray:
    """``q_i`` from an already-computed occupancy vector.

    An RP by P_i completes the line only from the entry state or from the
    single mask that lacks exactly bit i (see _rp_completes_line), so the sum
    over all transient states collapses to two occupancy lookups per process.
    """
    q = np.empty(params.n)
    for i in range(params.n):
        almost_full = space.full_mask & ~(1 << i)
        q[i] = (tau[space.entry_index]
                + tau[space.index_of_mask(almost_full)]) * params.mu[i]
    return q


def expected_rp_counts(params: SystemParameters,
                       counting: str = "interior", *, backend: str = "auto",
                       phase_type=None) -> np.ndarray:
    """Mean recovery-point counts ``E[L_i]`` for every process.

    Parameters
    ----------
    counting:
        ``"interior"`` — exclude the recovery point completing the next line (the
        paper's split-chain convention); ``"all"`` — include it
        (``E[L_i] = μ_i · E[X]`` by Wald's identity).
    backend / phase_type:
        See :func:`_occupancy_times`; one occupancy solve yields both the
        counts and the interior correction ``q_i``.
    """
    if counting not in ("interior", "all"):
        raise ValueError("counting must be 'interior' or 'all'")
    tau, space = _occupancy_times(params, backend=backend,
                                  phase_type=phase_type)
    mean_x = float(tau.sum())
    counts = params.mu * mean_x
    if counting == "all":
        return counts
    return counts - _absorption_from_occupancy(tau, space, params)


def absorption_by_process(params: SystemParameters, *, backend: str = "auto",
                          phase_type=None) -> np.ndarray:
    """``q_i`` — probability that the next recovery line is completed by ``P_i``.

    Every absorption of the chain is caused by some process's recovery point, so
    the returned vector sums to 1.
    """
    tau, space = _occupancy_times(params, backend=backend,
                                  phase_type=phase_type)
    return _absorption_from_occupancy(tau, space, params)
