"""Pluggable numeric backends for the transient sub-generator ``T``.

The analytic stack evaluates three kinds of expressions against ``T``:

* **propagation** — the row vectors ``α·exp(T t)`` behind the density/CDF of
  the phase-type interval ``X``;
* **resolvent solves** — ``T x = b`` (moments ``E[X^k]``) and ``Tᵀ x = b``
  (occupancy times, absorption splits);
* **matrix–vector products** — exit vectors, ODE cross-checks.

:class:`TransientOperator` is the abstract seam; two interchangeable backends
implement it:

:class:`DenseTransientOperator`
    The ground truth for small chains: ``scipy.linalg.expm`` with a cached
    uniform-grid step matrix, and cached LU factorisations for the solves.

:class:`SparseTransientOperator`
    CSR storage with Krylov propagation (``scipy.sparse.linalg.expm_multiply``
    — no matrix exponential is ever materialised) and sparse LU
    (``scipy.sparse.linalg.splu``) solves.  The recovery-line chain's state
    graph is hypercube-like, so exact LU fill-in grows steeply with the order;
    above :data:`SPARSE_LU_LIMIT` unknowns the solves switch to
    Jacobi-preconditioned GMRES (the sub-generator is strictly diagonally
    dominant on the exit states, which keeps the iteration well behaved), with
    an explicit residual check and an LU fallback.

Backend selection policy
------------------------
:func:`select_backend` maps an order (number of transient states) to a backend
name: at or below :data:`DENSE_STATE_LIMIT` unknowns the dense path is both
faster and exact; above it the ``(order²)`` memory and ``O(order³)`` ``expm``
cost of the dense path dominate and the sparse path wins.  Callers can force
either backend explicitly (the agreement of the two *is* a test).
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple, Union

import numpy as np
from scipy import linalg as sla
from scipy import sparse
from scipy.sparse import linalg as spla

from repro.util.linalg import solve_linear

__all__ = [
    "BACKEND_NAMES",
    "DENSE_STATE_LIMIT",
    "SPARSE_LU_LIMIT",
    "DenseTransientOperator",
    "SparseTransientOperator",
    "TransientOperator",
    "as_operator",
    "check_backend_name",
    "select_backend",
]

#: Largest order handled by the dense backend under ``backend="auto"``.  With
#: 512 transient states the dense ``expm``/LU path is still comfortably fast
#: and serves as ground truth; beyond it (n ≥ 10 processes for the full
#: recovery-line chain) the sparse path takes over.
DENSE_STATE_LIMIT = 512

#: Largest order solved by exact sparse LU.  The recovery-line chain's
#: transition graph is a (directed) hypercube, whose treewidth — and therefore
#: LU fill-in — grows nearly exponentially with ``n``; past ~1k unknowns the
#: factorisation is slower than a preconditioned Krylov solve by orders of
#: magnitude (measured: ``splu`` needs ~0.6 s at n=11 and ~7 s at n=12, and
#: does not finish at n=14 — where Jacobi+GMRES takes < 0.1 s).
SPARSE_LU_LIMIT = 1024

#: Target relative tolerance of the iterative solves…
_KRYLOV_RTOL = 1e-12
#: …and the residual actually required for a solution to be accepted (the
#: iteration regularly stagnates between the two on stiff chains).
_KRYLOV_ACCEPT = 1e-9

MatrixLike = Union[np.ndarray, sparse.spmatrix]


#: Valid backend requests — the single owner of the name contract.
BACKEND_NAMES = ("auto", "dense", "sparse")


def check_backend_name(backend: str) -> str:
    """Validate a backend request, returning it unchanged."""
    if backend not in BACKEND_NAMES:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected one of {', '.join(BACKEND_NAMES)}")
    return backend


def select_backend(order: int, backend: str = "auto") -> str:
    """Resolve a backend request to ``"dense"`` or ``"sparse"``.

    ``backend`` may be ``"auto"`` (size-based policy above), ``"dense"`` or
    ``"sparse"``.
    """
    check_backend_name(backend)
    if backend != "auto":
        return backend
    return "dense" if order <= DENSE_STATE_LIMIT else "sparse"


def _uniform_step(flat: np.ndarray) -> Optional[float]:
    """The common positive step of a uniform time grid, or None."""
    if flat.size <= 2:
        return None
    diffs = np.diff(flat)
    if np.allclose(diffs, diffs[0], rtol=1e-10, atol=1e-14) and diffs[0] > 0:
        return float(diffs[0])
    return None


class TransientOperator:
    """Abstract linear-operator view of a transient sub-generator ``T``.

    All methods treat vectors as 1-D arrays of length :attr:`order`.
    """

    #: Backend name reported by diagnostics (``"dense"`` / ``"sparse"``).
    name = "abstract"

    @property
    def order(self) -> int:
        """Number of transient states."""
        raise NotImplementedError

    def to_dense(self) -> np.ndarray:
        """Materialise ``T`` as a dense array (small orders only)."""
        raise NotImplementedError

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``T v``."""
        raise NotImplementedError

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        """``Tᵀ v`` (equivalently the row vector ``vᵀ T``)."""
        raise NotImplementedError

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``T x = b``."""
        raise NotImplementedError

    def solve_transpose(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Tᵀ x = b``."""
        raise NotImplementedError

    def expm_states(self, alpha: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Rows ``α·exp(T t)`` for every requested time (any order, repeats ok)."""
        raise NotImplementedError

    # ------------------------------------------------------------- conveniences
    def exit_vector(self) -> np.ndarray:
        """``t⁰ = −T·1`` — the absorption rate out of each transient state."""
        return -self.matvec(np.ones(self.order))

    def occupancy(self, alpha: np.ndarray) -> np.ndarray:
        """``τ = α(−T)^{-1}`` — expected sojourn time per state before absorption."""
        return -self.solve_transpose(np.asarray(alpha, dtype=float))


class DenseTransientOperator(TransientOperator):
    """Dense ``numpy``/``scipy.linalg`` backend (ground truth for small chains)."""

    name = "dense"

    def __init__(self, T: np.ndarray) -> None:
        T = np.asarray(T, dtype=float)
        if T.ndim != 2 or T.shape[0] != T.shape[1]:
            raise ValueError("T must be square")
        self._T = T
        self._lu: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._lu_t: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def order(self) -> int:
        return int(self._T.shape[0])

    def to_dense(self) -> np.ndarray:
        return np.array(self._T, copy=True)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self._T @ v

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return self._T.T @ v

    def solve(self, b: np.ndarray) -> np.ndarray:
        # check_finite=False skips a full-matrix validation scan, nothing
        # more: generators are finite by construction (sums of finite rates),
        # and _finite_or_fallback still catches a degenerate factorisation.
        if self._lu is None:
            self._lu = sla.lu_factor(self._T, check_finite=False)
        return self._finite_or_fallback(
            sla.lu_solve(self._lu, b, check_finite=False), self._T, b)

    def solve_transpose(self, b: np.ndarray) -> np.ndarray:
        if self._lu_t is None:
            self._lu_t = sla.lu_factor(self._T.T, check_finite=False)
        return self._finite_or_fallback(
            sla.lu_solve(self._lu_t, b, check_finite=False), self._T.T, b)

    @staticmethod
    def _finite_or_fallback(x: np.ndarray, A: np.ndarray,
                            b: np.ndarray) -> np.ndarray:
        """Route singular systems through solve_linear's diagnosable fallback.

        ``lu_solve`` on a singular factorisation returns inf/nan with only
        LAPACK's terse zero-diagonal warning; a singular transient block means
        a malformed generator, which solve_linear reports with condition
        context before least-squares-solving.
        """
        if np.all(np.isfinite(x)):
            return x
        return solve_linear(A, b)

    def expm_states(self, alpha: np.ndarray, times: np.ndarray) -> np.ndarray:
        flat = np.atleast_1d(np.asarray(times, dtype=float))
        alpha = np.asarray(alpha, dtype=float)
        out = np.empty((flat.size, self.order))
        step = _uniform_step(flat)
        if step is not None:
            # One cached step matrix propagates the whole grid.
            step_matrix = sla.expm(self._T * step)
            vec = alpha @ sla.expm(self._T * flat[0])
            out[0] = vec
            for k in range(1, flat.size):
                vec = vec @ step_matrix
                out[k] = vec
        else:
            for k, t in enumerate(flat):
                out[k] = alpha @ sla.expm(self._T * t)
        return out


class SparseTransientOperator(TransientOperator):
    """CSR-backed backend: Krylov propagation + sparse LU / GMRES solves."""

    name = "sparse"

    def __init__(self, T: MatrixLike, *, lu_limit: int = SPARSE_LU_LIMIT) -> None:
        T = sparse.csr_matrix(T)
        if T.shape[0] != T.shape[1]:
            raise ValueError("T must be square")
        self._T = T
        self._Tt = T.T.tocsr()
        self._lu_limit = int(lu_limit)
        self._lu = None
        self._lu_t = None
        self._diag: Optional[np.ndarray] = None

    @property
    def order(self) -> int:
        return int(self._T.shape[0])

    @property
    def matrix(self) -> sparse.csr_matrix:
        """The CSR sub-generator itself (shared, do not mutate)."""
        return self._T

    def to_dense(self) -> np.ndarray:
        return self._T.toarray()

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self._T @ v

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        return self._Tt @ v

    # ------------------------------------------------------------------ solves
    def solve(self, b: np.ndarray) -> np.ndarray:
        if self.order <= self._lu_limit:
            if self._lu is None:
                try:
                    self._lu = spla.splu(self._T.tocsc())
                except RuntimeError:
                    # Exactly singular: a malformed generator — route through
                    # solve_linear's diagnosable (warning) fallback.
                    return solve_linear(self._T, np.asarray(b, dtype=float))
            return self._lu.solve(np.asarray(b, dtype=float))
        return self._krylov_solve(self._T, b)

    def solve_transpose(self, b: np.ndarray) -> np.ndarray:
        if self.order <= self._lu_limit:
            if self._lu_t is None:
                try:
                    self._lu_t = spla.splu(self._Tt.tocsc())
                except RuntimeError:
                    return solve_linear(self._Tt, np.asarray(b, dtype=float))
            return self._lu_t.solve(np.asarray(b, dtype=float))
        return self._krylov_solve(self._Tt, b)

    def _krylov_solve(self, A: sparse.csr_matrix,
                      b: np.ndarray) -> np.ndarray:
        """Jacobi-preconditioned GMRES with residual check and LU fallback.

        The hypercube-shaped state graph makes exact LU fill-in explode at
        large orders, while the strictly negative, dominant diagonal makes a
        Jacobi-preconditioned Krylov iteration converge in a handful of steps.
        """
        b = np.asarray(b, dtype=float)
        b_norm = float(np.linalg.norm(b))
        if b_norm == 0.0:
            return np.zeros_like(b)
        if self._diag is None:
            self._diag = self._T.diagonal()
        diag = self._diag
        M = spla.LinearOperator(A.shape, lambda v: v / diag)
        # The iteration often stagnates a decade short of _KRYLOV_RTOL on stiff
        # chains (large E[X]); what matters is the true residual, so accept on
        # that rather than on the solver's convergence flag.
        x, _info = spla.gmres(A, b, M=M, rtol=_KRYLOV_RTOL, atol=0.0,
                              restart=200, maxiter=20)
        residual = float(np.linalg.norm(A @ x - b)) / b_norm
        if residual <= _KRYLOV_ACCEPT:
            return x
        x, _info = spla.bicgstab(A, b, x0=x, M=M, rtol=_KRYLOV_RTOL, atol=0.0,
                                 maxiter=2000)
        residual = float(np.linalg.norm(A @ x - b)) / b_norm
        if residual <= _KRYLOV_ACCEPT:
            return x
        warnings.warn(
            f"iterative solvers stalled at relative residual {residual:.2e} on "
            f"a {A.shape[0]}-state system; falling back to exact sparse LU "
            "(slow at this size)", RuntimeWarning, stacklevel=3)
        lu = spla.splu(A.tocsc())
        return lu.solve(b)

    # ------------------------------------------------------------- propagation
    def expm_states(self, alpha: np.ndarray, times: np.ndarray) -> np.ndarray:
        flat = np.atleast_1d(np.asarray(times, dtype=float))
        alpha = np.asarray(alpha, dtype=float)
        out = np.empty((flat.size, self.order))
        step = _uniform_step(flat)
        if step is not None:
            # expm_multiply evaluates exp(t·Tᵀ)·α on the whole uniform grid with
            # one Krylov/Taylor pass (no matrix exponential is formed).
            states = spla.expm_multiply(
                self._Tt, alpha, start=float(flat[0]), stop=float(flat[-1]),
                num=flat.size, endpoint=True)
            out[:] = np.atleast_2d(states)
            return out
        # Arbitrary grids: propagate stepwise through the sorted unique times.
        order = np.argsort(flat, kind="stable")
        vec = alpha.copy()
        current = 0.0
        for k in order:
            dt = float(flat[k]) - current
            if dt > 0.0:
                vec = spla.expm_multiply(self._Tt * dt, vec)
                current = float(flat[k])
            out[k] = vec
        return out


def as_operator(T: MatrixLike, backend: str = "auto") -> TransientOperator:
    """Wrap a sub-generator in the matching :class:`TransientOperator`.

    With ``backend="auto"`` the storage format decides: an already-sparse
    matrix stays sparse, a dense array follows :func:`select_backend`'s
    size policy.  Forcing ``"dense"`` or ``"sparse"`` converts as needed.
    """
    if isinstance(T, TransientOperator):
        return T
    check_backend_name(backend)
    if sparse.issparse(T):
        if backend == "dense":
            return DenseTransientOperator(T.toarray())
        return SparseTransientOperator(T)
    T = np.asarray(T, dtype=float)
    if backend == "sparse" or (backend == "auto"
                               and T.shape[0] > DENSE_STATE_LIMIT):
        return SparseTransientOperator(sparse.csr_matrix(T))
    return DenseTransientOperator(T)
