"""Fault injection and error-propagation analysis.

The runtimes in :mod:`repro.recovery` inject faults online (through
:class:`~repro.workloads.spec.FaultModel`); this package provides the *offline*
counterparts used for analysis and testing:

* :class:`~repro.faults.injector.FaultInjector` — generate reproducible fault
  timelines (which process is hit when) for a given workload;
* :mod:`~repro.faults.propagation` — given a history and an error origin, compute
  which processes are contaminated at any instant and which checkpoints are
  contaminated (the key question for pseudo recovery points, Section 4).
"""

from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.propagation import (
    ContaminationAnalysis,
    contaminated_checkpoints,
    contamination_at,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "ContaminationAnalysis",
    "contaminated_checkpoints",
    "contamination_at",
]
