"""Offline contamination analysis over a recorded history.

Given an error that appears in one process at a known time, messages sent by a
contaminated process contaminate their receivers.  This module answers two
questions the paper's Section 4 discussion hinges on:

* which processes are contaminated at a given instant
  (:func:`contamination_at`), and
* which checkpoints — in particular which pseudo recovery points — captured a
  contaminated state (:func:`contaminated_checkpoints`), i.e. which PRPs cannot be
  trusted for recovery and force the rollback to continue past them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.history import HistoryDiagram
from repro.core.types import CheckpointKind, ProcessId, RecoveryPoint

__all__ = ["ContaminationAnalysis", "cascade_history", "contamination_at",
           "contaminated_checkpoints", "expand_cascade"]


@dataclass(frozen=True)
class ContaminationAnalysis:
    """Result of propagating one error through a history.

    ``infection_times[p]`` is the time at which process ``p`` became contaminated
    (absent if it never did); the error's origin has its original fault time.
    """

    origin: ProcessId
    fault_time: float
    infection_times: Dict[ProcessId, float]

    def is_contaminated(self, process: ProcessId, time: float) -> bool:
        """Whether *process* is contaminated at *time* (no recovery considered)."""
        infected_at = self.infection_times.get(process)
        return infected_at is not None and time >= infected_at

    @property
    def reach(self) -> int:
        """Number of processes the error reached (including the origin)."""
        return len(self.infection_times)


def _propagate(history: HistoryDiagram, origin: ProcessId,
               fault_time: float) -> ContaminationAnalysis:
    if not (0 <= origin < history.n_processes):
        raise ValueError(f"origin process {origin} out of range")
    if fault_time < 0.0:
        raise ValueError("fault time must be non-negative")
    infection: Dict[ProcessId, float] = {origin: fault_time}
    # Messages are processed in time order; a message contaminates its receiver
    # when its *send* happens at or after the sender's infection time.
    changed = True
    while changed:
        changed = False
        for interaction in history.interactions:
            sender_infected = infection.get(interaction.source)
            if sender_infected is None or interaction.time < sender_infected:
                continue
            receive = interaction.receive_time
            current = infection.get(interaction.target)
            if current is None or receive < current:
                infection[interaction.target] = receive
                changed = True
    return ContaminationAnalysis(origin=origin, fault_time=fault_time,
                                 infection_times=infection)


def contamination_at(history: HistoryDiagram, origin: ProcessId, fault_time: float,
                     time: float) -> Set[ProcessId]:
    """Processes contaminated at *time* by a fault in *origin* at *fault_time*."""
    analysis = _propagate(history, origin, fault_time)
    return {pid for pid, infected_at in analysis.infection_times.items()
            if infected_at <= time}


def contaminated_checkpoints(history: HistoryDiagram, origin: ProcessId,
                             fault_time: float,
                             *, kinds: Tuple[CheckpointKind, ...] = (
                                 CheckpointKind.REGULAR, CheckpointKind.PSEUDO)
                             ) -> List[RecoveryPoint]:
    """Checkpoints whose saved state includes the (propagated) error.

    A checkpoint is contaminated when its owner was already infected at the moment
    the state was saved.  With the paper's perfect-acceptance-test assumption only
    *pseudo* recovery points can end up contaminated — regular RPs of the origin
    process would have failed their acceptance test — but the function checks every
    requested kind so imperfect-test scenarios can be analysed too.
    """
    analysis = _propagate(history, origin, fault_time)
    out: List[RecoveryPoint] = []
    for pid in history.processes:
        infected_at = analysis.infection_times.get(pid)
        if infected_at is None:
            continue
        for rp in history.checkpoints(pid, kinds=kinds):
            if rp.time >= infected_at:
                out.append(rp)
    return sorted(out)


def expand_cascade(seeds: Sequence[ProcessId],
                   neighbors: Callable[[ProcessId], Iterable[ProcessId]],
                   probability: float, depth: int,
                   draw: Callable[[float], bool]) -> List[ProcessId]:
    """Expand a correlated fault from *seeds* along interaction edges.

    Breadth-first, up to *depth* hops: each hop, every newly infected process
    offers the fault to each of its uninfected *neighbors* (in the order the
    callback yields them), and the edge is crossed when ``draw(probability)``
    returns true.  Already-infected processes are never re-drawn, so the draw
    sequence — and therefore the result — is fully deterministic given the
    draw stream.  Returns the infected processes, seeds first, then each
    hop's infections in BFS order.

    This is the runtime counterpart of the offline message-based analysis
    above: the recovery runtimes use it to execute the ``fault_model`` block
    of a ``strategy`` spec (a common-mode event strikes a group, then may
    domino outward with ``propagation_probability`` per edge).
    """
    if not (0.0 <= probability <= 1.0):
        raise ValueError("probability must be in [0, 1]")
    if depth < 0:
        raise ValueError("depth must be >= 0")
    infected: List[ProcessId] = list(dict.fromkeys(seeds))
    seen: Set[ProcessId] = set(infected)
    frontier = list(infected)
    for _hop in range(depth):
        if probability <= 0.0 or not frontier:
            break
        fresh: List[ProcessId] = []
        for pid in frontier:
            for neighbor in neighbors(pid):
                if neighbor in seen:
                    continue
                if draw(probability):
                    seen.add(neighbor)
                    infected.append(neighbor)
                    fresh.append(neighbor)
        frontier = fresh
    return infected


def cascade_history(params, duration: float, *, seed: Optional[int] = None,
                    failure_law: str = "exponential",
                    failure_shape: Optional[float] = None) -> HistoryDiagram:
    """Sample a history for contamination analysis under any failure law.

    The domino-effect example path used to hard-wire the exponential model
    simulator; this front door serves the same histories for the exponential
    law — by delegating to
    :meth:`~repro.markov.montecarlo.ModelSimulator.generate_history`, so the
    output is bit-identical to the legacy path (pinned by regression tests) —
    and renewal histories via
    :class:`~repro.markov.montecarlo.RenewalModelSimulator` otherwise.
    """
    if failure_law == "exponential":
        if failure_shape is not None:
            raise ValueError("failure_shape requires a non-exponential "
                             "failure_law")
        from repro.markov.montecarlo import ModelSimulator
        return ModelSimulator(params, seed=seed).generate_history(duration)
    from repro.markov.montecarlo import RenewalModelSimulator
    sampler = RenewalModelSimulator(params, seed=seed, failure_law=failure_law,
                                    failure_shape=failure_shape)
    return sampler.generate_history(duration)
