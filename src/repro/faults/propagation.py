"""Offline contamination analysis over a recorded history.

Given an error that appears in one process at a known time, messages sent by a
contaminated process contaminate their receivers.  This module answers two
questions the paper's Section 4 discussion hinges on:

* which processes are contaminated at a given instant
  (:func:`contamination_at`), and
* which checkpoints — in particular which pseudo recovery points — captured a
  contaminated state (:func:`contaminated_checkpoints`), i.e. which PRPs cannot be
  trusted for recovery and force the rollback to continue past them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.history import HistoryDiagram
from repro.core.types import CheckpointKind, ProcessId, RecoveryPoint

__all__ = ["ContaminationAnalysis", "contamination_at", "contaminated_checkpoints"]


@dataclass(frozen=True)
class ContaminationAnalysis:
    """Result of propagating one error through a history.

    ``infection_times[p]`` is the time at which process ``p`` became contaminated
    (absent if it never did); the error's origin has its original fault time.
    """

    origin: ProcessId
    fault_time: float
    infection_times: Dict[ProcessId, float]

    def is_contaminated(self, process: ProcessId, time: float) -> bool:
        """Whether *process* is contaminated at *time* (no recovery considered)."""
        infected_at = self.infection_times.get(process)
        return infected_at is not None and time >= infected_at

    @property
    def reach(self) -> int:
        """Number of processes the error reached (including the origin)."""
        return len(self.infection_times)


def _propagate(history: HistoryDiagram, origin: ProcessId,
               fault_time: float) -> ContaminationAnalysis:
    if not (0 <= origin < history.n_processes):
        raise ValueError(f"origin process {origin} out of range")
    if fault_time < 0.0:
        raise ValueError("fault time must be non-negative")
    infection: Dict[ProcessId, float] = {origin: fault_time}
    # Messages are processed in time order; a message contaminates its receiver
    # when its *send* happens at or after the sender's infection time.
    changed = True
    while changed:
        changed = False
        for interaction in history.interactions:
            sender_infected = infection.get(interaction.source)
            if sender_infected is None or interaction.time < sender_infected:
                continue
            receive = interaction.receive_time
            current = infection.get(interaction.target)
            if current is None or receive < current:
                infection[interaction.target] = receive
                changed = True
    return ContaminationAnalysis(origin=origin, fault_time=fault_time,
                                 infection_times=infection)


def contamination_at(history: HistoryDiagram, origin: ProcessId, fault_time: float,
                     time: float) -> Set[ProcessId]:
    """Processes contaminated at *time* by a fault in *origin* at *fault_time*."""
    analysis = _propagate(history, origin, fault_time)
    return {pid for pid, infected_at in analysis.infection_times.items()
            if infected_at <= time}


def contaminated_checkpoints(history: HistoryDiagram, origin: ProcessId,
                             fault_time: float,
                             *, kinds: Tuple[CheckpointKind, ...] = (
                                 CheckpointKind.REGULAR, CheckpointKind.PSEUDO)
                             ) -> List[RecoveryPoint]:
    """Checkpoints whose saved state includes the (propagated) error.

    A checkpoint is contaminated when its owner was already infected at the moment
    the state was saved.  With the paper's perfect-acceptance-test assumption only
    *pseudo* recovery points can end up contaminated — regular RPs of the origin
    process would have failed their acceptance test — but the function checks every
    requested kind so imperfect-test scenarios can be analysed too.
    """
    analysis = _propagate(history, origin, fault_time)
    out: List[RecoveryPoint] = []
    for pid in history.processes:
        infected_at = analysis.infection_times.get(pid)
        if infected_at is None:
            continue
        for rp in history.checkpoints(pid, kinds=kinds):
            if rp.time >= infected_at:
                out.append(rp)
    return sorted(out)
