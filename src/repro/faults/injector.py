"""Reproducible fault-timeline generation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.util.validation import check_non_negative, check_positive

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True, order=True)
class FaultEvent:
    """A single transient fault: process *process* is corrupted at *time*."""

    time: float
    process: int

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ValueError("fault time must be non-negative")
        if self.process < 0:
            raise ValueError("process id must be non-negative")


class FaultInjector:
    """Generates Poisson fault timelines per process.

    Parameters
    ----------
    rates:
        Per-process fault rates (faults per unit time).  A rate of zero disables
        faults for that process.
    seed:
        Seed for reproducibility.
    """

    def __init__(self, rates: Sequence[float], seed: Optional[int] = None) -> None:
        self.rates = [check_non_negative(r, "fault rate") for r in rates]
        if not self.rates:
            raise ValueError("need at least one process")
        self.rng = np.random.default_rng(seed)

    @property
    def n(self) -> int:
        return len(self.rates)

    def timeline(self, horizon: float) -> List[FaultEvent]:
        """All fault events in ``[0, horizon)``, time ordered."""
        check_positive(horizon, "horizon")
        events: List[FaultEvent] = []
        for pid, rate in enumerate(self.rates):
            if rate <= 0.0:
                continue
            t = 0.0
            while True:
                t += float(self.rng.exponential(1.0 / rate))
                if t >= horizon:
                    break
                events.append(FaultEvent(time=t, process=pid))
        return sorted(events)

    def first_fault(self, horizon: float) -> Optional[FaultEvent]:
        """Earliest fault in ``[0, horizon)``, or None when there is none."""
        events = self.timeline(horizon)
        return events[0] if events else None

    def expected_fault_count(self, horizon: float) -> float:
        """Analytic expectation of the number of faults in ``[0, horizon)``."""
        check_positive(horizon, "horizon")
        return float(sum(self.rates) * horizon)
