"""HTTP/JSON front end for the evaluation service (raw asyncio streams).

The wire protocol is deliberately tiny — three routes, JSON bodies,
``Content-Length`` framing, optional keep-alive — implemented directly on
``asyncio.start_server`` so the service runs on the standard library alone
(the container has no aiohttp, and an evaluation RPC needs none of it):

``GET /v1/health``
    ``{"status": "ok", "service": "repro"}`` — liveness probe.
``GET /v1/stats``
    The service's :meth:`~repro.service.session.EvaluationService.stats`
    snapshot (dedup hit rate, LRU counters, batch occupancy, ...).
``POST /v1/evaluate``
    Body ``{"spec": {...StudySpec.to_dict...}, "method": "auto",
    "force": false}``.  Responds ``{"ok": true, "cells": [...]}`` with one
    entry per sweep cell: the evaluation payload
    (:meth:`Evaluation.to_experiment_result` encoding), the store key, the
    serving layer (``lru`` / ``store`` / ``inflight`` / ``computed``) and
    the elapsed compute seconds.  Spec errors return 400, engine errors
    500 — both as ``{"ok": false, "error": ...}``.

Because every connection funnels into one shared
:class:`~repro.service.session.EvaluationService`, concurrent clients get
the whole multi-tenant stack for free: identical in-flight cells
single-flight, hot cells serve from the LRU, and bursts coalesce into one
backend fan-out.

:class:`ServiceHTTPClient` is the matching minimal client (also raw
streams), used by the test suite and the CI smoke job.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.service.session import EvaluationService, SubmitOutcome

__all__ = ["EvaluationServer", "ServiceHTTPClient", "serve"]

#: Refuse request bodies beyond this size (a spec sweep is a few KiB).
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error"}


class _PayloadTooLarge(Exception):
    """A request declared a body beyond :data:`MAX_BODY_BYTES`.

    Raised out of header parsing and answered with a real 413 — it must NOT
    be an ``IncompleteReadError`` subclass, which ``_handle`` treats as
    "client went away" and swallows without responding.
    """

    def __init__(self, declared: int) -> None:
        super().__init__(f"declared body of {declared} bytes")
        self.declared = declared


def _encode_outcome(outcome: SubmitOutcome) -> Dict[str, object]:
    """One response cell: the stored result encoding plus provenance."""
    return {
        "key": outcome.key,
        "method": outcome.method,
        "source": outcome.source,
        "elapsed_seconds": outcome.elapsed_seconds,
        "spec": outcome.spec.to_dict(),
        "result": outcome.evaluation.to_experiment_result().to_dict(),
        "rel_tol": outcome.evaluation.rel_tol,
    }


class EvaluationServer:
    """One listening socket in front of one shared service."""

    def __init__(self, service: EvaluationService, host: str = "127.0.0.1",
                 port: int = 8642) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests = 0

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        if self.port == 0:                   # ephemeral port: report reality
            self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -------------------------------------------------------------- protocol
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _PayloadTooLarge as exc:
                    # Drain the declared body (bounded chunks, nothing is
                    # retained) so the client's in-flight upload doesn't die
                    # on a reset before it reads the response, then answer
                    # and close — the stream stays in sync either way.
                    self.requests += 1
                    remaining = exc.declared
                    while remaining > 0:
                        chunk = await reader.read(min(65536, remaining))
                        if not chunk:
                            break
                        remaining -= len(chunk)
                    await self._respond(
                        writer, 413,
                        {"ok": False,
                         "error": f"request body of {exc.declared} bytes "
                                  f"exceeds the {MAX_BODY_BYTES}-byte limit"},
                        keep_alive=False)
                    break
                if request is None:
                    break
                method, path, headers, body = request
                self.requests += 1
                status, payload = await self._route(method, path, body)
                keep_alive = headers.get("connection", "keep-alive") \
                    .lower() != "close"
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass                              # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # Shutdown cancels handler tasks mid-close; the connection
                # is going away either way.
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, Dict[str, str],
                                                bytes]]:
        try:
            request_line = await reader.readline()
        except ConnectionError:
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _PayloadTooLarge(length)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(self, method: str, path: str, body: bytes
                     ) -> Tuple[int, Dict[str, object]]:
        if path == "/v1/health":
            if method != "GET":
                return 405, {"ok": False, "error": "health is GET-only"}
            return 200, {"status": "ok", "service": "repro"}
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"ok": False, "error": "stats is GET-only"}
            return 200, self.service.stats()
        if path == "/v1/evaluate":
            if method != "POST":
                return 405, {"ok": False, "error": "evaluate is POST-only"}
            return await self._evaluate(body)
        return 404, {"ok": False, "error": f"no route {path}"}

    async def _evaluate(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict) or "spec" not in payload:
                raise ValueError("body must be a JSON object with a 'spec'")
            spec = payload["spec"]
            method = str(payload.get("method", "auto"))
            force = bool(payload.get("force", False))
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"ok": False, "error": str(exc)}
        try:
            outcome = await self.service.submit(spec, method, force=force)
        except (KeyError, TypeError, ValueError) as exc:
            # Spec-shaped problems: the client sent something unservable.
            return 400, {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:              # engine-side failure
            return 500, {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return 200, {"ok": True,
                     "cells": [_encode_outcome(cell)
                               for cell in outcome.cells]}

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, object], keep_alive: bool) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


class ServiceHTTPClient:
    """Minimal JSON-over-HTTP client matching :class:`EvaluationServer`.

    One persistent keep-alive connection per client instance (so a client
    maps onto one tenant), opened lazily on first request.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)

    async def request(self, method: str, path: str,
                      payload: Optional[Dict[str, object]] = None
                      ) -> Tuple[int, Dict[str, object]]:
        await self._connect()
        assert self._reader is not None and self._writer is not None
        body = b"" if payload is None \
            else json.dumps(payload).encode("utf-8")
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: keep-alive\r\n"
                "\r\n").encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line.strip():
            # The server hung up (or sent nothing) instead of a status line;
            # drop the dead socket so the next request reconnects cleanly.
            await self.close()
            raise ConnectionError(
                "server closed the connection before sending a status line")
        status = int(status_line.decode("latin-1").split()[1])
        length = 0
        server_closes = False
        while True:
            line = await self._reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "connection":
                server_closes = value.strip().lower() == "close"
        raw = await self._reader.readexactly(length) if length else b""
        if server_closes:
            # Honor the server's `Connection: close`: this socket will never
            # carry another response, so the next request must reconnect
            # rather than write into a half-closed stream.
            await self.close()
        return status, json.loads(raw.decode("utf-8")) if raw else {}

    async def health(self) -> Dict[str, object]:
        _status, payload = await self.request("GET", "/v1/health")
        return payload

    async def stats(self) -> Dict[str, object]:
        _status, payload = await self.request("GET", "/v1/stats")
        return payload

    async def evaluate(self, spec: Dict[str, object], method: str = "auto",
                       *, force: bool = False
                       ) -> Tuple[int, Dict[str, object]]:
        return await self.request("POST", "/v1/evaluate",
                                  {"spec": spec, "method": method,
                                   "force": force})

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._writer = None
            self._reader = None


async def serve(host: str = "127.0.0.1", port: int = 8642, *,
                backend=None, workers: Optional[int] = None,
                store: Optional[str] = None, shards: Optional[int] = None,
                lru_size: int = 1024, batch_window: float = 0.01,
                max_batch: int = 256,
                ready: Optional["asyncio.Event"] = None) -> None:
    """Run the service until cancelled (the ``python -m repro serve`` body).

    *ready*, when given, is set once the socket is listening — tests and
    the smoke job use it instead of polling.
    """
    service = EvaluationService(backend=backend, workers=workers,
                                store=store, shards=shards,
                                lru_size=lru_size,
                                batch_window=batch_window,
                                max_batch=max_batch)
    server = EvaluationServer(service, host=host, port=port)
    await server.start()
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
