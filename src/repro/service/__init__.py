"""Async multi-tenant evaluation service (``repro.service``).

One shared front end over the facade, for the moment when a study stops
being one researcher's script and becomes a team's shared workload: many
clients submitting overlapping :class:`~repro.api.spec.StudySpec` cells,
where naive per-client evaluation recomputes the same cells over and over
and pays a pool dispatch per cell.  The service collapses that:

``dedup``
    :class:`SingleFlight` — N concurrent identical submissions (same
    :meth:`~repro.api.spec.StudySpec.canonical_key`) share one backend
    execution; everyone gets the same stored result.
``cache``
    :class:`ResultLRU` — hot cells stay resident in front of the store, so
    repeat submissions cost a dict probe instead of a disk read.
``batching``
    :class:`AdmissionBatcher` / :func:`execute_cells` — a burst of distinct
    cells admitted within one window coalesces into a single backend
    ``map`` per engine worker, bit-identical to cell-at-a-time evaluation.
``session``
    :class:`EvaluationService` (the orchestrating core) and
    :class:`ServiceClient` (the in-process async client API).
``server``
    :class:`EvaluationServer` — the HTTP/JSON front end on raw asyncio
    streams (stdlib only), plus :class:`ServiceHTTPClient` and the
    :func:`serve` entry point behind ``python -m repro serve``.

Persistence goes through :class:`~repro.report.sharded.ShardedResultStore`
(per-shard indexes and locks), so concurrent batch flushes never serialise
on one index file — and a pre-existing flat store is read through as-is.

Quickstart (in-process)
-----------------------
>>> import asyncio
>>> from repro.service import EvaluationService, ServiceClient
>>> from repro.api import StudySpec, SystemSpec
>>> async def main():
...     service = EvaluationService()
...     client = ServiceClient(service, tenant="me")
...     spec = StudySpec(system=SystemSpec(n=4, failure_rate=1e-4),
...                      metrics=("availability",))
...     outcome = await client.submit(spec)
...     return outcome.cells[0].evaluation.metrics["availability"]
>>> round(asyncio.run(main()), 6)                       # doctest: +SKIP
0.999...
"""

from repro.service.batching import (AdmissionBatcher, BatchCell,
                                    ExecutedCell, execute_cells)
from repro.service.cache import CachedResult, ResultLRU
from repro.service.dedup import SingleFlight
from repro.service.server import (EvaluationServer, ServiceHTTPClient,
                                  serve)
from repro.service.session import (EvaluationService, ServiceClient,
                                   StudyOutcome, SubmitOutcome)

__all__ = [
    "AdmissionBatcher",
    "BatchCell",
    "CachedResult",
    "EvaluationServer",
    "EvaluationService",
    "ExecutedCell",
    "ResultLRU",
    "ServiceClient",
    "ServiceHTTPClient",
    "SingleFlight",
    "StudyOutcome",
    "SubmitOutcome",
    "execute_cells",
    "serve",
]
