"""Single-flight deduplication of in-flight identical cells.

When N clients submit the *same* cell (same :meth:`StudySpec.canonical_key`)
while it is still computing, exactly one backend execution happens: the
first submission becomes the flight *leader* and every later one joins the
leader's future.  All N submissions resolve to the same stored result, and
the backend sees one task set — the multi-tenant analogue of the store's
cache-hit semantics, extended to cells that are not *done* yet.

Flights are keyed by the cell's store key, so deduplication composes with
the LRU and the store: a submission probes LRU → store → in-flight, and only
then starts a new flight.  Seedless stochastic cells never get a flight —
two fresh-entropy runs are *different* experiments (the same policy that
keeps them out of the store).

The registry is confined to the service's event-loop thread; futures are
resolved on the loop, so joiners wake in the ordinary asyncio way.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

__all__ = ["SingleFlight"]


class SingleFlight:
    """In-flight registry: one shared future per cell key."""

    def __init__(self) -> None:
        self._flights: Dict[str, asyncio.Future] = {}
        #: Flights started (— the number of actual executions admitted).
        self.flights = 0
        #: Submissions that joined an existing flight instead of executing.
        self.joined = 0

    def __len__(self) -> int:
        return len(self._flights)

    def __contains__(self, key: str) -> bool:
        return key in self._flights

    def lease(self, key: str) -> Tuple[asyncio.Future, bool]:
        """Return ``(future, leader)`` for *key*.

        The leader (first caller for a key with no active flight) is
        responsible for arranging the computation and resolving the future;
        joiners just await it.  The flight unregisters itself when the
        future completes — however it completes — so a key can fly again
        later (e.g. a forced recompute after the first flight landed).
        """
        future = self._flights.get(key)
        if future is not None:
            self.joined += 1
            return future, False
        future = asyncio.get_running_loop().create_future()
        self._flights[key] = future
        future.add_done_callback(lambda _f, _k=key: self._flights.pop(_k, None))
        self.flights += 1
        return future, True

    def peek(self, key: str) -> Optional[asyncio.Future]:
        return self._flights.get(key)

    def pending(self) -> Tuple[asyncio.Future, ...]:
        """A snapshot of the active flight futures (for drain/shutdown)."""
        return tuple(self._flights.values())

    def stats(self) -> Dict[str, int]:
        return {"in_flight": len(self._flights), "flights": self.flights,
                "joined": self.joined}
