"""The evaluation service core: submissions in, shared results out.

:class:`EvaluationService` is the event-loop-side orchestrator behind both
the in-process :class:`ServiceClient` API and the HTTP front end
(:mod:`repro.service.server`).  A submitted cell travels::

    submit ── resolve engine ── canonical key
         │
         ├─ LRU probe            (hot cells: a dict lookup)
         ├─ store probe          (warm cells: one shard read, off-loop)
         ├─ single-flight join   (identical cell already computing)
         └─ admission batch      (leader: queue for the next fan-out)
                  │
                  └─ flush → execute_cells in a worker thread
                           → store.put per cell → resolve flight futures

Every layer is keyed by :meth:`StudySpec.canonical_key` — the same content
address the store uses — so the service's caches, the in-flight registry
and the on-disk store all agree about cell identity, and the result any
path serves is bit-identical to a direct :func:`repro.api.evaluate` call.

Seedless stochastic cells are the deliberate exception: two fresh-entropy
runs are different experiments, so they skip the LRU, the store and the
dedup registry (the same policy the runner applies) — but they still ride
the admission batch, so even an uncacheable burst costs one pool dispatch.

Threading model: all service state (LRU, flight registry, batcher,
counters) is confined to the event-loop thread.  Blocking work — store
reads, batch execution plus store writes — happens in worker threads via
``asyncio.to_thread``; the on-disk store tolerates that concurrency through
its per-shard index locks.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, List, Mapping, Optional, Union

from repro.api.evaluation import Evaluation
from repro.api.evaluators import get_evaluator, resolve_method
from repro.api.spec import EVALUATE_SCENARIO_NAME, StudySpec
from repro.report.sharded import ShardedResultStore
from repro.runner.backends import ExecutionBackend, make_backend
from repro.service.batching import (AdmissionBatcher, BatchCell,
                                    ExecutedCell, execute_cells)
from repro.service.cache import CachedResult, ResultLRU
from repro.service.dedup import SingleFlight

__all__ = ["EvaluationService", "ServiceClient", "StudyOutcome",
           "SubmitOutcome"]


@dataclass(frozen=True)
class SubmitOutcome:
    """One evaluated cell, with how the service satisfied it.

    ``source`` names the layer that produced the result: ``"lru"`` /
    ``"store"`` for cache hits, ``"inflight"`` for submissions that joined
    another tenant's computation, ``"computed"`` for the flight leader (and
    for uncacheable seedless cells, which always compute).
    """

    spec: StudySpec
    method: str
    key: Optional[str]
    source: str
    elapsed_seconds: float
    evaluation: Evaluation


@dataclass(frozen=True)
class StudyOutcome:
    """What :meth:`EvaluationService.submit` returns: one outcome per cell."""

    spec: StudySpec
    cells: List[SubmitOutcome]

    @property
    def evaluations(self) -> List[Evaluation]:
        return [cell.evaluation for cell in self.cells]

    @property
    def cache_hits(self) -> int:
        return sum(cell.source in ("lru", "store") for cell in self.cells)


@dataclass
class _Pending:
    """One admitted cell awaiting the next batch flush."""

    cell: BatchCell
    key: Optional[str]
    future: "asyncio.Future"


class EvaluationService:
    """Multi-tenant evaluation: dedup, cache, batch, then fan out once.

    Parameters
    ----------
    backend, workers:
        Execution backend for batch fan-outs (as in :func:`repro.evaluate`).
    store:
        ``None`` for a memory-only service, a directory path (opened as a
        :class:`~repro.report.sharded.ShardedResultStore`, reading any
        pre-existing flat store through transparently), or a ready store
        object exposing ``get``/``put``.
    lru_size:
        Hot-cell cache capacity (0 disables the LRU).
    batch_window:
        Seconds the admission batcher waits after a first admission before
        flushing, so a burst of concurrent submissions coalesces into one
        backend dispatch.
    max_batch:
        Flush immediately once this many cells are pending.
    shards:
        Shard count when *store* is a path (``None`` = persisted/default).
    """

    def __init__(self, backend: Union[str, ExecutionBackend, None] = None,
                 workers: Optional[int] = None,
                 store: Union[None, str, object] = None,
                 lru_size: int = 1024,
                 batch_window: float = 0.01,
                 max_batch: int = 256,
                 shards: Optional[int] = None) -> None:
        self.backend = make_backend(backend, workers)
        if isinstance(store, str):
            store = ShardedResultStore(store, shards=shards)
        self.store = store
        self.lru = ResultLRU(lru_size)
        self.flights = SingleFlight()
        self.batcher = AdmissionBatcher(self._flush, window=batch_window,
                                        max_batch=max_batch)
        self.submissions = 0
        self.cells_submitted = 0
        self.cells_executed = 0
        self.dispatches = 0
        self.store_hits = 0
        self.errors = 0

    # ------------------------------------------------------------- submission
    async def submit(self, spec: Union[StudySpec, Mapping[str, object]],
                     method: str = "auto", *,
                     force: bool = False) -> StudyOutcome:
        """Evaluate *spec* (sweeps expand to cells, submitted concurrently).

        Concurrent cell submission is what lets one tenant's sweep coalesce
        into a single backend fan-out — and lets many tenants' overlapping
        sweeps share flights instead of recomputing each other's cells.
        """
        if not isinstance(spec, StudySpec):
            spec = StudySpec.from_dict(spec)
        self.submissions += 1
        cells = await asyncio.gather(
            *(self.submit_cell(cell, method, force=force)
              for cell in spec.cells()))
        return StudyOutcome(spec=spec, cells=list(cells))

    async def submit_cell(self, cell: StudySpec, method: str = "auto", *,
                          force: bool = False) -> SubmitOutcome:
        """Evaluate one cell through the dedup/LRU/store/batch stack."""
        resolved = resolve_method(cell, method)
        evaluator = get_evaluator(resolved)
        self.cells_submitted += 1
        # Seedless stochastic cells are fresh-entropy experiments: no key,
        # no cache, no dedup — each submission is its own computation.
        cacheable = (not evaluator.stochastic) or cell.seed is not None
        if not cacheable:
            entry = await self._compute(BatchCell(spec=cell, method=resolved),
                                        key=None)
            return self._outcome(cell, resolved, None, "computed", entry)
        key = cell.canonical_key(resolved)
        if force:
            self.lru.invalidate(key)
        else:
            hit = self.lru.get(key)
            if hit is not None:
                return self._outcome(cell, resolved, key, "lru", hit)
            if self.store is not None:
                record = await asyncio.to_thread(self.store.get, key,
                                                 EVALUATE_SCENARIO_NAME)
                if record is not None:
                    self.store_hits += 1
                    entry = CachedResult(key=key, result=record.result,
                                         elapsed_seconds=record.elapsed_seconds)
                    self.lru.put(entry)
                    return self._outcome(cell, resolved, key, "store", entry)
        flight, leader = self.flights.lease(key)
        if not leader:
            entry = await asyncio.shield(flight)
            return self._outcome(cell, resolved, key, "inflight", entry)
        entry = await self._compute(BatchCell(spec=cell, method=resolved),
                                    key=key, flight=flight)
        return self._outcome(cell, resolved, key, "computed", entry)

    def _outcome(self, cell: StudySpec, method: str, key: Optional[str],
                 source: str, entry: CachedResult) -> SubmitOutcome:
        # rel_tol is a spec-side annotation excluded from the cell identity;
        # restamp the requesting spec's value, exactly as the facade does.
        evaluation = _dc_replace(Evaluation.from_experiment_result(entry.result),
                                 rel_tol=cell.rel_tol)
        return SubmitOutcome(spec=cell, method=method, key=key, source=source,
                             elapsed_seconds=entry.elapsed_seconds,
                             evaluation=evaluation)

    async def _compute(self, cell: BatchCell, key: Optional[str],
                       flight: Optional["asyncio.Future"] = None
                       ) -> CachedResult:
        """Admit *cell* for the next batch flush and await its result."""
        if flight is None:
            flight = asyncio.get_running_loop().create_future()
        self.batcher.admit(_Pending(cell=cell, key=key, future=flight))
        return await asyncio.shield(flight)

    # ------------------------------------------------------------- execution
    async def _flush(self, batch: List[_Pending]) -> None:
        """Execute one admitted batch off-loop and resolve its futures."""
        try:
            outcomes, dispatches = await asyncio.to_thread(
                self._execute_and_store, [p.cell for p in batch],
                [p.key for p in batch])
        except Exception as exc:                      # defensive: whole batch
            outcomes, dispatches = [exc] * len(batch), 0
        self.dispatches += dispatches
        for pending, outcome in zip(batch, outcomes):
            if isinstance(outcome, Exception):
                self.errors += 1
                if not pending.future.done():
                    pending.future.set_exception(outcome)
                continue
            self.cells_executed += 1
            entry = CachedResult(key=pending.key, result=outcome.result,
                                 elapsed_seconds=outcome.elapsed_seconds)
            if pending.key is not None:
                self.lru.put(entry)
            if not pending.future.done():
                pending.future.set_result(entry)

    def _execute_and_store(self, cells: List[BatchCell],
                           keys: List[Optional[str]]):
        """Worker-thread body: one fan-out, then persist the cacheable cells.

        Store writes happen here — off the event loop, under the store's
        per-shard index locks — using the *canonical* cell identity, so the
        service writes byte-identical records under byte-identical keys to
        what a direct store-attached ``evaluate`` call writes.
        """
        outcomes, dispatches = execute_cells(self.backend, cells)
        if self.store is not None:
            described = self.backend.describe()
            for cell, key, outcome in zip(cells, keys, outcomes):
                if key is None or not isinstance(outcome, ExecutedCell):
                    continue
                reps = cell.spec.effective_reps() \
                    if get_evaluator(cell.method).stochastic else None
                self.store.put(EVALUATE_SCENARIO_NAME,
                               cell.spec.cell_params(cell.method),
                               cell.spec.seed, reps, backend=described,
                               elapsed_seconds=outcome.elapsed_seconds,
                               result=outcome.result)
        return outcomes, dispatches

    # ------------------------------------------------------------- lifecycle
    async def drain(self) -> None:
        """Flush pending admissions and wait for in-flight work to land."""
        await self.batcher.drain()
        while len(self.flights):
            await asyncio.gather(*self.flights.pending(),
                                 return_exceptions=True)

    def stats(self) -> Dict[str, object]:
        """One JSON-able snapshot of every layer's counters."""
        dedup = self.flights.stats()
        total = self.cells_submitted
        served_without_compute = (self.lru.hits + self.store_hits
                                  + dedup["joined"])
        return {
            "submissions": self.submissions,
            "cells_submitted": total,
            "cells_executed": self.cells_executed,
            "dispatches": self.dispatches,
            "store_hits": self.store_hits,
            "errors": self.errors,
            "dedup_hit_rate": (served_without_compute / total) if total
            else 0.0,
            "backend": self.backend.describe(),
            "store": getattr(self.store, "root", None),
            "lru": self.lru.stats(),
            "dedup": dedup,
            "batching": self.batcher.stats(),
        }


class ServiceClient:
    """In-process async client: one tenant's handle onto a shared service.

    The client is intentionally thin — cell identity, caching and dedup all
    live in the service — but it keeps per-tenant counters so a multi-tenant
    test (or the stats endpoint) can show who asked for what.
    """

    def __init__(self, service: EvaluationService,
                 tenant: str = "local") -> None:
        self.service = service
        self.tenant = str(tenant)
        self.submitted = 0

    async def submit(self, spec: Union[StudySpec, Mapping[str, object]],
                     method: str = "auto", *,
                     force: bool = False) -> StudyOutcome:
        self.submitted += 1
        return await self.service.submit(spec, method, force=force)
