"""Admission batching: coalesce a burst of cells into one backend fan-out.

Pool dispatch has a fixed cost (task pickling, pool scheduling, result
collection), so a burst of 100 single-cell submissions paying it 100 times
would throw away exactly the economy a shared service exists to provide.
The :class:`AdmissionBatcher` holds admitted cells for a short window (the
first admission arms the timer) and flushes them as *one* batch; the batch
executor, :func:`execute_cells`, then groups the batch by engine worker
function and issues **one ``backend.map`` per group** — a burst of analytic
cells costs one dispatch, a mixed mc/des burst costs one (they share a
worker), and a strategy burst costs one more.

Bit-identity contract
---------------------
Batching re-routes *when* cells execute, never *how*.  Each cell gets its
own :class:`~repro.runner.runner.ExecutionContext` seeded with its own root
seed, its tasks are built by the very evaluator methods the facade uses
(driver-spawned seeds, fixed shard layout), and only the resulting task
lists are concatenated into the shared map — backends return results in
task order, so slicing the outputs per cell reproduces exactly what a
direct :func:`repro.api.evaluate` call computes.  Stochastic cells round
their spec through :meth:`StudySpec.cell_params` first, mirroring the
runner's internal ``evaluate`` scenario; deterministic cells reuse the
facade's own worker payloads.  The per-cell results are therefore
bit-identical to direct evaluation, and they are stored under the identical
keys.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.evaluators import get_evaluator
from repro.api.facade import (_DeterministicCell,
                              _evaluate_deterministic_cell_timed)
from repro.api.spec import StudySpec
from repro.experiments.common import ExperimentResult
from repro.runner import ExecutionContext
from repro.runner.backends import ExecutionBackend

__all__ = ["AdmissionBatcher", "BatchCell", "ExecutedCell", "execute_cells"]


@dataclass(frozen=True)
class BatchCell:
    """One admitted cell: a single-cell spec plus its resolved engine."""

    spec: StudySpec
    method: str


@dataclass(frozen=True)
class ExecutedCell:
    """One executed cell in the store's currency (result-row encoding)."""

    result: ExperimentResult
    elapsed_seconds: float


def _stochastic_study(cell: BatchCell) -> StudySpec:
    """The spec the runner's ``evaluate`` scenario would reconstruct.

    The facade ships stochastic cells through their canonical
    ``cell_params`` payload (seed/reps stripped into runner slots,
    execution-tuning options dropped) and the scenario rebuilds the spec
    from that dict.  Reproducing the round trip here keeps the assembled
    evaluation — including defaulted annotation fields — byte-identical.
    """
    return StudySpec.from_dict(cell.spec.cell_params(cell.method)["spec"])


def execute_cells(backend: ExecutionBackend, cells: Sequence[BatchCell]
                  ) -> Tuple[List[Union[ExecutedCell, Exception]], int]:
    """Execute *cells* with one ``backend.map`` per engine-worker group.

    Returns ``(outcomes, dispatches)`` where ``outcomes[i]`` corresponds to
    ``cells[i]`` — an :class:`ExecutedCell`, or the exception that cell's
    group (or its own assembly) raised — and ``dispatches`` counts the
    ``backend.map`` calls issued.  A failing group poisons only its own
    cells; other groups still execute.
    """
    outcomes: List[Optional[Union[ExecutedCell, Exception]]] = \
        [None] * len(cells)
    # Group by the engine's worker function (mc and des share one), in
    # first-appearance order so execution order is deterministic.
    groups: Dict[object, List[int]] = {}
    for index, cell in enumerate(cells):
        try:
            evaluator = get_evaluator(cell.method)
        except KeyError as exc:                     # bad cell, not bad batch
            outcomes[index] = exc
            continue
        worker = _evaluate_deterministic_cell_timed \
            if not evaluator.stochastic else evaluator.worker
        groups.setdefault(worker, []).append(index)
    dispatches = 0
    for worker, indices in groups.items():
        if worker is _evaluate_deterministic_cell_timed:
            dispatches += _run_deterministic_group(backend, cells, indices,
                                                  outcomes)
        else:
            dispatches += _run_stochastic_group(backend, worker, cells,
                                                indices, outcomes)
    return [out if out is not None
            else RuntimeError("cell was never executed")        # unreachable
            for out in outcomes], dispatches


def _run_deterministic_group(backend: ExecutionBackend,
                             cells: Sequence[BatchCell],
                             indices: Sequence[int],
                             outcomes: List) -> int:
    """One map over the facade's deterministic worker payloads."""
    payloads = [_DeterministicCell(spec=cells[i].spec, method=cells[i].method)
                for i in indices]
    try:
        results = backend.map(_evaluate_deterministic_cell_timed, payloads)
    except Exception as exc:                        # poison this group only
        for i in indices:
            outcomes[i] = exc
        return 1
    for i, (evaluation, elapsed) in zip(indices, results):
        outcomes[i] = ExecutedCell(result=evaluation.to_experiment_result(),
                                   elapsed_seconds=elapsed)
    return 1


def _run_stochastic_group(backend: ExecutionBackend, worker,
                          cells: Sequence[BatchCell],
                          indices: Sequence[int],
                          outcomes: List) -> int:
    """Per-cell contexts and task lists, one shared map, per-cell assembly."""
    tasks: List[object] = []
    bounds: List[Tuple[int, int, int, StudySpec]] = []  # (cell, lo, hi, study)
    for i in indices:
        cell = cells[i]
        evaluator = get_evaluator(cell.method)
        try:
            study = _stochastic_study(cell)
            # The cell's own root seed and resolved budget — exactly the
            # context the runner would build for its single-cell run.
            ctx = ExecutionContext(backend=backend, seed=cell.spec.seed,
                                   reps=cell.spec.effective_reps())
            cell_tasks = evaluator.tasks(study, ctx)
        except Exception as exc:                    # bad cell, not bad batch
            outcomes[i] = exc
            continue
        bounds.append((i, len(tasks), len(tasks) + len(cell_tasks), study))
        tasks.extend(cell_tasks)
    if not bounds:
        return 0
    start = time.perf_counter()
    try:
        output = backend.map(worker, tasks)
    except Exception as exc:
        for i, _lo, _hi, _study in bounds:
            outcomes[i] = exc
        return 1
    map_wall = time.perf_counter() - start
    for i, lo, hi, study in bounds:
        evaluator = get_evaluator(cells[i].method)
        # Provenance only: the shared map's wall time is attributed to the
        # cell in proportion to its task count (plus its own assembly).
        share = map_wall * (hi - lo) / max(1, len(tasks))
        assemble_start = time.perf_counter()
        try:
            evaluation = evaluator.assemble(study, output[lo:hi])
        except Exception as exc:
            outcomes[i] = exc
            continue
        elapsed = share + (time.perf_counter() - assemble_start)
        outcomes[i] = ExecutedCell(result=evaluation.to_experiment_result(),
                                   elapsed_seconds=elapsed)
    return 1


class AdmissionBatcher:
    """Hold admitted entries for a window, then flush them as one batch.

    The first admission arms the window timer; reaching ``max_batch``
    flushes immediately.  ``flush`` is an async callable receiving the
    drained entry list — the service's flush coroutine, which executes the
    batch in a worker thread and resolves the entries' futures.  Entries
    are opaque to the batcher (it never looks inside them).
    """

    def __init__(self, flush: Callable[[List[object]], "asyncio.Future"],
                 window: float = 0.01, max_batch: int = 256) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._flush = flush
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._pending: List[object] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self.batches = 0
        self.admitted = 0
        self.occupancy_total = 0

    def __len__(self) -> int:
        return len(self._pending)

    def admit(self, entry: object) -> None:
        """Queue *entry*; arm the window timer on a first admission."""
        self._pending.append(entry)
        self.admitted += 1
        if len(self._pending) >= self.max_batch:
            self._fire()
        elif self._timer is None:
            loop = asyncio.get_running_loop()
            self._timer = loop.call_later(self.window, self._fire)

    def _fire(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.batches += 1
        self.occupancy_total += len(batch)
        asyncio.ensure_future(self._flush(batch))

    async def drain(self) -> None:
        """Flush anything pending now (shutdown path)."""
        self._fire()

    def stats(self) -> Dict[str, float]:
        occupancy = (self.occupancy_total / self.batches) if self.batches \
            else 0.0
        return {"admitted": self.admitted, "batches": self.batches,
                "pending": len(self._pending),
                "mean_occupancy": occupancy}
