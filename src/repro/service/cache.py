"""Bounded in-memory LRU in front of the :class:`ResultStore`.

The service keeps the hottest cells resident so repeat submissions of
popular cells (the whole point of a shared evaluation front end) cost a
dict probe instead of a store read.  Entries are keyed by the cell's store
key and hold the *stored* currency — the encoded
:class:`~repro.experiments.common.ExperimentResult` plus its compute-time
provenance — so an LRU hit decodes through exactly the same path as a store
hit and the two are bit-identical by construction.

The cache is confined to the service's event-loop thread (every mutation
happens between ``await``\\ s), so it needs no locking; eviction is plain
least-recently-used on access order.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.common import ExperimentResult

__all__ = ["CachedResult", "ResultLRU"]


@dataclass(frozen=True)
class CachedResult:
    """One resident cell: the stored result form plus its provenance."""

    key: str
    result: ExperimentResult
    elapsed_seconds: float


class ResultLRU:
    """A bounded least-recently-used map from store key to result.

    ``maxsize=0`` disables caching entirely (every ``get`` misses, ``put``
    is a no-op) — the service treats that as "store-only" mode.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[CachedResult]:
        """Look up *key*, refreshing its recency on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, entry: CachedResult) -> None:
        """Insert (or refresh) *entry*, evicting the coldest past capacity."""
        if self.maxsize == 0:
            return
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop *key* (a forced recompute must not serve the stale entry)."""
        return self._entries.pop(key, None) is not None

    def stats(self) -> Dict[str, int]:
        return {"size": len(self._entries), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}
