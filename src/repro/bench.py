"""Persistent performance trajectory and per-phase timing.

Two small, dependency-free utilities the benchmark suite and the CLI share:

**Trajectory recorder** — :func:`record` appends a machine-stamped entry
(op, n, wall time, throughput, code version) to ``BENCH_<area>.json`` at the
repository root.  The files are append-only: each entry documents one
measurement on one machine at one point of the code's history, so the file
as a whole is the performance *trajectory* of that area — the record future
optimisation work (and the CI regression guard) compares against.

File format (one JSON object per area)::

    {"area": "strategy", "schema": 1, "entries": [
        {"op": "strategy_sweep_3schemes_x4lam", "n": 60,
         "unit": "replications", "wall_seconds": 1.857,
         "throughput": 32.31, "code_version": "1.1.0",
         "note": "pre-PR baseline, interleaved with the after run",
         "machine": {"node": "...", "machine": "x86_64",
                     "cpus": 1, "python": "3.11.7"},
         "timestamp": "2026-08-08T09:00:00Z",
         "extra": {}},
        ...]}

Comparing wall times across *different* machines is meaningless, so every
entry carries a machine stamp and :func:`latest` can filter to entries
recorded on the current machine; the benchmark guard skips rather than
fails when no same-machine baseline exists.  To refresh a baseline after an
intentional perf change: run the trajectory benchmarks with
``REPRO_BENCH_RECORD=1`` and commit the rewritten ``BENCH_*.json``.

**Phase timer** — :func:`collect_phases` / :func:`phase` implement the
``python -m repro eval --timing`` breakdown.  Instrumented code wraps its
phases in ``with phase("solve"):`` — a no-op (a shared null context, no
allocation) unless a collector is active, so the instrumentation costs
nothing on the normal path.  Phases nest by name: re-entering the active
phase (e.g. per-cell ``assembly`` inside a sweep) accumulates into one
bucket.
"""

from __future__ import annotations

import contextlib
import json
import os
import platform
import time
from typing import Dict, List, Optional

from repro._version import __version__

__all__ = [
    "PhaseTimer",
    "bench_path",
    "collect_phases",
    "latest",
    "load_trajectory",
    "machine_stamp",
    "phase",
    "record",
    "repo_root",
]

#: Format version of the BENCH files (bump on incompatible layout changes).
BENCH_SCHEMA = 1


# --------------------------------------------------------------------- files
def repo_root() -> str:
    """The repository root the ``BENCH_*.json`` files live in.

    ``REPRO_BENCH_DIR`` overrides (CI writes artifacts elsewhere); otherwise
    walk up from this module towards a directory containing ``setup.py`` —
    the package layout is ``<root>/src/repro/bench.py`` — falling back to
    the current working directory for installed copies.
    """
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    for _ in range(4):
        here = os.path.dirname(here)
        if os.path.isfile(os.path.join(here, "setup.py")):
            return here
    return os.getcwd()


def bench_path(area: str, root: Optional[str] = None) -> str:
    """Path of the trajectory file for *area* (``BENCH_<area>.json``)."""
    if not area or not area.replace("_", "").isalnum():
        raise ValueError(f"area must be a simple identifier, got {area!r}")
    return os.path.join(root if root is not None else repo_root(),
                        f"BENCH_{area}.json")


def machine_stamp() -> Dict[str, object]:
    """What makes wall times comparable: node, arch, CPU count, python."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
    }


def load_trajectory(area: str, root: Optional[str] = None) -> List[Dict]:
    """All recorded entries for *area*, oldest first (empty when no file)."""
    path = bench_path(area, root)
    if not os.path.isfile(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError(f"{path} is not a BENCH trajectory file")
    return entries


def record(area: str, op: str, n: int, wall_seconds: float, *,
           unit: str = "items", note: str = "",
           extra: Optional[Dict[str, object]] = None,
           root: Optional[str] = None) -> Dict[str, object]:
    """Append one measurement to ``BENCH_<area>.json`` and return the entry.

    ``throughput`` is derived (``n / wall_seconds``) so trajectory entries
    with different problem sizes stay comparable.
    """
    if wall_seconds <= 0.0:
        raise ValueError(f"wall_seconds must be positive, got {wall_seconds}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    entry: Dict[str, object] = {
        "op": str(op),
        "n": int(n),
        "unit": str(unit),
        "wall_seconds": float(wall_seconds),
        "throughput": float(n) / float(wall_seconds),
        "code_version": __version__,
        "note": str(note),
        "machine": machine_stamp(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if extra:
        entry["extra"] = dict(extra)
    path = bench_path(area, root)
    entries = load_trajectory(area, root)
    entries.append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"area": area, "schema": BENCH_SCHEMA, "entries": entries},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entry


def latest(area: str, op: str, *, same_machine: bool = False,
           root: Optional[str] = None) -> Optional[Dict]:
    """The most recent entry for *op* (optionally: on this machine), or None."""
    stamp = machine_stamp() if same_machine else None
    for entry in reversed(load_trajectory(area, root)):
        if entry.get("op") != op:
            continue
        if stamp is not None and entry.get("machine") != stamp:
            continue
        return entry
    return None


# --------------------------------------------------------------------- timing
class PhaseTimer:
    """Accumulates named wall-time buckets (one level, names may repeat)."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._started = time.perf_counter()

    @contextlib.contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def render(self, digits: int = 3) -> str:
        """The ``--timing`` table: one line per phase, insertion order.

        The ``other`` line is the collector's lifetime not covered by any
        phase (argument parsing, result rendering, ...), so the column sums
        to the total.
        """
        total = time.perf_counter() - self._started
        covered = sum(self.totals.values())
        width = max([len(n) for n in self.totals] + [len("total"), 5])
        lines = ["[timing]"]
        for name, seconds in self.totals.items():
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(f"  {name:<{width}}  {seconds:>{digits + 5}.{digits}f}s"
                         f"  {share:5.1f}%  (x{self.counts[name]})")
        rest = max(0.0, total - covered)
        share = 100.0 * rest / total if total > 0 else 0.0
        lines.append(f"  {'other':<{width}}  {rest:>{digits + 5}.{digits}f}s"
                     f"  {share:5.1f}%")
        lines.append(f"  {'total':<{width}}  {total:>{digits + 5}.{digits}f}s")
        return "\n".join(lines)


#: The active collector (one per process; the CLI is single-threaded).
_ACTIVE: Optional[PhaseTimer] = None

#: Shared no-op context for the disabled path — no allocation per call.
_NULL = contextlib.nullcontext()


@contextlib.contextmanager
def collect_phases():
    """Activate a :class:`PhaseTimer` for the dynamic extent of the block."""
    global _ACTIVE
    timer = PhaseTimer()
    previous, _ACTIVE = _ACTIVE, timer
    try:
        yield timer
    finally:
        _ACTIVE = previous


def phase(name: str):
    """Context manager timing *name* into the active collector (no-op without).

    Instrumentation sites call this unconditionally; the disabled path
    returns a shared null context.
    """
    timer = _ACTIVE
    return timer.phase(name) if timer is not None else _NULL
