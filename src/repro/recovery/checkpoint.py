"""Checkpoint storage: saved states, lookup, purging and space accounting.

A :class:`CheckpointStore` holds one :class:`SavedState` per checkpoint recorded in
the history (regular recovery points, pseudo recovery points, and the implicit
initial states).  The store also implements the space-reclamation rule of
Section 4: under the PRP scheme, once a new recovery point is established, all old
RPs and PRPs other than those participating in the current pseudo recovery lines
can be purged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.types import CheckpointKind, ProcessId, RecoveryPoint

__all__ = ["SavedState", "CheckpointStore"]


@dataclass(frozen=True)
class SavedState:
    """The payload saved at a checkpoint.

    Attributes
    ----------
    process, index:
        Identity of the checkpoint (matches the corresponding
        :class:`~repro.core.types.RecoveryPoint` in the history).
    time:
        Simulation time of the save.
    kind:
        Regular RP, pseudo RP or initial state.
    work_done:
        Useful work the process had completed when the state was saved (restoring
        the state resets the work counter to this value).
    contaminated:
        Whether an undetected error was present in the process state when it was
        saved.  Regular RPs are clean with a perfect acceptance test; PRPs can be
        contaminated, which is exactly why a pseudo recovery line may need to be
        abandoned (Section 4).
    error_origin:
        Originating process of the contamination (meaningful when contaminated).
    size:
        Abstract size of the saved state (bytes or words); used only for storage
        accounting.
    origin:
        For PRPs, the ``(process, index)`` of the triggering RP.
    """

    process: ProcessId
    index: int
    time: float
    kind: CheckpointKind
    work_done: float
    contaminated: bool = False
    error_origin: Optional[ProcessId] = None
    size: float = 1.0
    origin: Optional[Tuple[ProcessId, int]] = None

    def matches(self, rp: RecoveryPoint) -> bool:
        """Whether this saved state corresponds to history checkpoint *rp*."""
        return (self.process == rp.process and self.index == rp.index
                and self.kind is rp.kind)


class CheckpointStore:
    """Per-process collections of saved states with purge rules and accounting."""

    def __init__(self, n_processes: int, *, state_size: float = 1.0) -> None:
        if n_processes < 1:
            raise ValueError("need at least one process")
        if state_size <= 0.0:
            raise ValueError("state_size must be positive")
        self.n = int(n_processes)
        self.state_size = float(state_size)
        self._states: List[Dict[int, SavedState]] = [dict() for _ in range(self.n)]
        self._peak_count = 0
        self._total_saves = 0
        self._purged = 0
        # Every process starts with a clean initial state (work 0, index 0).
        for pid in range(self.n):
            self._insert(SavedState(process=pid, index=0, time=0.0,
                                    kind=CheckpointKind.INITIAL, work_done=0.0,
                                    size=self.state_size))

    # ------------------------------------------------------------------ recording
    def _insert(self, state: SavedState) -> SavedState:
        self._states[state.process][state.index] = state
        self._total_saves += 1
        self._peak_count = max(self._peak_count, self.count())
        return state

    def save(self, rp: RecoveryPoint, *, work_done: float,
             contaminated: bool = False, error_origin: Optional[ProcessId] = None
             ) -> SavedState:
        """Record the saved state for history checkpoint *rp*."""
        state = SavedState(process=rp.process, index=rp.index, time=rp.time,
                           kind=rp.kind, work_done=float(work_done),
                           contaminated=bool(contaminated),
                           error_origin=error_origin, size=self.state_size,
                           origin=rp.origin)
        return self._insert(state)

    # ------------------------------------------------------------------ lookup
    def lookup(self, rp: RecoveryPoint) -> SavedState:
        """Saved state for history checkpoint *rp* (raises KeyError if purged)."""
        try:
            state = self._states[rp.process][rp.index]
        except KeyError as exc:
            raise KeyError(f"no saved state for {rp.label} "
                           f"(purged or never recorded)") from exc
        if not state.matches(rp):
            raise KeyError(f"stored state for index {rp.index} of P{rp.process + 1} "
                           f"does not match {rp.label}")
        return state

    def get(self, process: ProcessId, index: int) -> Optional[SavedState]:
        return self._states[process].get(index)

    def states_of(self, process: ProcessId) -> List[SavedState]:
        """All retained states of *process*, oldest first."""
        return [self._states[process][i] for i in sorted(self._states[process])]

    def latest_regular(self, process: ProcessId,
                       before: float = float("inf")) -> SavedState:
        """Most recent regular RP (or the initial state) of *process* before *before*."""
        best: Optional[SavedState] = None
        for state in self._states[process].values():
            if state.kind is CheckpointKind.PSEUDO:
                continue
            if state.time <= before and (best is None or state.time > best.time):
                best = state
        assert best is not None, "initial state can never be purged"
        return best

    def pseudo_for_origin(self, process: ProcessId,
                          origin: Tuple[ProcessId, int]) -> Optional[SavedState]:
        """The PRP implanted in *process* for the given triggering RP, if retained."""
        for state in self._states[process].values():
            if state.kind is CheckpointKind.PSEUDO and state.origin == tuple(origin):
                return state
        return None

    # ------------------------------------------------------------------ accounting
    def count(self, process: Optional[ProcessId] = None) -> int:
        """Number of retained saved states (per process or total)."""
        if process is not None:
            return len(self._states[process])
        return sum(len(d) for d in self._states)

    def total_size(self) -> float:
        """Total retained storage (sum of state sizes)."""
        return sum(state.size for d in self._states for state in d.values())

    @property
    def peak_count(self) -> int:
        """Largest number of simultaneously retained states observed."""
        return self._peak_count

    @property
    def total_saves(self) -> int:
        return self._total_saves

    @property
    def purged_count(self) -> int:
        return self._purged

    # ------------------------------------------------------------------ purging
    def _purge_if(self, process: ProcessId, predicate) -> int:
        doomed = [idx for idx, state in self._states[process].items()
                  if state.kind is not CheckpointKind.INITIAL and predicate(state)]
        for idx in doomed:
            del self._states[process][idx]
        self._purged += len(doomed)
        return len(doomed)

    def purge_before(self, process: ProcessId, time: float,
                     *, keep_latest_regular: bool = True) -> int:
        """Discard states of *process* saved strictly before *time*.

        With ``keep_latest_regular`` the most recent regular RP is always retained
        (a process must never lose its restart capability).
        """
        keeper = self.latest_regular(process) if keep_latest_regular else None
        return self._purge_if(process,
                              lambda s: s.time < time and s is not keeper)

    def purge_obsolete_pseudo_lines(self) -> int:
        """Section 4 space reclamation.

        Keep, for every process ``i``: its most recent regular RP, and every PRP
        whose triggering RP is currently the most recent RP of its owner.  All
        other RPs and PRPs are purged.  Returns the number of states discarded.
        """
        latest_rp: Dict[ProcessId, SavedState] = {
            pid: self.latest_regular(pid) for pid in range(self.n)}
        live_origins = {(pid, state.index) for pid, state in latest_rp.items()
                        if state.kind is CheckpointKind.REGULAR}
        purged = 0
        for pid in range(self.n):
            keeper = latest_rp[pid]

            def doomed(state: SavedState, keeper=keeper) -> bool:
                if state is keeper:
                    return False
                if state.kind is CheckpointKind.PSEUDO:
                    return state.origin not in live_origins
                # Older regular RPs are superseded by the keeper.
                return True

            purged += self._purge_if(pid, doomed)
        return purged
