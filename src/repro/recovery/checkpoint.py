"""Checkpoint storage: saved states, lookup, purging and space accounting.

A :class:`CheckpointStore` holds one :class:`SavedState` per checkpoint recorded in
the history (regular recovery points, pseudo recovery points, and the implicit
initial states).  The store also implements the space-reclamation rule of
Section 4: under the PRP scheme, once a new recovery point is established, all old
RPs and PRPs other than those participating in the current pseudo recovery lines
can be purged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.types import CheckpointKind, ProcessId, RecoveryPoint

__all__ = ["SavedState", "CheckpointStore"]


class SavedState:
    """The payload saved at a checkpoint.

    A hand-written value class (``__slots__``, plain ``__init__``) rather than a
    frozen dataclass: one is created per checkpoint taken, which makes the
    per-field ``object.__setattr__`` cost of a generated frozen initialiser a
    measurable slice of a replication sweep.  Equality compares every field,
    matching the dataclass it replaces; instances are treated as immutable.

    Attributes
    ----------
    process, index:
        Identity of the checkpoint (matches the corresponding
        :class:`~repro.core.types.RecoveryPoint` in the history).
    time:
        Simulation time of the save.
    kind:
        Regular RP, pseudo RP or initial state.
    work_done:
        Useful work the process had completed when the state was saved (restoring
        the state resets the work counter to this value).
    contaminated:
        Whether an undetected error was present in the process state when it was
        saved.  Regular RPs are clean with a perfect acceptance test; PRPs can be
        contaminated, which is exactly why a pseudo recovery line may need to be
        abandoned (Section 4).
    error_origin:
        Originating process of the contamination (meaningful when contaminated).
    size:
        Abstract size of the saved state (bytes or words); used only for storage
        accounting.
    origin:
        For PRPs, the ``(process, index)`` of the triggering RP.
    """

    __slots__ = ("process", "index", "time", "kind", "work_done", "contaminated",
                 "error_origin", "size", "origin")

    def __init__(self, process: ProcessId, index: int, time: float,
                 kind: CheckpointKind, work_done: float,
                 contaminated: bool = False,
                 error_origin: Optional[ProcessId] = None,
                 size: float = 1.0,
                 origin: Optional[Tuple[ProcessId, int]] = None) -> None:
        self.process = process
        self.index = index
        self.time = time
        self.kind = kind
        self.work_done = work_done
        self.contaminated = contaminated
        self.error_origin = error_origin
        self.size = size
        self.origin = origin

    def __eq__(self, other: object) -> bool:
        if other.__class__ is SavedState:
            return (self.process == other.process and self.index == other.index
                    and self.time == other.time and self.kind == other.kind
                    and self.work_done == other.work_done
                    and self.contaminated == other.contaminated
                    and self.error_origin == other.error_origin
                    and self.size == other.size and self.origin == other.origin)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.process, self.index, self.time, self.kind,
                     self.work_done, self.contaminated, self.error_origin,
                     self.size, self.origin))

    def __repr__(self) -> str:
        return (f"SavedState(process={self.process!r}, index={self.index!r}, "
                f"time={self.time!r}, kind={self.kind!r}, "
                f"work_done={self.work_done!r}, "
                f"contaminated={self.contaminated!r}, "
                f"error_origin={self.error_origin!r}, size={self.size!r}, "
                f"origin={self.origin!r})")

    def matches(self, rp: RecoveryPoint) -> bool:
        """Whether this saved state corresponds to history checkpoint *rp*."""
        return (self.process == rp.process and self.index == rp.index
                and self.kind is rp.kind)


class CheckpointStore:
    """Per-process collections of saved states with purge rules and accounting."""

    def __init__(self, n_processes: int, *, state_size: float = 1.0) -> None:
        if n_processes < 1:
            raise ValueError("need at least one process")
        if state_size <= 0.0:
            raise ValueError("state_size must be positive")
        self.n = int(n_processes)
        self.state_size = float(state_size)
        self._states: List[Dict[int, SavedState]] = [dict() for _ in range(self.n)]
        self._count = 0          # running total across processes, O(1) to read
        # Most recent non-pseudo state per process (first-inserted among equal
        # times, matching the scan it replaces); maintained by _insert/_purge_if.
        self._latest_regular: List[Optional[SavedState]] = [None] * self.n
        self._peak_count = 0
        self._total_saves = 0
        self._purged = 0
        # Every process starts with a clean initial state (work 0, index 0).
        for pid in range(self.n):
            self._insert(SavedState(process=pid, index=0, time=0.0,
                                    kind=CheckpointKind.INITIAL, work_done=0.0,
                                    size=self.state_size))

    # ------------------------------------------------------------------ recording
    def _insert(self, state: SavedState) -> SavedState:
        slot = self._states[state.process]
        if state.index not in slot:
            self._count += 1
        slot[state.index] = state
        if state.kind is not CheckpointKind.PSEUDO:
            cur = self._latest_regular[state.process]
            if cur is None or state.time > cur.time:
                self._latest_regular[state.process] = state
            elif state.index == cur.index:
                # The tracked state was overwritten in place; recompute.
                self._rescan_latest(state.process)
        self._total_saves += 1
        if self._count > self._peak_count:
            self._peak_count = self._count
        return state

    def _rescan_latest(self, process: ProcessId) -> None:
        best: Optional[SavedState] = None
        for state in self._states[process].values():
            if state.kind is CheckpointKind.PSEUDO:
                continue
            if best is None or state.time > best.time:
                best = state
        self._latest_regular[process] = best

    def save(self, rp: RecoveryPoint, *, work_done: float,
             contaminated: bool = False, error_origin: Optional[ProcessId] = None
             ) -> SavedState:
        """Record the saved state for history checkpoint *rp*."""
        state = SavedState(process=rp.process, index=rp.index, time=rp.time,
                           kind=rp.kind, work_done=float(work_done),
                           contaminated=bool(contaminated),
                           error_origin=error_origin, size=self.state_size,
                           origin=rp.origin)
        return self._insert(state)

    # ------------------------------------------------------------------ lookup
    def lookup(self, rp: RecoveryPoint) -> SavedState:
        """Saved state for history checkpoint *rp* (raises KeyError if purged)."""
        try:
            state = self._states[rp.process][rp.index]
        except KeyError as exc:
            raise KeyError(f"no saved state for {rp.label} "
                           f"(purged or never recorded)") from exc
        if not state.matches(rp):
            raise KeyError(f"stored state for index {rp.index} of P{rp.process + 1} "
                           f"does not match {rp.label}")
        return state

    def get(self, process: ProcessId, index: int) -> Optional[SavedState]:
        return self._states[process].get(index)

    def states_of(self, process: ProcessId) -> List[SavedState]:
        """All retained states of *process*, oldest first."""
        return [self._states[process][i] for i in sorted(self._states[process])]

    def latest_regular(self, process: ProcessId,
                       before: float = float("inf")) -> SavedState:
        """Most recent regular RP (or the initial state) of *process* before *before*."""
        cur = self._latest_regular[process]
        if cur is not None and cur.time <= before:
            # The overall latest also wins any window that contains it.
            return cur
        best: Optional[SavedState] = None
        for state in self._states[process].values():
            if state.kind is CheckpointKind.PSEUDO:
                continue
            if state.time <= before and (best is None or state.time > best.time):
                best = state
        assert best is not None, "initial state can never be purged"
        return best

    def pseudo_for_origin(self, process: ProcessId,
                          origin: Tuple[ProcessId, int]) -> Optional[SavedState]:
        """The PRP implanted in *process* for the given triggering RP, if retained."""
        for state in self._states[process].values():
            if state.kind is CheckpointKind.PSEUDO and state.origin == tuple(origin):
                return state
        return None

    # ------------------------------------------------------------------ accounting
    def count(self, process: Optional[ProcessId] = None) -> int:
        """Number of retained saved states (per process or total).

        The total is a maintained counter — every checkpoint updates the
        storage-level monitor, so this must not re-scan the per-process dicts.
        """
        if process is not None:
            return len(self._states[process])
        return self._count

    def total_size(self) -> float:
        """Total retained storage (sum of state sizes)."""
        return sum(state.size for d in self._states for state in d.values())

    @property
    def peak_count(self) -> int:
        """Largest number of simultaneously retained states observed."""
        return self._peak_count

    @property
    def total_saves(self) -> int:
        return self._total_saves

    @property
    def purged_count(self) -> int:
        return self._purged

    # ------------------------------------------------------------------ purging
    def _purge_if(self, process: ProcessId, predicate) -> int:
        doomed = [idx for idx, state in self._states[process].items()
                  if state.kind is not CheckpointKind.INITIAL and predicate(state)]
        for idx in doomed:
            del self._states[process][idx]
        self._purged += len(doomed)
        self._count -= len(doomed)
        cur = self._latest_regular[process]
        if doomed and (cur is None or self._states[process].get(cur.index) is not cur):
            self._rescan_latest(process)
        return len(doomed)

    def purge_before(self, process: ProcessId, time: float,
                     *, keep_latest_regular: bool = True) -> int:
        """Discard states of *process* saved strictly before *time*.

        With ``keep_latest_regular`` the most recent regular RP is always retained
        (a process must never lose its restart capability).
        """
        keeper = self.latest_regular(process) if keep_latest_regular else None
        return self._purge_if(process,
                              lambda s: s.time < time and s is not keeper)

    def purge_obsolete_pseudo_lines(self) -> int:
        """Section 4 space reclamation.

        Keep, for every process ``i``: its most recent regular RP, and every PRP
        whose triggering RP is currently the most recent RP of its owner.  All
        other RPs and PRPs are purged.  Returns the number of states discarded.
        """
        latest_rp: Dict[ProcessId, SavedState] = {
            pid: self.latest_regular(pid) for pid in range(self.n)}
        live_origins = {(pid, state.index) for pid, state in latest_rp.items()
                        if state.kind is CheckpointKind.REGULAR}
        purged = 0
        for pid in range(self.n):
            keeper = latest_rp[pid]
            slot = self._states[pid]
            # Inlined _purge_if: this runs after every implantation commit, so
            # the predicate is spelled out instead of paying a call per state.
            # Keep the keeper; pseudo states survive while their triggering RP
            # is still the owner's latest; older regular RPs are superseded.
            doomed = [idx for idx, state in slot.items()
                      if state is not keeper
                      and state.kind is not CheckpointKind.INITIAL
                      and (state.origin not in live_origins
                           if state.kind is CheckpointKind.PSEUDO else True)]
            for idx in doomed:
                del slot[idx]
            self._purged += len(doomed)
            self._count -= len(doomed)
            cur = self._latest_regular[pid]
            if doomed and (cur is None or slot.get(cur.index) is not cur):
                self._rescan_latest(pid)
            purged += len(doomed)
        return purged
