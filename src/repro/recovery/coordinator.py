"""Rollback coordination shared by the asynchronous and PRP runtimes.

The coordinator turns a *restart assignment* (which checkpoint each affected
process restarts from) into runtime state changes: useful work is rolled back,
contamination is reset to whatever the restored state carried, restart costs are
charged, fresh restart checkpoints are recorded (truncating the propagation
horizon of future failures), and the invalidated interactions are remembered so
they can never orphan anybody again.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.core.rollback import RollbackResult, propagate_rollback
from repro.core.types import CheckpointKind, Interaction, ProcessId, RecoveryPoint
from repro.recovery.checkpoint import SavedState

__all__ = ["RollbackCoordinator"]


class RollbackCoordinator:
    """Applies rollback decisions to a :class:`RecoverySchemeRuntime`."""

    def __init__(self, runtime) -> None:
        # A forward reference on purpose: the coordinator is a collaborator of the
        # runtime, not an owner; tests construct it with a real runtime instance.
        self.runtime = runtime

    # ------------------------------------------------------------------ planning
    def plan_asynchronous(self, failed_pid: int,
                          failure_time: float) -> RollbackResult:
        """Plan a rollback using only regular recovery points (Section 2 semantics)."""
        return propagate_rollback(
            self.runtime.tracer.history, failed_pid, failure_time,
            checkpoint_filter=lambda rp: rp.kind is CheckpointKind.REGULAR,
            excluded_interactions=self.runtime.excluded_interactions)

    def plan_with_pseudo(self, failed_pid: int, failure_time: float,
                         usable_pseudo: Callable[[RecoveryPoint], bool]
                         ) -> RollbackResult:
        """Plan a rollback in which selected pseudo recovery points are usable."""
        def usable(rp: RecoveryPoint) -> bool:
            if rp.kind is CheckpointKind.REGULAR:
                return True
            if rp.kind is CheckpointKind.PSEUDO:
                return usable_pseudo(rp)
            return True

        return propagate_rollback(
            self.runtime.tracer.history, failed_pid, failure_time,
            checkpoint_filter=usable,
            excluded_interactions=self.runtime.excluded_interactions)

    # ------------------------------------------------------------------ applying
    def apply(self, failed_pid: int,
              restart_points: Dict[ProcessId, RecoveryPoint],
              invalidated: Iterable[Interaction] = (),
              *, record_restart_checkpoints: bool = True) -> Dict[str, float]:
        """Apply a restart assignment and return rollback metrics.

        Parameters
        ----------
        failed_pid:
            The process whose acceptance test failed (for attribution in traces).
        restart_points:
            Checkpoint (from the history) each affected process restarts from.
        invalidated:
            Interactions discarded by this rollback; excluded from future
            propagation.
        record_restart_checkpoints:
            Re-save the restored state as a fresh regular checkpoint so later
            failures never propagate past this restart (log truncation).  The extra
            saves are charged like ordinary checkpoints.
        """
        runtime = self.runtime
        now = runtime.now
        max_distance = 0.0
        lost_total = 0.0
        domino = False

        for pid, rp in sorted(restart_points.items()):
            proc = runtime.proc(pid)
            proc.advance(now)
            try:
                saved: Optional[SavedState] = runtime.store.lookup(rp)
            except KeyError:
                # The state was purged (can only happen to superseded pseudo
                # recovery points); fall back to the latest retained regular state
                # not newer than the requested one.
                saved = runtime.store.latest_regular(pid, before=rp.time)
            lost = max(0.0, proc.work_done - saved.work_done)
            proc.work_done = saved.work_done
            proc.lost_work += lost
            lost_total += lost
            proc.rollbacks += 1
            # The restored state dictates the contamination status.
            if saved.contaminated:
                proc.contaminate(now, saved.error_origin
                                 if saved.error_origin is not None else pid)
            else:
                proc.clear_error()
            if proc.done:
                # A finished process dragged back into the computation.
                proc.done = False
                proc.finish_time = None
                runtime._n_done -= 1
            distance = now - rp.time
            max_distance = max(max_distance, distance)
            domino = domino or rp.kind is CheckpointKind.INITIAL
            runtime.tracer.record_rollback(pid, now, rp.time, cause=failed_pid)
            runtime.monitor.tally("rollback_distance_per_process").observe(distance)
            # Charge the restart and resume.
            runtime.pause_for(pid, runtime.workload.restart_cost, reason="restart")

        runtime.excluded_interactions.update(invalidated)
        runtime.rollback_distances.append(max_distance)
        if domino:
            runtime.domino_count += 1
        runtime.monitor.counter("rollback_events").increment()
        runtime.monitor.tally("rollback_distance").observe(max_distance)
        runtime.monitor.tally("rollback_lost_work").observe(lost_total)
        runtime.monitor.tally("rollback_span").observe(float(len(restart_points)))

        if record_restart_checkpoints:
            delay = runtime.workload.restart_cost
            for pid in restart_points:
                runtime.engine.schedule(delay, self._record_restart_checkpoint, pid)

        return {
            "max_distance": max_distance,
            "lost_work": lost_total,
            "affected": float(len(restart_points)),
            "domino": 1.0 if domino else 0.0,
        }

    def _record_restart_checkpoint(self, pid: int) -> None:
        runtime = self.runtime
        proc = runtime.proc(pid)
        if proc.done:
            return
        runtime.take_checkpoint(pid, kind=CheckpointKind.REGULAR, charge_time=True)
