"""Run reports: the metrics a recovery-scheme run produces.

Every runtime returns a :class:`RunReport`; the strategy-comparison experiment and
several integration tests consume these.  The fields mirror the quantities the
paper argues about: completion delay, computation lost to rollbacks, rollback
distance, state-saving overhead, waiting (synchronisation) loss, and storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ProcessReport", "RunReport"]


@dataclass(frozen=True)
class ProcessReport:
    """Per-process outcome of a run."""

    process: int
    finish_time: Optional[float]
    useful_work: float
    lost_work: float
    checkpoint_overhead: float
    restart_overhead: float
    waiting_time: float
    checkpoints_taken: int
    pseudo_checkpoints_taken: int
    rollbacks: int

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    @property
    def total_overhead(self) -> float:
        return self.checkpoint_overhead + self.restart_overhead + self.waiting_time


@dataclass(frozen=True)
class RunReport:
    """Aggregate outcome of one recovery-scheme run."""

    scheme: str
    seed: Optional[int]
    n_processes: int
    completed: bool
    makespan: float
    ideal_makespan: float
    processes: Tuple[ProcessReport, ...]
    rollback_count: int
    rollback_distances: Tuple[float, ...]
    lost_work_total: float
    checkpoint_overhead_total: float
    restart_overhead_total: float
    waiting_time_total: float
    recovery_lines_committed: int
    domino_count: int
    peak_saved_states: int
    total_saves: int
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ derived
    @property
    def mean_rollback_distance(self) -> float:
        if not self.rollback_distances:
            return 0.0
        return sum(self.rollback_distances) / len(self.rollback_distances)

    @property
    def max_rollback_distance(self) -> float:
        return max(self.rollback_distances, default=0.0)

    @property
    def overhead_ratio(self) -> float:
        """Total non-useful time relative to the ideal (zero-overhead) makespan."""
        if self.ideal_makespan <= 0.0:
            return 0.0
        total = (self.lost_work_total + self.checkpoint_overhead_total
                 + self.restart_overhead_total + self.waiting_time_total)
        return total / (self.n_processes * self.ideal_makespan)

    @property
    def slowdown(self) -> float:
        """Makespan relative to the ideal makespan."""
        if self.ideal_makespan <= 0.0:
            return 1.0
        return self.makespan / self.ideal_makespan

    def per_process(self, process: int) -> ProcessReport:
        for report in self.processes:
            if report.process == process:
                return report
        raise KeyError(f"no report for process {process}")

    def summary(self) -> Dict[str, float]:
        """Flat summary used by experiment tables.

        The keys follow the ``repro.api`` strategy-metric vocabulary
        (``STRATEGY_METRICS``), so a single run's summary lines up with the
        strategy engine's replication averages column for column.
        ``sync_loss`` is the mean waiting loss per committed recovery line —
        non-zero only for the synchronized scheme, which reports it via
        :attr:`extra`.
        """
        return {
            "makespan": self.makespan,
            "slowdown": self.slowdown,
            "rollbacks": float(self.rollback_count),
            "mean_rollback_distance": self.mean_rollback_distance,
            "max_rollback_distance": self.max_rollback_distance,
            "lost_work": self.lost_work_total,
            "checkpoint_overhead": self.checkpoint_overhead_total,
            "restart_overhead": self.restart_overhead_total,
            "waiting_time": self.waiting_time_total,
            "recovery_lines": float(self.recovery_lines_committed),
            "dominoes": float(self.domino_count),
            "peak_saved_states": float(self.peak_saved_states),
            "total_saves": float(self.total_saves),
            "sync_loss": float(self.extra.get("mean_sync_loss", 0.0)),
        }
