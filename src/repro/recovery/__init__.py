"""Executable recovery-block runtimes.

This package turns the three implementation alternatives the paper analyses into
running systems on top of the discrete-event substrate:

* :class:`~repro.recovery.asynchronous.AsynchronousRuntime` — every process
  checkpoints on its own; failures trigger rollback propagation over the recorded
  history (domino effect possible).
* :class:`~repro.recovery.synchronized.SynchronizedRuntime` — a coordinator issues
  synchronization requests (constant-interval, elapsed-time or saved-state-count
  strategies, Section 3); all processes run their acceptance tests together and a
  recovery line is committed; failures roll back to the last committed line.
* :class:`~repro.recovery.pseudo.PseudoRecoveryPointRuntime` — the paper's
  proposal (Section 4): every recovery point broadcasts an implantation request and
  all other processes record pseudo recovery points, bounding rollback without
  synchronisation.

All three consume the same :class:`~repro.workloads.spec.WorkloadSpec` and produce
the same :class:`~repro.recovery.report.RunReport`, so experiments can compare them
like for like.

Execution model
---------------
Processes perform useful work at rate 1 while running.  Recovery-block boundaries
arrive after exponentially distributed amounts of work (rate ``μ_i``); pairwise
interactions arrive at rate ``λ_ij`` and are delivered as messages; transient
errors arrive at the workload's fault rate and contaminate the process state until
a rollback restores a clean checkpoint.  Saving a state costs ``t_r``
(``checkpoint_cost``); restoring one costs ``restart_cost``.  A run ends when every
process has completed its ``work_per_process`` budget (or the safety horizon is
hit).
"""

from typing import Optional

from repro.recovery.checkpoint import SavedState, CheckpointStore
from repro.recovery.report import RunReport, ProcessReport
from repro.recovery.base import RecoverySchemeRuntime, ProcessRuntime
from repro.recovery.coordinator import RollbackCoordinator
from repro.recovery.asynchronous import AsynchronousRuntime
from repro.recovery.synchronized import SynchronizedRuntime, SyncStrategy
from repro.recovery.pseudo import PseudoRecoveryPointRuntime

__all__ = [
    "SavedState",
    "CheckpointStore",
    "RunReport",
    "ProcessReport",
    "RecoverySchemeRuntime",
    "ProcessRuntime",
    "RollbackCoordinator",
    "AsynchronousRuntime",
    "SynchronizedRuntime",
    "SyncStrategy",
    "PseudoRecoveryPointRuntime",
    "make_runtime",
]


def make_runtime(scheme: str, workload, seed: Optional[int] = None, *,
                 sync_interval: float = 2.0) -> RecoverySchemeRuntime:
    """Build the runtime for a named scheme — the one dispatch point.

    Both the strategy evaluation engine (:mod:`repro.api.strategy`) and the
    direct experiment path
    (:func:`repro.experiments.strategy_comparison.run_strategy_comparison`)
    construct runtimes through here, so a new scheme or changed runtime
    wiring can never diverge the two.  The synchronized scheme uses the
    elapsed-time request strategy with the given *sync_interval*.
    """
    if scheme == "asynchronous":
        return AsynchronousRuntime(workload, seed=seed)
    if scheme == "pseudo":
        return PseudoRecoveryPointRuntime(workload, seed=seed)
    if scheme == "synchronized":
        return SynchronizedRuntime(workload, seed=seed,
                                   strategy=SyncStrategy.ELAPSED_TIME,
                                   sync_interval=sync_interval)
    raise ValueError(f"unknown scheme {scheme!r}")
