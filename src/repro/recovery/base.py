"""Common machinery of the recovery-scheme runtimes.

:class:`ProcessRuntime` tracks one simulated process: how much useful work it has
completed, whether it is currently running or paused (checkpointing, restarting,
waiting for a synchronisation commit), and whether its state is contaminated by an
undetected error.  :class:`RecoverySchemeRuntime` owns the simulation engine, the
random streams, the tracer/history, the checkpoint store, and the three recurring
event families every scheme needs — recovery-block boundaries, pairwise
interactions and fault arrivals — and leaves the scheme-specific reactions to
subclasses via three hooks:

* :meth:`RecoverySchemeRuntime.on_block_boundary`
* :meth:`RecoverySchemeRuntime.on_interaction`
* :meth:`RecoverySchemeRuntime.on_error_detected`
"""

from __future__ import annotations

import abc
from heapq import heappush as _heappush
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.types import CheckpointKind, Interaction, ProcessId, RecoveryPoint
from repro.faults.propagation import expand_cascade
from repro.recovery.checkpoint import CheckpointStore, SavedState
from repro.recovery.report import ProcessReport, RunReport
from repro.sim.engine import SimulationEngine
from repro.sim.monitor import Monitor
from repro.sim.random_streams import RandomStreams
from repro.sim.tracer import Tracer
from repro.workloads.spec import WorkloadSpec

__all__ = ["ProcessRuntime", "RecoverySchemeRuntime"]


class ProcessRuntime:
    """Mutable state of one simulated process."""

    __slots__ = ("pid", "work_goal", "work_done", "running", "run_start", "done",
                 "finish_time", "contaminated", "error_origin", "error_since",
                 "checkpoint_overhead", "restart_overhead", "waiting_time",
                 "lost_work", "rollbacks", "checkpoints", "pseudo_checkpoints",
                 "ready_flag")

    def __init__(self, pid: int, work_goal: float) -> None:
        self.pid = pid
        self.work_goal = float(work_goal)
        self.work_done = 0.0
        self.running = False
        self.run_start = 0.0
        self.done = False
        self.finish_time: Optional[float] = None
        self.contaminated = False
        self.error_origin: Optional[int] = None
        self.error_since: Optional[float] = None
        self.checkpoint_overhead = 0.0
        self.restart_overhead = 0.0
        self.waiting_time = 0.0
        self.lost_work = 0.0
        self.rollbacks = 0
        self.checkpoints = 0
        self.pseudo_checkpoints = 0
        self.ready_flag = False  # used by the synchronized scheme

    # ------------------------------------------------------------------ work
    def advance(self, now: float) -> None:
        """Accrue useful work up to *now* (no-op unless running)."""
        if self.running and not self.done:
            delta = now - self.run_start
            if delta > 0.0:
                self.work_done += delta
            self.run_start = now

    def start_running(self, now: float) -> None:
        if not self.done:
            self.running = True
            self.run_start = now

    def stop_running(self, now: float) -> None:
        # advance() inlined: one call per pause adds up across a sweep.
        if self.running and not self.done:
            delta = now - self.run_start
            if delta > 0.0:
                self.work_done += delta
            self.run_start = now
        self.running = False

    def check_completion(self, now: float) -> bool:
        """Clamp work at the goal; mark the process done when it is reached."""
        if self.running and not self.done:  # inlined advance()
            delta = now - self.run_start
            if delta > 0.0:
                self.work_done += delta
            self.run_start = now
        if not self.done and self.work_done >= self.work_goal - 1e-12:
            excess = self.work_done - self.work_goal
            self.work_done = self.work_goal
            self.done = True
            self.running = False
            self.finish_time = now - excess
            return True
        return False

    # ------------------------------------------------------------------ errors
    def contaminate(self, now: float, origin: int) -> None:
        if not self.contaminated:
            self.contaminated = True
            self.error_origin = origin
            self.error_since = now

    def clear_error(self) -> None:
        self.contaminated = False
        self.error_origin = None
        self.error_since = None

    @property
    def has_local_error(self) -> bool:
        return self.contaminated and self.error_origin == self.pid

    @property
    def has_external_error(self) -> bool:
        return self.contaminated and self.error_origin != self.pid

    def report(self) -> ProcessReport:
        return ProcessReport(process=self.pid, finish_time=self.finish_time,
                             useful_work=self.work_done, lost_work=self.lost_work,
                             checkpoint_overhead=self.checkpoint_overhead,
                             restart_overhead=self.restart_overhead,
                             waiting_time=self.waiting_time,
                             checkpoints_taken=self.checkpoints,
                             pseudo_checkpoints_taken=self.pseudo_checkpoints,
                             rollbacks=self.rollbacks)


class RecoverySchemeRuntime(abc.ABC):
    """Base class of the asynchronous, synchronized and PRP runtimes."""

    #: Name reported in :class:`RunReport.scheme`; subclasses override.
    scheme_name = "abstract"

    def __init__(self, workload: WorkloadSpec, seed: Optional[int] = None) -> None:
        self.workload = workload
        self.seed = seed
        self.params = workload.params
        self.n = workload.params.n
        self.engine = SimulationEngine()
        self.streams = RandomStreams(seed)
        self.tracer = Tracer(self.n)
        self.monitor = Monitor()
        self.store = CheckpointStore(self.n)
        self.procs: List[ProcessRuntime] = [
            ProcessRuntime(pid, workload.work_per_process) for pid in range(self.n)]
        self.excluded_interactions: Set[Interaction] = set()
        self.rollback_distances: List[float] = []
        self.domino_count = 0
        self.recovery_lines_committed = 0
        self._started = False
        # Number of processes currently marked done.  Maintained at the three
        # places the flag flips (check_completion via its callers, rollback
        # revival in the coordinator) so the per-event completion checks are
        # O(1) instead of a scan over the processes.
        self._n_done = 0
        self._storage_level = self.monitor.level("saved_states", initial=self.n)
        # Hot-path hoists: run invariants resolved once here instead of through
        # two attribute hops (plus an f-string build) per simulation event.
        self._max_sim_time = workload.max_sim_time
        self._message_latency = workload.message_latency
        self._checkpoint_cost = workload.checkpoint_cost
        self._propagate_taint = workload.faults.propagate_via_messages
        self._fault_rate = float(workload.faults.error_rate)
        self._interaction_counter = self.monitor.counter("interactions")
        self._acceptance_counter = self.monitor.counter("acceptance_tests")
        self._acceptance_failures = self.monitor.counter("acceptance_failures")
        self._mu = [float(self.params.mu[pid]) for pid in range(self.n)]
        self._block_names = [f"block.{pid}" for pid in range(self.n)]
        self._fault_names = [f"fault.{pid}" for pid in range(self.n)]
        self._acceptance_names = [f"acceptance.{pid}" for pid in range(self.n)]
        # Streams are derived from their name alone (never from creation
        # order), so materialising the acceptance generators up front is
        # bit-identical to lazy lookup — and saves a dict probe per test.
        self._acceptance_rngs = [self.streams.stream(name)
                                 for name in self._acceptance_names]
        self._acceptance = workload.acceptance
        self._pair_specs = {
            (i, j): (f"interaction.{i}.{j}", f"direction.{i}.{j}",
                     self.params.pair_rate(i, j))
            for i in range(self.n) for j in range(i + 1, self.n)}
        # Fault interarrival law.  ``None`` keeps the exponential hot path
        # below untouched (bit-identical to what the runtimes always did);
        # otherwise the closure draws a renewal interarrival with mean
        # ``1/error_rate`` from the same per-process ``fault.<pid>`` streams.
        faults = workload.faults
        self._draw_fault_delay = None
        if faults.interarrival_law != "exponential" and self._fault_rate > 0.0:
            fault_shape = float(faults.interarrival_shape)
            fault_mean = 1.0 / self._fault_rate
            if faults.interarrival_law == "weibull":
                from scipy.special import gamma as _gamma_fn
                fault_scale = fault_mean / float(_gamma_fn(1.0 + 1.0
                                                           / fault_shape))
                self._draw_fault_delay = lambda pid: self.streams.weibull(
                    self._fault_names[pid], fault_shape, fault_scale)
            else:
                fault_log_mean = float(np.log(fault_mean)
                                       - 0.5 * fault_shape * fault_shape)
                self._draw_fault_delay = lambda pid: self.streams.lognormal(
                    self._fault_names[pid], fault_log_mean, fault_shape)
        # Correlated fault model (common-mode groups + cascades).  When the
        # workload has no common-mode block nothing is scheduled at all, so
        # plain runs draw exactly the same stream sequence as before.
        self._common_mode_groups = faults.common_mode_groups
        self._common_mode_rate = float(faults.common_mode_rate)
        self._cascade_probability = float(faults.propagation_probability)
        self._cascade_depth = int(faults.cascade_depth)
        self._common_mode_names = [f"common_mode.{g}"
                                   for g in range(len(self._common_mode_groups))]
        self._cascade_names = [f"cascade.{g}"
                               for g in range(len(self._common_mode_groups))]
        # Cascades travel along interaction edges: neighbours of ``i`` are the
        # processes it has a positive pairwise rate with, in process order.
        self._neighbor_lists = [
            [j for j in range(self.n)
             if j != i and self.params.pair_rate(i, j) > 0.0]
            for i in range(self.n)]
        # Direct handles on the engine's queue and sequence counter (both are
        # created once and never reassigned): the recurring timer chains below
        # push entries in SimulationEngine.schedule_fire's exact format without
        # paying its call frame on every one of the ~10^5 events per run.
        self._equeue = self.engine._queue
        self._eseq = self.engine._seq

    # ------------------------------------------------------------------ helpers
    @property
    def now(self) -> float:
        # Reads the engine's clock attribute directly: this property is hit
        # several times per simulation event, and the extra property frame of
        # engine.now is measurable across a replication sweep.
        return self.engine._now

    def proc(self, pid: int) -> ProcessRuntime:
        return self.procs[pid]

    def all_done(self) -> bool:
        # Hot path: called once per simulation event; the maintained counter
        # replaces a scan over the processes.
        return self._n_done >= self.n

    def _rng(self, name: str) -> np.random.Generator:
        return self.streams.stream(name)

    # ------------------------------------------------------------------ schedulers
    def _schedule_block_boundary(self, pid: int) -> None:
        delay = self.streams.exponential(self._block_names[pid], self._mu[pid])
        self.engine.schedule_fire(delay, self._fire_block_boundary, pid)

    def _fire_block_boundary(self, pid: int) -> None:
        engine = self.engine
        now = engine._now
        if now >= self._max_sim_time or self._n_done >= self.n:
            return
        proc = self.procs[pid]
        if not proc.done and proc.running:
            if proc.check_completion(now):
                self._n_done += 1
                self.on_process_completed(pid)
            else:
                self.on_block_boundary(pid)
        # Whether or not the boundary was actionable, keep the timer chain
        # alive (exponential inter-boundary times are memoryless): a finished
        # process can be dragged back into the computation by a later rollback
        # and must then resume reaching recovery-block boundaries.  The
        # scheduler helper is inlined — this is the hottest event family.
        # (Handlers never advance the clock, so ``now`` is still engine time.)
        _heappush(self._equeue,
                  (now + self.streams.exponential(self._block_names[pid],
                                                  self._mu[pid]),
                   next(self._eseq), None, self._fire_block_boundary, (pid,)))

    def _schedule_interaction(self, i: int, j: int) -> None:
        name, _direction, rate = self._pair_specs[i, j]
        if rate <= 0.0:
            return
        delay = self.streams.exponential(name, rate)
        self.engine.schedule_fire(delay, self._fire_interaction, i, j)

    def _fire_interaction(self, i: int, j: int) -> None:
        engine = self.engine
        now = engine._now
        if now >= self._max_sim_time or self._n_done >= self.n:
            return
        spec = self._pair_specs[i, j]  # (stream name, direction name, rate)
        procs = self.procs
        pi, pj = procs[i], procs[j]
        if not (pi.done or pj.done) and pi.running and pj.running:
            # Pick the message direction at random; the analytic model treats the
            # interaction symmetrically, the taint model cares about direction.
            if self.streams.bernoulli(spec[1], 0.5):
                source, target, psrc, pdst = i, j, pi, pj
            else:
                source, target, psrc, pdst = j, i, pj, pi
            self.tracer.record_interaction(source, target, now,
                                           receive_time=now
                                           + self._message_latency,
                                           tainted=psrc.contaminated)
            self._interaction_counter._count += 1  # inlined Counter.increment()
            if self._propagate_taint and psrc.contaminated:
                origin = psrc.error_origin
                pdst.contaminate(now, origin if origin is not None else source)
            self.on_interaction(source, target)
        # Inlined _schedule_interaction (a fired pair always has rate > 0).
        _heappush(self._equeue,
                  (now + self.streams.exponential(spec[0], spec[2]),
                   next(self._eseq), None, self._fire_interaction, (i, j)))

    def _schedule_fault(self, pid: int) -> None:
        rate = self._fault_rate
        if rate <= 0.0:
            return
        if self._draw_fault_delay is None:
            delay = self.streams.exponential(self._fault_names[pid], rate)
        else:
            delay = self._draw_fault_delay(pid)
        self.engine.schedule_fire(delay, self._fire_fault, pid)

    def _fire_fault(self, pid: int) -> None:
        engine = self.engine
        now = engine._now
        if now >= self._max_sim_time or self._n_done >= self.n:
            return
        proc = self.procs[pid]
        if not proc.done and proc.running:
            proc.contaminate(now, pid)
            self.tracer.record_error(pid, now, local=True, origin=pid)
            self.monitor.counter("errors_injected").increment()
        # Always reschedule (even for finished processes) so a process revived by
        # a rollback keeps experiencing faults (a fired stream has rate > 0).
        if self._draw_fault_delay is None:
            delay = self.streams.exponential(self._fault_names[pid],
                                             self._fault_rate)
        else:
            delay = self._draw_fault_delay(pid)
        _heappush(self._equeue,
                  (now + delay, next(self._eseq), None, self._fire_fault,
                   (pid,)))

    def _schedule_common_mode(self, g: int) -> None:
        delay = self.streams.exponential(self._common_mode_names[g],
                                         self._common_mode_rate)
        self.engine.schedule_fire(delay, self._fire_common_mode, g)

    def _fire_common_mode(self, g: int) -> None:
        """A common-mode event strikes group *g*, then may cascade outward.

        Every running, unfinished member of the group is contaminated at once
        (that is what makes the faults *correlated*); the combined seed set is
        then expanded along interaction edges with
        :func:`~repro.faults.propagation.expand_cascade`, each edge crossed
        with ``propagation_probability`` drawn from the group's dedicated
        ``cascade.<g>`` stream, up to ``cascade_depth`` hops.
        """
        engine = self.engine
        now = engine._now
        if now >= self._max_sim_time or self._n_done >= self.n:
            return
        procs = self.procs
        seeds = [pid for pid in self._common_mode_groups[g]
                 if not procs[pid].done and procs[pid].running]
        if seeds:
            if self._cascade_probability > 0.0 and self._cascade_depth > 0:
                name = self._cascade_names[g]
                struck = expand_cascade(
                    seeds, self._neighbor_lists.__getitem__,
                    self._cascade_probability, self._cascade_depth,
                    lambda p: self.streams.bernoulli(name, p))
            else:
                struck = seeds
            errors = self.monitor.counter("errors_injected")
            for pid in struck:
                proc = procs[pid]
                # Cascaded victims may be paused or already done; like the
                # independent fault path, only a running process's state can
                # actually absorb the error.
                if not proc.done and proc.running:
                    proc.contaminate(now, pid)
                    self.tracer.record_error(pid, now, local=True, origin=pid)
                    errors._count += 1  # inlined Counter.increment()
        _heappush(self._equeue,
                  (now + self.streams.exponential(self._common_mode_names[g],
                                                  self._common_mode_rate),
                   next(self._eseq), None, self._fire_common_mode, (g,)))

    # ------------------------------------------------------------------ pauses
    def pause_for(self, pid: int, duration: float, *, reason: str) -> None:
        """Suspend *pid* for *duration*; work does not accrue meanwhile.

        ``reason`` is one of ``"checkpoint"``, ``"restart"`` or ``"waiting"`` and
        decides which overhead bucket the time lands in.
        """
        now = self.engine._now
        proc = self.procs[pid]
        # Inlined stop_running()/advance(): one pause per checkpoint adds up.
        if proc.running and not proc.done:
            delta = now - proc.run_start
            if delta > 0.0:
                proc.work_done += delta
            proc.run_start = now
        proc.running = False
        if reason == "checkpoint":
            proc.checkpoint_overhead += duration
        elif reason == "restart":
            proc.restart_overhead += duration
        elif reason == "waiting":
            proc.waiting_time += duration
        else:
            raise ValueError(f"unknown pause reason {reason!r}")
        if duration <= 0.0:
            proc.start_running(now)
            return
        _heappush(self._equeue, (now + duration, next(self._eseq), None,
                                 self._resume, (pid,)))

    def _resume(self, pid: int) -> None:
        proc = self.procs[pid]
        if not proc.done and not proc.running:  # inlined start_running()
            proc.running = True
            proc.run_start = self.engine._now

    # ------------------------------------------------------------------ checkpoints
    def take_checkpoint(self, pid: int, *, kind: CheckpointKind = CheckpointKind.REGULAR,
                        origin: Optional[Tuple[int, int]] = None,
                        charge_time: bool = True) -> Tuple[RecoveryPoint, SavedState]:
        """Record a checkpoint for *pid* at the current time.

        The process is paused for ``checkpoint_cost`` when *charge_time* is set;
        the saved state captures the current work level and contamination flag.
        """
        now = self.engine._now
        proc = self.procs[pid]
        if proc.running and not proc.done:  # inlined ProcessRuntime.advance()
            delta = now - proc.run_start
            if delta > 0.0:
                proc.work_done += delta
            proc.run_start = now
        if kind is CheckpointKind.REGULAR:
            rp = self.tracer.record_recovery_point(pid, now)
            proc.checkpoints += 1
        elif kind is CheckpointKind.PSEUDO:
            if origin is None:
                raise ValueError("pseudo checkpoints need an origin")
            rp = self.tracer.record_pseudo_recovery_point(pid, now, origin)
            proc.pseudo_checkpoints += 1
        else:  # pragma: no cover - defensive
            raise ValueError("cannot take an INITIAL checkpoint explicitly")
        state = self.store.save(rp, work_done=proc.work_done,
                                contaminated=proc.contaminated,
                                error_origin=proc.error_origin)
        if charge_time and self._checkpoint_cost > 0.0:
            self.pause_for(pid, self._checkpoint_cost, reason="checkpoint")
        # store._count is the maintained total behind CheckpointStore.count();
        # read directly to skip a method call per checkpoint.
        self._storage_level.update(now, self.store._count)
        return rp, state

    # ------------------------------------------------------------------ hooks
    @abc.abstractmethod
    def on_block_boundary(self, pid: int) -> None:
        """A recovery-block boundary was reached by a running process."""

    def on_interaction(self, source: int, target: int) -> None:
        """A message was exchanged (default: nothing extra)."""

    def on_process_completed(self, pid: int) -> None:
        """Process *pid* finished its work budget (default: nothing extra)."""

    @abc.abstractmethod
    def on_error_detected(self, pid: int) -> None:
        """An acceptance test flagged an error in *pid*; perform the rollback."""

    def on_run_start(self) -> None:
        """Scheme-specific setup before the event loop starts (optional)."""

    # ------------------------------------------------------------------ detection
    def run_acceptance_test(self, pid: int) -> bool:
        """Run the acceptance test of *pid*; returns True when an error is flagged."""
        proc = self.procs[pid]
        rng = self._acceptance_rngs[pid]
        acceptance = self._acceptance
        detected = acceptance.detects(
            has_local_error=proc.has_local_error,
            has_external_error=proc.has_external_error, rng=rng)
        if not detected and not proc.contaminated:
            detected = acceptance.false_alarm(rng)
        self.tracer.record_acceptance_test(pid, self.engine._now,
                                           passed=not detected)
        self._acceptance_counter._count += 1  # inlined Counter.increment()
        if detected:
            self._acceptance_failures._count += 1
        return detected

    # ------------------------------------------------------------------ run loop
    def run(self) -> RunReport:
        """Execute the workload under this scheme and return the report."""
        if self._started:
            raise RuntimeError("a runtime instance can only be run once")
        self._started = True
        for proc in self.procs:
            proc.start_running(0.0)
        self.on_run_start()
        for pid in range(self.n):
            self._schedule_block_boundary(pid)
            self._schedule_fault(pid)
        if self.workload.faults.has_common_mode:
            for g in range(len(self._common_mode_groups)):
                self._schedule_common_mode(g)
        for i in range(self.n):
            for j in range(i + 1, self.n):
                self._schedule_interaction(i, j)

        n = self.n

        def keep_going() -> bool:
            return self._n_done < n

        self.engine.run_while(keep_going, self._max_sim_time)
        # Final bookkeeping.
        for proc in self.procs:
            if proc.check_completion(self.now):
                self._n_done += 1
        return self._build_report()

    # ------------------------------------------------------------------ reporting
    def _build_report(self) -> RunReport:
        completed = self.all_done()
        makespan = max((p.finish_time for p in self.procs
                        if p.finish_time is not None), default=self.now)
        if not completed:
            makespan = self.now
        return RunReport(
            scheme=self.scheme_name,
            seed=self.seed,
            n_processes=self.n,
            completed=completed,
            makespan=makespan,
            ideal_makespan=self.workload.ideal_completion_time(),
            processes=tuple(p.report() for p in self.procs),
            rollback_count=len(self.rollback_distances),
            rollback_distances=tuple(self.rollback_distances),
            lost_work_total=sum(p.lost_work for p in self.procs),
            checkpoint_overhead_total=sum(p.checkpoint_overhead for p in self.procs),
            restart_overhead_total=sum(p.restart_overhead for p in self.procs),
            waiting_time_total=sum(p.waiting_time for p in self.procs),
            recovery_lines_committed=self.recovery_lines_committed,
            domino_count=self.domino_count,
            peak_saved_states=self.store.peak_count,
            total_saves=self.store.total_saves,
            extra=self.extra_metrics(),
        )

    def extra_metrics(self) -> Dict[str, float]:
        """Scheme-specific additions to the report (optional)."""
        return {}
