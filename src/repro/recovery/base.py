"""Common machinery of the recovery-scheme runtimes.

:class:`ProcessRuntime` tracks one simulated process: how much useful work it has
completed, whether it is currently running or paused (checkpointing, restarting,
waiting for a synchronisation commit), and whether its state is contaminated by an
undetected error.  :class:`RecoverySchemeRuntime` owns the simulation engine, the
random streams, the tracer/history, the checkpoint store, and the three recurring
event families every scheme needs — recovery-block boundaries, pairwise
interactions and fault arrivals — and leaves the scheme-specific reactions to
subclasses via three hooks:

* :meth:`RecoverySchemeRuntime.on_block_boundary`
* :meth:`RecoverySchemeRuntime.on_interaction`
* :meth:`RecoverySchemeRuntime.on_error_detected`
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.types import CheckpointKind, Interaction, ProcessId, RecoveryPoint
from repro.recovery.checkpoint import CheckpointStore, SavedState
from repro.recovery.report import ProcessReport, RunReport
from repro.sim.engine import SimulationEngine
from repro.sim.monitor import Monitor
from repro.sim.random_streams import RandomStreams
from repro.sim.tracer import Tracer
from repro.workloads.spec import WorkloadSpec

__all__ = ["ProcessRuntime", "RecoverySchemeRuntime"]


class ProcessRuntime:
    """Mutable state of one simulated process."""

    __slots__ = ("pid", "work_goal", "work_done", "running", "run_start", "done",
                 "finish_time", "contaminated", "error_origin", "error_since",
                 "checkpoint_overhead", "restart_overhead", "waiting_time",
                 "lost_work", "rollbacks", "checkpoints", "pseudo_checkpoints",
                 "ready_flag")

    def __init__(self, pid: int, work_goal: float) -> None:
        self.pid = pid
        self.work_goal = float(work_goal)
        self.work_done = 0.0
        self.running = False
        self.run_start = 0.0
        self.done = False
        self.finish_time: Optional[float] = None
        self.contaminated = False
        self.error_origin: Optional[int] = None
        self.error_since: Optional[float] = None
        self.checkpoint_overhead = 0.0
        self.restart_overhead = 0.0
        self.waiting_time = 0.0
        self.lost_work = 0.0
        self.rollbacks = 0
        self.checkpoints = 0
        self.pseudo_checkpoints = 0
        self.ready_flag = False  # used by the synchronized scheme

    # ------------------------------------------------------------------ work
    def advance(self, now: float) -> None:
        """Accrue useful work up to *now* (no-op unless running)."""
        if self.running and not self.done:
            self.work_done += max(0.0, now - self.run_start)
            self.run_start = now

    def start_running(self, now: float) -> None:
        if not self.done:
            self.running = True
            self.run_start = now

    def stop_running(self, now: float) -> None:
        self.advance(now)
        self.running = False

    def check_completion(self, now: float) -> bool:
        """Clamp work at the goal; mark the process done when it is reached."""
        self.advance(now)
        if not self.done and self.work_done >= self.work_goal - 1e-12:
            excess = self.work_done - self.work_goal
            self.work_done = self.work_goal
            self.done = True
            self.running = False
            self.finish_time = now - excess
            return True
        return False

    # ------------------------------------------------------------------ errors
    def contaminate(self, now: float, origin: int) -> None:
        if not self.contaminated:
            self.contaminated = True
            self.error_origin = origin
            self.error_since = now

    def clear_error(self) -> None:
        self.contaminated = False
        self.error_origin = None
        self.error_since = None

    @property
    def has_local_error(self) -> bool:
        return self.contaminated and self.error_origin == self.pid

    @property
    def has_external_error(self) -> bool:
        return self.contaminated and self.error_origin != self.pid

    def report(self) -> ProcessReport:
        return ProcessReport(process=self.pid, finish_time=self.finish_time,
                             useful_work=self.work_done, lost_work=self.lost_work,
                             checkpoint_overhead=self.checkpoint_overhead,
                             restart_overhead=self.restart_overhead,
                             waiting_time=self.waiting_time,
                             checkpoints_taken=self.checkpoints,
                             pseudo_checkpoints_taken=self.pseudo_checkpoints,
                             rollbacks=self.rollbacks)


class RecoverySchemeRuntime(abc.ABC):
    """Base class of the asynchronous, synchronized and PRP runtimes."""

    #: Name reported in :class:`RunReport.scheme`; subclasses override.
    scheme_name = "abstract"

    def __init__(self, workload: WorkloadSpec, seed: Optional[int] = None) -> None:
        self.workload = workload
        self.seed = seed
        self.params = workload.params
        self.n = workload.params.n
        self.engine = SimulationEngine()
        self.streams = RandomStreams(seed)
        self.tracer = Tracer(self.n)
        self.monitor = Monitor()
        self.store = CheckpointStore(self.n)
        self.procs: List[ProcessRuntime] = [
            ProcessRuntime(pid, workload.work_per_process) for pid in range(self.n)]
        self.excluded_interactions: Set[Interaction] = set()
        self.rollback_distances: List[float] = []
        self.domino_count = 0
        self.recovery_lines_committed = 0
        self._started = False
        self._storage_level = self.monitor.level("saved_states", initial=self.n)

    # ------------------------------------------------------------------ helpers
    @property
    def now(self) -> float:
        return self.engine.now

    def proc(self, pid: int) -> ProcessRuntime:
        return self.procs[pid]

    def all_done(self) -> bool:
        return all(p.done for p in self.procs)

    def _rng(self, name: str) -> np.random.Generator:
        return self.streams.stream(name)

    # ------------------------------------------------------------------ schedulers
    def _schedule_block_boundary(self, pid: int) -> None:
        rate = float(self.params.mu[pid])
        delay = self.streams.exponential(f"block.{pid}", rate)
        self.engine.schedule(delay, self._fire_block_boundary, pid)

    def _fire_block_boundary(self, pid: int) -> None:
        if self.all_done() or self.now >= self.workload.max_sim_time:
            return
        proc = self.proc(pid)
        if proc.done:
            # Keep the timer chain alive: a finished process can be dragged back
            # into the computation by a later rollback and must then resume
            # reaching recovery-block boundaries.
            self._schedule_block_boundary(pid)
            return
        if proc.running:
            proc.advance(self.now)
            if proc.check_completion(self.now):
                self.on_process_completed(pid)
                self._schedule_block_boundary(pid)
                return
            self.on_block_boundary(pid)
        # Whether or not the boundary was actionable, keep the stream alive
        # (exponential inter-boundary times are memoryless).
        self._schedule_block_boundary(pid)

    def _schedule_interaction(self, i: int, j: int) -> None:
        rate = self.params.pair_rate(i, j)
        if rate <= 0.0:
            return
        delay = self.streams.exponential(f"interaction.{i}.{j}", rate)
        self.engine.schedule(delay, self._fire_interaction, i, j)

    def _fire_interaction(self, i: int, j: int) -> None:
        if self.all_done() or self.now >= self.workload.max_sim_time:
            return
        pi, pj = self.proc(i), self.proc(j)
        if not (pi.done or pj.done) and pi.running and pj.running:
            # Pick the message direction at random; the analytic model treats the
            # interaction symmetrically, the taint model cares about direction.
            if self.streams.bernoulli(f"direction.{i}.{j}", 0.5):
                source, target = i, j
            else:
                source, target = j, i
            self.tracer.record_interaction(source, target, self.now,
                                           receive_time=self.now
                                           + self.workload.message_latency,
                                           tainted=self.proc(source).contaminated)
            self.monitor.counter("interactions").increment()
            if self.workload.faults.propagate_via_messages and \
                    self.proc(source).contaminated:
                origin = self.proc(source).error_origin
                self.proc(target).contaminate(self.now,
                                              origin if origin is not None else source)
            self.on_interaction(source, target)
        self._schedule_interaction(i, j)

    def _schedule_fault(self, pid: int) -> None:
        rate = self.workload.faults.error_rate
        if rate <= 0.0:
            return
        delay = self.streams.exponential(f"fault.{pid}", rate)
        self.engine.schedule(delay, self._fire_fault, pid)

    def _fire_fault(self, pid: int) -> None:
        if self.all_done() or self.now >= self.workload.max_sim_time:
            return
        proc = self.proc(pid)
        if not proc.done and proc.running:
            proc.contaminate(self.now, pid)
            self.tracer.record_error(pid, self.now, local=True, origin=pid)
            self.monitor.counter("errors_injected").increment()
        # Always reschedule (even for finished processes) so a process revived by
        # a rollback keeps experiencing faults.
        self._schedule_fault(pid)

    # ------------------------------------------------------------------ pauses
    def pause_for(self, pid: int, duration: float, *, reason: str) -> None:
        """Suspend *pid* for *duration*; work does not accrue meanwhile.

        ``reason`` is one of ``"checkpoint"``, ``"restart"`` or ``"waiting"`` and
        decides which overhead bucket the time lands in.
        """
        proc = self.proc(pid)
        proc.stop_running(self.now)
        if reason == "checkpoint":
            proc.checkpoint_overhead += duration
        elif reason == "restart":
            proc.restart_overhead += duration
        elif reason == "waiting":
            proc.waiting_time += duration
        else:
            raise ValueError(f"unknown pause reason {reason!r}")
        if duration <= 0.0:
            proc.start_running(self.now)
            return
        self.engine.schedule(duration, self._resume, pid)

    def _resume(self, pid: int) -> None:
        proc = self.proc(pid)
        if not proc.done and not proc.running:
            proc.start_running(self.now)

    # ------------------------------------------------------------------ checkpoints
    def take_checkpoint(self, pid: int, *, kind: CheckpointKind = CheckpointKind.REGULAR,
                        origin: Optional[Tuple[int, int]] = None,
                        charge_time: bool = True) -> Tuple[RecoveryPoint, SavedState]:
        """Record a checkpoint for *pid* at the current time.

        The process is paused for ``checkpoint_cost`` when *charge_time* is set;
        the saved state captures the current work level and contamination flag.
        """
        proc = self.proc(pid)
        proc.advance(self.now)
        if kind is CheckpointKind.REGULAR:
            rp = self.tracer.record_recovery_point(pid, self.now)
            proc.checkpoints += 1
        elif kind is CheckpointKind.PSEUDO:
            if origin is None:
                raise ValueError("pseudo checkpoints need an origin")
            rp = self.tracer.record_pseudo_recovery_point(pid, self.now, origin)
            proc.pseudo_checkpoints += 1
        else:  # pragma: no cover - defensive
            raise ValueError("cannot take an INITIAL checkpoint explicitly")
        state = self.store.save(rp, work_done=proc.work_done,
                                contaminated=proc.contaminated,
                                error_origin=proc.error_origin)
        if charge_time and self.workload.checkpoint_cost > 0.0:
            self.pause_for(pid, self.workload.checkpoint_cost, reason="checkpoint")
        self._storage_level.update(self.now, self.store.count())
        return rp, state

    # ------------------------------------------------------------------ hooks
    @abc.abstractmethod
    def on_block_boundary(self, pid: int) -> None:
        """A recovery-block boundary was reached by a running process."""

    def on_interaction(self, source: int, target: int) -> None:
        """A message was exchanged (default: nothing extra)."""

    def on_process_completed(self, pid: int) -> None:
        """Process *pid* finished its work budget (default: nothing extra)."""

    @abc.abstractmethod
    def on_error_detected(self, pid: int) -> None:
        """An acceptance test flagged an error in *pid*; perform the rollback."""

    def on_run_start(self) -> None:
        """Scheme-specific setup before the event loop starts (optional)."""

    # ------------------------------------------------------------------ detection
    def run_acceptance_test(self, pid: int) -> bool:
        """Run the acceptance test of *pid*; returns True when an error is flagged."""
        proc = self.proc(pid)
        rng = self._rng(f"acceptance.{pid}")
        detected = self.workload.acceptance.detects(
            has_local_error=proc.has_local_error,
            has_external_error=proc.has_external_error, rng=rng)
        if not detected and not proc.contaminated:
            detected = self.workload.acceptance.false_alarm(rng)
        self.tracer.record_acceptance_test(pid, self.now, passed=not detected)
        self.monitor.counter("acceptance_tests").increment()
        if detected:
            self.monitor.counter("acceptance_failures").increment()
        return detected

    # ------------------------------------------------------------------ run loop
    def run(self) -> RunReport:
        """Execute the workload under this scheme and return the report."""
        if self._started:
            raise RuntimeError("a runtime instance can only be run once")
        self._started = True
        for proc in self.procs:
            proc.start_running(0.0)
        self.on_run_start()
        for pid in range(self.n):
            self._schedule_block_boundary(pid)
            self._schedule_fault(pid)
        for i in range(self.n):
            for j in range(i + 1, self.n):
                self._schedule_interaction(i, j)

        while not self.all_done() and self.now < self.workload.max_sim_time:
            if not self.engine.step():
                break
        # Final bookkeeping.
        for proc in self.procs:
            proc.check_completion(self.now)
        return self._build_report()

    # ------------------------------------------------------------------ reporting
    def _build_report(self) -> RunReport:
        completed = self.all_done()
        makespan = max((p.finish_time for p in self.procs
                        if p.finish_time is not None), default=self.now)
        if not completed:
            makespan = self.now
        return RunReport(
            scheme=self.scheme_name,
            seed=self.seed,
            n_processes=self.n,
            completed=completed,
            makespan=makespan,
            ideal_makespan=self.workload.ideal_completion_time(),
            processes=tuple(p.report() for p in self.procs),
            rollback_count=len(self.rollback_distances),
            rollback_distances=tuple(self.rollback_distances),
            lost_work_total=sum(p.lost_work for p in self.procs),
            checkpoint_overhead_total=sum(p.checkpoint_overhead for p in self.procs),
            restart_overhead_total=sum(p.restart_overhead for p in self.procs),
            waiting_time_total=sum(p.waiting_time for p in self.procs),
            recovery_lines_committed=self.recovery_lines_committed,
            domino_count=self.domino_count,
            peak_saved_states=self.store.peak_count,
            total_saves=self.store.total_saves,
            extra=self.extra_metrics(),
        )

    def extra_metrics(self) -> Dict[str, float]:
        """Scheme-specific additions to the report (optional)."""
        return {}
