"""Synchronized recovery blocks (Section 3) as a running system.

A coordinator issues synchronization requests according to one of the paper's
three strategies:

1. ``CONSTANT_INTERVAL`` — requests at a fixed period, regardless of state;
2. ``ELAPSED_TIME`` — a request when the time since the previous recovery line
   exceeds a threshold;
3. ``STATE_COUNT`` — a request when the number of states saved since the previous
   recovery line exceeds a threshold (processes keep saving local states between
   lines under this strategy).

Upon a request every process finishes its current recovery block, sets its ready
flag, broadcasts it, and waits for the commitments of all others; then all
processes run their acceptance tests at the same instant and the recovery line is
committed.  The waiting time — the computation-power loss ``CL`` analysed in
Section 3 — is measured per line and reported, so it can be compared directly with
the closed-form ``CL = n∫(1−G(t))dt − Σ1/μ_i``.

Failures detected at a synchronisation point roll *all* processes back to the
previous committed line: rollback distance is bounded by construction, which is
the whole point of the scheme.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.core.types import CheckpointKind, ProcessId, RecoveryPoint
from repro.recovery.base import RecoverySchemeRuntime
from repro.recovery.coordinator import RollbackCoordinator
from repro.workloads.spec import WorkloadSpec

__all__ = ["SyncStrategy", "SynchronizedRuntime"]


class SyncStrategy(enum.Enum):
    """When the coordinator issues synchronization requests (Section 3)."""

    CONSTANT_INTERVAL = "constant-interval"
    ELAPSED_TIME = "elapsed-time"
    STATE_COUNT = "state-count"


class SynchronizedRuntime(RecoverySchemeRuntime):
    """The synchronized (conversation-style) recovery-block scheme."""

    scheme_name = "synchronized"

    def __init__(self, workload: WorkloadSpec, seed: Optional[int] = None, *,
                 strategy: SyncStrategy = SyncStrategy.ELAPSED_TIME,
                 sync_interval: float = 2.0,
                 state_threshold: int = 6) -> None:
        super().__init__(workload, seed)
        if sync_interval <= 0.0:
            raise ValueError("sync_interval must be positive")
        if state_threshold < 1:
            raise ValueError("state_threshold must be at least 1")
        self.coordinator = RollbackCoordinator(self)
        self.strategy = strategy
        self.sync_interval = float(sync_interval)
        self.state_threshold = int(state_threshold)
        self._sync_active = False
        self._request_time = 0.0
        self._ready: Dict[int, float] = {}          # pid -> y_i (time to readiness)
        self._last_line: Dict[ProcessId, RecoveryPoint] = {}
        self._last_line_time = 0.0
        self._saves_since_line = 0
        self._sync_losses: list = []

    # ------------------------------------------------------------------ lifecycle
    def on_run_start(self) -> None:
        history = self.tracer.history
        self._last_line = {pid: history.checkpoints(pid,
                                                    kinds=(CheckpointKind.INITIAL,))[0]
                           for pid in range(self.n)}
        if self.strategy is not SyncStrategy.STATE_COUNT:
            self.engine.schedule(self.sync_interval, self._issue_sync_request)

    # ------------------------------------------------------------------ requests
    def _issue_sync_request(self) -> None:
        if self.all_done() or self.now >= self.workload.max_sim_time:
            return
        if self._sync_active:
            # A request is already being served; constant-interval requests simply
            # queue up behind it by rescheduling.
            if self.strategy is SyncStrategy.CONSTANT_INTERVAL:
                self.engine.schedule(self.sync_interval, self._issue_sync_request)
            return
        self._sync_active = True
        self._request_time = self.now
        self._ready = {}
        self.monitor.counter("sync_requests").increment()
        for pid in range(self.n):
            self.tracer.record_sync_request(pid, self.now)
            if self.proc(pid).done:
                self._ready[pid] = 0.0
        if len(self._ready) == self.n:
            self._commit_line()
        elif self.strategy is SyncStrategy.CONSTANT_INTERVAL:
            self.engine.schedule(self.sync_interval, self._issue_sync_request)

    # ------------------------------------------------------------------ hooks
    def on_block_boundary(self, pid: int) -> None:
        proc = self.proc(pid)
        if self._sync_active and pid not in self._ready:
            # The process reached its acceptance test: it is ready and must wait
            # for the commitments of the others (step 3 of the paper's protocol).
            self._ready[pid] = self.now - self._request_time
            self.tracer.record_sync_commit(pid, self.now)
            proc.stop_running(self.now)
            if len(self._ready) == self.n:
                self._commit_line()
            return
        if self.strategy is SyncStrategy.STATE_COUNT and not self._sync_active:
            # Between lines, processes keep saving local states (no global line).
            detected = self.run_acceptance_test(pid)
            if detected:
                self.on_error_detected(pid)
                return
            self.take_checkpoint(pid)
            self._saves_since_line += 1
            if self._saves_since_line >= self.state_threshold:
                self._issue_sync_request()

    def on_process_completed(self, pid: int) -> None:
        """A process finishing during an active sync counts as ready immediately."""
        if self._sync_active and pid not in self._ready:
            self._ready[pid] = self.now - self._request_time
            self.tracer.record_sync_commit(pid, self.now)
            if len(self._ready) == self.n:
                self._commit_line()

    def on_error_detected(self, pid: int) -> None:
        """Roll every process back to the previous committed recovery line."""
        assignment = dict(self._last_line)
        invalidated = [i for i in self.tracer.history.interactions
                       if i.time > self._last_line_time
                       and i not in self.excluded_interactions]
        self.coordinator.apply(pid, assignment, invalidated,
                               record_restart_checkpoints=False)
        self.monitor.counter("line_rollbacks").increment()

    # ------------------------------------------------------------------ commit
    def _commit_line(self) -> None:
        """All processes are ready: run the acceptance tests and commit the line."""
        waits = {pid: (self.now - self._request_time) - y
                 for pid, y in self._ready.items()}
        total_wait = 0.0
        for pid, wait in waits.items():
            proc = self.proc(pid)
            if not proc.done:
                proc.waiting_time += wait
                total_wait += wait
        self._sync_losses.append(total_wait)
        self.monitor.tally("sync_loss_per_line").observe(total_wait)

        failures = []
        for pid in range(self.n):
            if self.proc(pid).done:
                continue
            if self.run_acceptance_test(pid):
                failures.append(pid)

        if failures:
            # The coordinator rolls every process back to the previous line and
            # handles the restart pauses/resumes itself.
            self._sync_active = False
            self.on_error_detected(failures[0])
            if self.strategy is SyncStrategy.ELAPSED_TIME:
                self.engine.schedule(self.sync_interval, self._issue_sync_request)
            return
        else:
            new_line: Dict[ProcessId, RecoveryPoint] = dict(self._last_line)
            for pid in range(self.n):
                proc = self.proc(pid)
                if proc.done:
                    continue
                rp, _state = self.take_checkpoint(pid)
                new_line[pid] = rp
            self._last_line = new_line
            self._last_line_time = self.now
            self._saves_since_line = 0
            self.recovery_lines_committed += 1
            self.tracer.record_recovery_line(self.now, tuple(range(self.n)))
            # Old states are no longer needed: rollback never crosses the line.
            for pid in range(self.n):
                self.store.purge_before(pid, self.now)
            self._storage_level.update(self.now, self.store.count())

        # Resume everyone and schedule the next request.
        self._sync_active = False
        for pid in range(self.n):
            proc = self.proc(pid)
            if not proc.done and not proc.running:
                proc.start_running(self.now)
        if self.strategy is SyncStrategy.ELAPSED_TIME:
            self.engine.schedule(self.sync_interval, self._issue_sync_request)

    # ------------------------------------------------------------------ reporting
    def mean_sync_loss(self) -> float:
        """Mean computation-power loss per committed synchronisation (``CL``)."""
        if not self._sync_losses:
            return 0.0
        return float(sum(self._sync_losses) / len(self._sync_losses))

    def extra_metrics(self) -> Dict[str, float]:
        return {
            "sync_requests": float(self.monitor.counter("sync_requests").value),
            "mean_sync_loss": self.mean_sync_loss(),
            "line_rollbacks": float(self.monitor.counter("line_rollbacks").value),
        }
