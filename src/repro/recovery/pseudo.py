"""Pseudo recovery points (Section 4) as a running system.

The implantation protocol:

1. When ``P_i`` establishes a recovery point ``RP_i^j`` it broadcasts an
   implantation request.
2. Every other process ``P_{i'}`` records its state as ``PRP_{i'}^{ij}`` upon
   completing its current instruction — *without* an acceptance test — and
   broadcasts a commitment.
3. All processes continue their normal tasks.

Rollback (the paper's algorithm, step numbers preserved):

1. An error is found in ``P_i``; set the rollback pointer ``p := i``.
2. ``P_p`` rolls back to its previous recovery point ``RP_p``; every process
   affected by that rollback rolls back to its pseudo recovery point
   ``PRP^{p}`` implanted for that RP.
3. For every affected process, if its rollback has not passed its most recent
   recovery point, set ``p`` to it and repeat from 2 (this is what bounds the
   propagation when the PRP contents may have been contaminated).

Storage is reclaimed with the Section 4 rule: old RPs/PRPs outside the current
pseudo recovery lines are purged whenever a new recovery point is established.
The per-RP time overhead is ``(n−1)·t_r`` — each of the other processes pays one
state save.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.core.types import CheckpointKind, ProcessId, RecoveryPoint
from repro.processes.program import RecoveryBlockExecutor
from repro.recovery.base import RecoverySchemeRuntime
from repro.recovery.coordinator import RollbackCoordinator
from repro.workloads.spec import WorkloadSpec

__all__ = ["PseudoRecoveryPointRuntime"]


class PseudoRecoveryPointRuntime(RecoverySchemeRuntime):
    """The paper's proposed pseudo-recovery-point scheme."""

    scheme_name = "pseudo-recovery-points"

    def __init__(self, workload: WorkloadSpec, seed: Optional[int] = None, *,
                 purge_storage: bool = True) -> None:
        super().__init__(workload, seed)
        self.coordinator = RollbackCoordinator(self)
        self.purge_storage = bool(purge_storage)
        self._executors = [RecoveryBlockExecutor(workload.block_spec,
                                                 self._rng(f"alternates.{pid}"))
                           for pid in range(self.n)]
        self._implantation_overhead = 0.0

    # ------------------------------------------------------------------ hooks
    def on_block_boundary(self, pid: int) -> None:
        detected = self.run_acceptance_test(pid)
        if detected:
            self.on_error_detected(pid)
            return
        nominal = 1.0 / float(self.params.mu[pid])
        outcome = self._executors[pid].execute(nominal, state_contaminated=False)
        if not outcome.passed:
            self.monitor.counter("alternates_exhausted").increment()
            self.on_error_detected(pid)
            return
        extra = max(0.0, outcome.elapsed - nominal)
        if extra > 0.0:
            self.pause_for(pid, extra, reason="restart")
        rp, _state = self.take_checkpoint(pid)
        self._broadcast_implantation(pid, rp)
        if self.purge_storage:
            purged = self.store.purge_obsolete_pseudo_lines()
            if purged:
                self._storage_level.update(self.now, self.store.count())

    def _broadcast_implantation(self, origin_pid: int, rp: RecoveryPoint) -> None:
        """Steps 1–2 of the implantation algorithm."""
        origin = (origin_pid, rp.index)
        for other in range(self.n):
            if other == origin_pid:
                continue
            proc = self.proc(other)
            if proc.done:
                continue
            # "Upon the completion of the current instruction": effectively
            # immediately at the granularity of this simulation.
            self.take_checkpoint(other, kind=CheckpointKind.PSEUDO, origin=origin)
            self._implantation_overhead += self.workload.checkpoint_cost
            self.monitor.counter("prp_implanted").increment()

    def on_error_detected(self, pid: int) -> None:
        assignment, visited = self._plan_pseudo_rollback(pid, self.now)
        # Everything the affected processes did after their restart points is
        # discarded; invalidated interactions are those touching a rolled-back
        # window (computed the same way the asynchronous coordinator does it, but
        # against the pseudo assignment).
        invalidated = self._invalidated_interactions(assignment)
        self.coordinator.apply(pid, assignment, invalidated)
        self.monitor.tally("prp_rollback_scope").observe(float(len(visited)))

    # ------------------------------------------------------------------ planning
    def _plan_pseudo_rollback(self, failed_pid: int, failure_time: float
                              ) -> Tuple[Dict[ProcessId, RecoveryPoint], Set[int]]:
        """The Section 4 rollback algorithm over the recorded history."""
        history = self.tracer.history
        assignment: Dict[ProcessId, RecoveryPoint] = {}
        visited: Set[int] = set()
        pending = [failed_pid]

        while pending:
            p = pending.pop()
            if p in visited:
                continue
            visited.add(p)
            # Step 2a: P_p rolls back to its previous (regular) recovery point.
            rp_p = history.latest_checkpoint_before(
                p, failure_time, usable_only=True, failed_process=p)
            # ``usable_only`` admits regular RPs and initial states only here,
            # because a PRP of the failed process itself offers no protection.
            current = assignment.get(p)
            if current is None or rp_p.time < current.time:
                assignment[p] = rp_p
            # Step 2b: processes affected by P_p's rollback restart at their PRPs
            # implanted for rp_p.
            affected = self._affected_by(p, assignment[p].time, failure_time)
            for j in affected:
                target = self._pseudo_restart_point(j, assignment[p])
                current_j = assignment.get(j)
                if current_j is None or target.time < current_j.time:
                    assignment[j] = target
                # Step 3: if P_j has not rolled past its most recent RP, the
                # propagation continues through it.
                latest_rp_j = history.latest_checkpoint_before(
                    j, failure_time, usable_only=True, failed_process=j)
                if assignment[j].time > latest_rp_j.time and j not in visited:
                    pending.append(j)
        return assignment, visited

    def _affected_by(self, p: int, restart_time: float,
                     failure_time: float) -> Set[int]:
        """Processes that interacted with *p* inside its discarded window."""
        affected: Set[int] = set()
        for interaction in self.tracer.history.interactions_involving(
                p, restart_time, failure_time):
            if interaction in self.excluded_interactions:
                continue
            other = interaction.target if interaction.source == p else interaction.source
            affected.add(other)
        affected.discard(p)
        return affected

    def _pseudo_restart_point(self, process: int,
                              trigger_rp: RecoveryPoint) -> RecoveryPoint:
        """The PRP implanted in *process* for *trigger_rp* (with fallbacks)."""
        history = self.tracer.history
        origin = (trigger_rp.process, trigger_rp.index)
        for rp in history.checkpoints(process, kinds=(CheckpointKind.PSEUDO,)):
            if rp.origin == origin:
                return rp
        # No PRP was implanted (e.g. the trigger is the initial state, or the
        # process had already finished): fall back to the latest verified
        # checkpoint not newer than the trigger.
        return history.latest_checkpoint_before(process, trigger_rp.time,
                                                usable_only=True,
                                                failed_process=process)

    def _invalidated_interactions(self, assignment: Dict[ProcessId, RecoveryPoint]):
        if not assignment:
            return []
        # An interaction only qualifies when its send time exceeds some restart
        # point (hence the earliest one) and does not exceed "now" — window the
        # time-sorted history instead of copying and scanning all of it.
        earliest = min(rp.time for rp in assignment.values())
        excluded = self.excluded_interactions
        invalidated = []
        for interaction in self.tracer.history.interactions_window(earliest, self.now):
            if interaction in excluded:
                continue
            for pid, rp in assignment.items():
                if interaction.involves(pid) and interaction.time > rp.time:
                    invalidated.append(interaction)
                    break
        return invalidated

    # ------------------------------------------------------------------ reporting
    def extra_metrics(self) -> Dict[str, float]:
        return {
            "prp_implanted": float(self.monitor.counter("prp_implanted").value),
            "implantation_overhead": self._implantation_overhead,
        }
