"""Asynchronous recovery blocks (Section 2) as a running system.

Every process establishes recovery points on its own schedule: at each
recovery-block boundary the acceptance test runs (with alternate retries, per the
block spec) and, if it passes, the state is saved as a regular recovery point.
When an acceptance test fails, rollback propagation is computed over the recorded
history — exactly the mechanism behind the domino effect — and every affected
process is pushed back to the most recent *consistent* set of checkpoints.

The paper's warning materialises here: nothing bounds how far the propagation can
reach, so the rollback distance observed by this runtime is the empirical
counterpart of the interval ``X`` analysed in Section 2.3.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.recovery_line import ExactRecoveryLineDetector
from repro.processes.program import RecoveryBlockExecutor
from repro.recovery.base import RecoverySchemeRuntime
from repro.recovery.coordinator import RollbackCoordinator
from repro.workloads.spec import WorkloadSpec

__all__ = ["AsynchronousRuntime"]


class AsynchronousRuntime(RecoverySchemeRuntime):
    """The asynchronous recovery-block scheme.

    Parameters
    ----------
    workload:
        The workload specification.
    seed:
        Random seed for reproducibility.
    purge_behind_recovery_lines:
        When True the runtime periodically detects committed recovery lines (using
        the exact detector) and purges saved states older than the line — an
        optimisation real systems use; disabled by default to expose the storage
        growth the paper warns about ("a great number of largely useless recovery
        points occupying large amounts of memory space").
    """

    scheme_name = "asynchronous"

    def __init__(self, workload: WorkloadSpec, seed: Optional[int] = None, *,
                 purge_behind_recovery_lines: bool = False) -> None:
        super().__init__(workload, seed)
        self.coordinator = RollbackCoordinator(self)
        self.purge_behind_recovery_lines = bool(purge_behind_recovery_lines)
        self._executors = [RecoveryBlockExecutor(workload.block_spec,
                                                 self._rng(f"alternates.{pid}"))
                           for pid in range(self.n)]
        self._line_detector = ExactRecoveryLineDetector()

    # ------------------------------------------------------------------ hooks
    def on_block_boundary(self, pid: int) -> None:
        proc = self.proc(pid)
        # Acceptance test (with the external-detection nuance of Section 2.1).
        detected = self.run_acceptance_test(pid)
        if detected:
            self.on_error_detected(pid)
            return
        # The block may still need alternate retries for algorithmic (not
        # state-contamination) failures; the extra time is charged as a pause.
        nominal = 1.0 / float(self.params.mu[pid])
        outcome = self._executors[pid].execute(nominal, state_contaminated=False)
        extra = max(0.0, outcome.elapsed - nominal)
        if not outcome.passed:
            # All alternates failed: treat as a detected local error.
            self.monitor.counter("alternates_exhausted").increment()
            self.on_error_detected(pid)
            return
        if extra > 0.0:
            self.pause_for(pid, extra, reason="restart")
        self.take_checkpoint(pid)
        if self.purge_behind_recovery_lines:
            self._maybe_purge()

    def on_error_detected(self, pid: int) -> None:
        result = self.coordinator.plan_asynchronous(pid, self.now)
        self.coordinator.apply(pid, result.restart_points,
                               result.invalidated_interactions)

    # ------------------------------------------------------------------ extras
    def _maybe_purge(self) -> None:
        lines = self._line_detector.find_lines(self.tracer.history)
        if len(lines) < 2:
            return
        latest = lines[-1]
        for pid in range(self.n):
            self.store.purge_before(pid, latest.point_for(pid).time)
        self._storage_level.update(self.now, self.store.count())

    def extra_metrics(self) -> Dict[str, float]:
        report = self.monitor.report(self.now)
        return {
            "avg_saved_states": report.get("avg.saved_states", 0.0),
            "acceptance_tests": report.get("count.acceptance_tests", 0.0),
            "errors_injected": report.get("count.errors_injected", 0.0),
        }
