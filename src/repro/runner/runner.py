"""The experiment runner: execution contexts, seed streams and sharding.

Determinism contract
--------------------
All randomness a scenario consumes is derived from one root
:class:`numpy.random.SeedSequence` held by the :class:`ExecutionContext`.
Per-replication (or per-shard) child sequences are spawned *in the driver
process, in a fixed order* (:meth:`ExecutionContext.spawn_seeds`), attached to
the task payloads, and only then handed to the backend.  Workers never touch
the root sequence, and backends return results in task order — so for a fixed
seed the assembled :class:`~repro.experiments.common.ExperimentResult` is
bit-for-bit identical whether the tasks ran serially or across a process pool,
with any worker count.

Sharding follows the same rule: a Monte-Carlo budget of ``N`` replications is
split into fixed-size shards (:func:`shard_counts`) whose sizes depend only on
``N`` — never on the backend or worker count.

Persistence hook
----------------
:class:`ExperimentRunner` accepts an optional *store* — any object with the
three-method surface of :class:`~repro.report.store.ResultStore`
(``key(scenario, params, seed, reps)``, ``get(key, scenario)``,
``put(...)``).  When a
store is attached, :meth:`ExperimentRunner.run_record` first looks the
``(scenario, canonical params, seed, reps, code version)`` cell up and returns
the stored result on a hit, so interrupted sweeps resume instead of recompute;
on a miss it runs the scenario and writes the result through.  The runner only
ever talks to the store duck-typed, so :mod:`repro.runner` stays importable
without the report layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.runner.backends import ExecutionBackend, SerialBackend, make_backend
from repro.runner.registry import ScenarioSpec, get_scenario, load_builtin_scenarios

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "ExecutionContext",
    "ExperimentRunner",
    "RunRecord",
    "run_scenario",
    "seed_to_int",
    "shard_counts",
]

T = TypeVar("T")
R = TypeVar("R")

#: Replications per shard.  Fixed (backend- and worker-independent) so that the
#: shard layout — and therefore the seed stream and the results — depends only
#: on the total budget.  Small enough to load ~10 workers on the default
#: Table 1 budget, large enough that per-task overhead stays negligible.
DEFAULT_SHARD_SIZE = 2_000


def shard_counts(total: int, shard_size: int = DEFAULT_SHARD_SIZE) -> List[int]:
    """Split *total* replications into fixed-size shards (last one ragged)."""
    if total < 1:
        raise ValueError("need at least one replication")
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    full, rest = divmod(total, shard_size)
    return [shard_size] * full + ([rest] if rest else [])


def seed_to_int(seq: np.random.SeedSequence) -> int:
    """Deterministic 64-bit integer seed from a :class:`SeedSequence`.

    For legacy components whose API takes an ``int`` seed (the recovery-scheme
    runtimes, :class:`~repro.sim.random_streams.RandomStreams`).
    """
    lo, hi = seq.generate_state(2, dtype=np.uint32)
    return (int(hi) << 32) | int(lo)


class ExecutionContext:
    """What the runner injects into a scenario function.

    Carries the execution backend, the requested replication budget and the
    root seed sequence.  Scenario code expresses Monte-Carlo work as *tasks*
    (picklable payloads, each holding a spawned child seed) and runs them with
    :meth:`map`; everything else — analytic computation, result assembly — runs
    in the driver.
    """

    def __init__(self, backend: Optional[ExecutionBackend] = None,
                 seed: Optional[int] = None, reps: Optional[int] = None) -> None:
        self.backend = backend if backend is not None else SerialBackend()
        self.seed = seed
        self.reps = reps
        # Created on first spawn: for seed=None the SeedSequence gathers OS
        # entropy, which purely analytic evaluations should never pay for.
        self._root: Optional[np.random.SeedSequence] = None

    # ------------------------------------------------------------------ seeds
    def spawn_seeds(self, n: int) -> List[np.random.SeedSequence]:
        """Spawn *n* fresh child seed sequences from the root.

        Successive calls continue the spawn counter, so a scenario that calls
        this in a fixed order gets the same seed stream on every backend.
        """
        if n < 0:
            raise ValueError("cannot spawn a negative number of seeds")
        if self._root is None:
            self._root = np.random.SeedSequence(self.seed)
        return list(self._root.spawn(n)) if n else []

    def spawn_seed(self) -> np.random.SeedSequence:
        """Spawn a single child seed sequence."""
        return self.spawn_seeds(1)[0]

    # ------------------------------------------------------------------ reps
    def reps_or(self, default: int) -> int:
        """The requested replication budget, or *default* when unspecified."""
        reps = default if self.reps is None else self.reps
        if reps < 1:
            raise ValueError("replication budget must be >= 1")
        return reps

    def shards_for(self, total: int,
                   shard_size: int = DEFAULT_SHARD_SIZE) -> List[int]:
        """Shard sizes for *total* replications (backend independent)."""
        return shard_counts(total, shard_size)

    # ------------------------------------------------------------------ execution
    def map(self, func: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        """Run picklable *tasks* through the backend; results in task order."""
        return self.backend.map(func, list(tasks))


@dataclass(frozen=True)
class RunRecord:
    """Outcome of one :meth:`ExperimentRunner.run_record` call.

    Attributes
    ----------
    spec:
        The resolved :class:`~repro.runner.registry.ScenarioSpec`.
    result:
        The scenario's :class:`~repro.experiments.common.ExperimentResult`
        (freshly computed, or reloaded from the store on a cache hit).
    params:
        The *effective* scenario parameters: registered defaults layered
        under caller overrides.  This is what the store key is computed from.
    seed / reps:
        The effective root seed and replication budget of the run (``reps``
        is resolved against the spec's ``default_reps``, since that is what
        identifies the cell in the store).
    elapsed_seconds:
        Wall-clock compute time.  On a cache hit this is the *original* run's
        elapsed time (the lookup itself is effectively free).
    cached:
        ``True`` when the result came out of the store without executing the
        scenario.
    backend:
        Description of the backend that actually computed the result — on a
        cache hit, the *original* run's backend, not this invocation's.
    key:
        The store's content address for this cell (``None`` when the runner
        has no store attached).
    """

    spec: ScenarioSpec
    result: Any
    params: dict
    seed: Optional[int]
    reps: Optional[int]
    elapsed_seconds: float
    cached: bool = False
    backend: str = ""
    key: Optional[str] = None


class ExperimentRunner:
    """Resolve scenarios from the registry and execute them on a backend.

    An optional *store* (see :class:`~repro.report.store.ResultStore`) turns
    the runner into a write-through cache: already-computed
    ``(scenario, params, seed, reps)`` cells are reloaded instead of re-run.

    >>> runner = ExperimentRunner(seed=7)
    >>> result = runner.run("validation", reps=500)     # doctest: +SKIP
    """

    def __init__(self, backend: Union[str, ExecutionBackend, None] = None, *,
                 workers: Optional[int] = None, seed: Optional[int] = None,
                 reps: Optional[int] = None, store: Optional[Any] = None) -> None:
        self.backend = make_backend(backend, workers)
        self.seed = seed
        self.reps = reps
        self.store = store

    def _resolve(self, name_or_spec: Union[str, ScenarioSpec]) -> ScenarioSpec:
        if isinstance(name_or_spec, ScenarioSpec):
            return name_or_spec
        load_builtin_scenarios()
        return get_scenario(name_or_spec)

    def run_record(self, name_or_spec: Union[str, ScenarioSpec], *,
                   seed: Optional[int] = None, reps: Optional[int] = None,
                   force: bool = False, **params) -> RunRecord:
        """Run one scenario (or serve it from the store) with full metadata.

        ``seed``/``reps`` override the runner-level defaults; ``params`` are
        scenario keyword parameters layered over the spec's registered
        defaults.  With a store attached, a cache hit on the
        ``(scenario, params, seed, reps, code version)`` key skips execution
        entirely unless ``force`` is given; a miss (or a forced run) executes
        the scenario and writes the result through.  ``reps`` is resolved
        against the scenario's ``default_reps`` before keying, and
        fresh-entropy runs (effective seed ``None``) bypass the store in both
        directions — they are not reproducible, so they are never cached.
        (Deterministic seedless *facade* cells are the one exception to that
        policy; :func:`repro.api.facade.evaluate_record` caches them itself,
        keyed identically to :meth:`StudySpec.canonical_key`.)
        """
        spec = self._resolve(name_or_spec)
        eff_seed = self.seed if seed is None else seed
        eff_reps = self.reps if reps is None else reps
        # The cell identity uses the *resolved* budget: an omitted --reps and
        # an explicit --reps <scenario default> are the same work, and a later
        # change to a scenario's default_reps must miss, not serve the old
        # default's results.
        key_reps = eff_reps if eff_reps is not None else spec.default_reps
        merged = {**spec.defaults, **params}

        # seed=None means "fresh OS entropy" — two such runs are *different*
        # experiments, so they must neither be served from nor written to the
        # store (a constant-key cache would replay the first run forever).
        key: Optional[str] = None
        cacheable = self.store is not None and eff_seed is not None
        if cacheable:
            key = self.store.key(spec.name, merged, eff_seed, key_reps)
            if not force:
                # The scenario hint makes the lookup a single stat instead of
                # a scan across every scenario's object directory.
                hit = self.store.get(key, spec.name)
                if hit is not None:
                    return RunRecord(spec=spec, result=hit.result, params=merged,
                                     seed=eff_seed, reps=key_reps,
                                     elapsed_seconds=hit.elapsed_seconds,
                                     cached=True, backend=hit.backend, key=key)

        ctx = ExecutionContext(backend=self.backend, seed=eff_seed, reps=eff_reps)
        start = time.perf_counter()
        result = spec.func(ctx, **merged)
        elapsed = time.perf_counter() - start
        if cacheable:
            self.store.put(spec.name, merged, eff_seed, key_reps,
                           backend=self.backend.describe(),
                           elapsed_seconds=elapsed, result=result)
        return RunRecord(spec=spec, result=result, params=merged, seed=eff_seed,
                         reps=key_reps, elapsed_seconds=elapsed, cached=False,
                         backend=self.backend.describe(), key=key)

    def run(self, name_or_spec: Union[str, ScenarioSpec], *,
            seed: Optional[int] = None, reps: Optional[int] = None, **params):
        """Run one scenario and return its ``ExperimentResult``.

        Thin wrapper over :meth:`run_record` for callers that only want the
        result; the record variant additionally reports cache status, the
        store key and elapsed time.
        """
        return self.run_record(name_or_spec, seed=seed, reps=reps,
                               **params).result


def run_scenario(name: str, *, backend: Union[str, ExecutionBackend, None] = None,
                 workers: Optional[int] = None, seed: Optional[int] = None,
                 reps: Optional[int] = None, store: Optional[Any] = None,
                 **params):
    """One-shot convenience wrapper around :class:`ExperimentRunner`.

    >>> from repro.runner import run_scenario
    >>> result = run_scenario("table1", simulate=True, reps=2_000,
    ...                       backend="process", workers=4, seed=1)  # doctest: +SKIP
    """
    runner = ExperimentRunner(backend, workers=workers, seed=seed, reps=reps,
                              store=store)
    return runner.run(name, **params)
