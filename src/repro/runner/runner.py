"""The experiment runner: execution contexts, seed streams and sharding.

Determinism contract
--------------------
All randomness a scenario consumes is derived from one root
:class:`numpy.random.SeedSequence` held by the :class:`ExecutionContext`.
Per-replication (or per-shard) child sequences are spawned *in the driver
process, in a fixed order* (:meth:`ExecutionContext.spawn_seeds`), attached to
the task payloads, and only then handed to the backend.  Workers never touch
the root sequence, and backends return results in task order — so for a fixed
seed the assembled :class:`~repro.experiments.common.ExperimentResult` is
bit-for-bit identical whether the tasks ran serially or across a process pool,
with any worker count.

Sharding follows the same rule: a Monte-Carlo budget of ``N`` replications is
split into fixed-size shards (:func:`shard_counts`) whose sizes depend only on
``N`` — never on the backend or worker count.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.runner.backends import ExecutionBackend, SerialBackend, make_backend
from repro.runner.registry import ScenarioSpec, get_scenario, load_builtin_scenarios

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "ExecutionContext",
    "ExperimentRunner",
    "run_scenario",
    "seed_to_int",
    "shard_counts",
]

T = TypeVar("T")
R = TypeVar("R")

#: Replications per shard.  Fixed (backend- and worker-independent) so that the
#: shard layout — and therefore the seed stream and the results — depends only
#: on the total budget.  Small enough to load ~10 workers on the default
#: Table 1 budget, large enough that per-task overhead stays negligible.
DEFAULT_SHARD_SIZE = 2_000


def shard_counts(total: int, shard_size: int = DEFAULT_SHARD_SIZE) -> List[int]:
    """Split *total* replications into fixed-size shards (last one ragged)."""
    if total < 1:
        raise ValueError("need at least one replication")
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    full, rest = divmod(total, shard_size)
    return [shard_size] * full + ([rest] if rest else [])


def seed_to_int(seq: np.random.SeedSequence) -> int:
    """Deterministic 64-bit integer seed from a :class:`SeedSequence`.

    For legacy components whose API takes an ``int`` seed (the recovery-scheme
    runtimes, :class:`~repro.sim.random_streams.RandomStreams`).
    """
    lo, hi = seq.generate_state(2, dtype=np.uint32)
    return (int(hi) << 32) | int(lo)


class ExecutionContext:
    """What the runner injects into a scenario function.

    Carries the execution backend, the requested replication budget and the
    root seed sequence.  Scenario code expresses Monte-Carlo work as *tasks*
    (picklable payloads, each holding a spawned child seed) and runs them with
    :meth:`map`; everything else — analytic computation, result assembly — runs
    in the driver.
    """

    def __init__(self, backend: Optional[ExecutionBackend] = None,
                 seed: Optional[int] = None, reps: Optional[int] = None) -> None:
        self.backend = backend if backend is not None else SerialBackend()
        self.seed = seed
        self.reps = reps
        self._root = np.random.SeedSequence(seed)

    # ------------------------------------------------------------------ seeds
    def spawn_seeds(self, n: int) -> List[np.random.SeedSequence]:
        """Spawn *n* fresh child seed sequences from the root.

        Successive calls continue the spawn counter, so a scenario that calls
        this in a fixed order gets the same seed stream on every backend.
        """
        if n < 0:
            raise ValueError("cannot spawn a negative number of seeds")
        return list(self._root.spawn(n)) if n else []

    def spawn_seed(self) -> np.random.SeedSequence:
        """Spawn a single child seed sequence."""
        return self.spawn_seeds(1)[0]

    # ------------------------------------------------------------------ reps
    def reps_or(self, default: int) -> int:
        """The requested replication budget, or *default* when unspecified."""
        reps = default if self.reps is None else self.reps
        if reps < 1:
            raise ValueError("replication budget must be >= 1")
        return reps

    def shards_for(self, total: int,
                   shard_size: int = DEFAULT_SHARD_SIZE) -> List[int]:
        """Shard sizes for *total* replications (backend independent)."""
        return shard_counts(total, shard_size)

    # ------------------------------------------------------------------ execution
    def map(self, func: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        """Run picklable *tasks* through the backend; results in task order."""
        return self.backend.map(func, list(tasks))


class ExperimentRunner:
    """Resolve scenarios from the registry and execute them on a backend.

    >>> runner = ExperimentRunner(seed=7)
    >>> result = runner.run("validation", reps=500)     # doctest: +SKIP
    """

    def __init__(self, backend: Union[str, ExecutionBackend, None] = None, *,
                 workers: Optional[int] = None, seed: Optional[int] = None,
                 reps: Optional[int] = None) -> None:
        self.backend = make_backend(backend, workers)
        self.seed = seed
        self.reps = reps

    def run(self, name_or_spec: Union[str, ScenarioSpec], *,
            seed: Optional[int] = None, reps: Optional[int] = None, **params):
        """Run one scenario and return its ``ExperimentResult``.

        ``seed``/``reps`` override the runner-level defaults; ``params`` are
        scenario keyword parameters layered over the spec's registered
        defaults.
        """
        if isinstance(name_or_spec, ScenarioSpec):
            spec = name_or_spec
        else:
            load_builtin_scenarios()
            spec = get_scenario(name_or_spec)
        ctx = ExecutionContext(
            backend=self.backend,
            seed=self.seed if seed is None else seed,
            reps=self.reps if reps is None else reps,
        )
        merged = {**spec.defaults, **params}
        return spec.func(ctx, **merged)


def run_scenario(name: str, *, backend: Union[str, ExecutionBackend, None] = None,
                 workers: Optional[int] = None, seed: Optional[int] = None,
                 reps: Optional[int] = None, **params):
    """One-shot convenience wrapper around :class:`ExperimentRunner`.

    >>> from repro.runner import run_scenario
    >>> result = run_scenario("table1", simulate=True, reps=2_000,
    ...                       backend="process", workers=4, seed=1)  # doctest: +SKIP
    """
    runner = ExperimentRunner(backend, workers=workers, seed=seed, reps=reps)
    return runner.run(name, **params)
