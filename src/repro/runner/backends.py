"""Execution backends: where replication tasks actually run.

A backend exposes one operation, :meth:`ExecutionBackend.map`, with the same
contract as the built-in ``map``: apply a picklable top-level function to a
sequence of picklable tasks and return the results *in task order*.  Because
every task carries its own pre-spawned seed and ordering is preserved, a
scenario produces bit-identical results on every backend.

``SerialBackend`` runs tasks inline; ``ProcessPoolBackend`` fans them out over
a :class:`concurrent.futures.ProcessPoolExecutor`.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

__all__ = ["ExecutionBackend", "SerialBackend", "ProcessPoolBackend", "make_backend"]

T = TypeVar("T")
R = TypeVar("R")


class ExecutionBackend(abc.ABC):
    """Strategy for executing a batch of independent replication tasks."""

    #: CLI identifier (``--backend <name>``).
    name: str = "abstract"

    @abc.abstractmethod
    def map(self, func: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        """Apply *func* to every task, returning results in task order."""

    def describe(self) -> str:
        return self.name


class SerialBackend(ExecutionBackend):
    """Run every task in the driver process, one after another."""

    name = "serial"

    def map(self, func: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        return [func(task) for task in tasks]


class ProcessPoolBackend(ExecutionBackend):
    """Shard tasks across worker processes via :mod:`concurrent.futures`.

    Task functions and task payloads must be picklable (top-level functions and
    plain dataclasses — which is how the built-in scenarios express their
    shards).  Results come back in submission order, so output is bit-identical
    to :class:`SerialBackend` for the same task list.

    Parameters
    ----------
    workers:
        Worker-process count; ``None`` uses ``os.cpu_count()``.
    chunksize:
        Tasks handed to a worker per round-trip; ``None`` picks
        ``ceil(len(tasks) / (4 * workers))`` (at least 1) to amortise IPC
        without starving the pool.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None,
                 chunksize: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.workers = workers
        self.chunksize = chunksize

    def _effective_workers(self, n_tasks: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, n_tasks))

    def map(self, func: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        tasks = list(tasks)
        if not tasks:
            return []
        workers = self._effective_workers(len(tasks))
        if workers == 1:
            # Nothing to fan out; skip the pool (and its pickling round-trip).
            return [func(task) for task in tasks]
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, -(-len(tasks) // (4 * workers)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(func, tasks, chunksize=chunksize))

    def describe(self) -> str:
        return f"process(workers={self.workers or os.cpu_count() or 1})"


def make_backend(backend: Union[str, ExecutionBackend, None] = None,
                 workers: Optional[int] = None) -> ExecutionBackend:
    """Coerce a CLI-ish backend designation into an :class:`ExecutionBackend`.

    ``None`` and ``"serial"`` give :class:`SerialBackend`; ``"process"`` (or a
    *workers* count with no backend name) gives :class:`ProcessPoolBackend`.
    An already-constructed backend passes through (``workers`` must then be
    ``None`` — the instance owns its configuration).
    """
    if isinstance(backend, ExecutionBackend):
        if workers is not None:
            raise ValueError("pass workers to the backend constructor, not both")
        return backend
    if backend is None:
        return ProcessPoolBackend(workers=workers) if workers is not None \
            else SerialBackend()
    if backend == SerialBackend.name:
        if workers is not None:
            raise ValueError("the serial backend has no workers")
        return SerialBackend()
    if backend == ProcessPoolBackend.name:
        return ProcessPoolBackend(workers=workers)
    raise ValueError(f"unknown backend {backend!r}; expected "
                     f"'{SerialBackend.name}' or '{ProcessPoolBackend.name}'")
