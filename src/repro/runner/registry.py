"""The global scenario registry.

A *scenario* is a callable ``func(ctx, **params) -> ExperimentResult`` whose
first argument is the :class:`~repro.runner.runner.ExecutionContext` injected by
the runner; everything after it must be keyword parameters with defaults so the
CLI can override them.  Registration is decorator based::

    @scenario("table1", paper_reference="Table 1", default_reps=20_000)
    def table1_scenario(ctx, *, simulate=False):
        ...

Names are unique: registering two scenarios under the same name raises
:class:`DuplicateScenarioError` (re-registering the *same* function is a no-op
so module reloads stay harmless).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

__all__ = [
    "DuplicateScenarioError",
    "ScenarioSpec",
    "get_scenario",
    "list_scenarios",
    "load_builtin_scenarios",
    "register_scenario",
    "scenario",
    "unregister_scenario",
]


class DuplicateScenarioError(ValueError):
    """Raised when two different callables claim the same scenario name."""


@dataclass(frozen=True)
class ScenarioSpec:
    """Metadata + entry point of one registered scenario.

    Attributes
    ----------
    name:
        Registry key; also the CLI name (``python -m repro run <name>``).
    func:
        ``func(ctx, **params) -> ExperimentResult``.
    description:
        One-line summary shown by ``python -m repro list``.
    paper_reference:
        The table/figure/section of the paper the scenario reproduces.
    default_reps:
        Default Monte-Carlo replication budget (``None`` for purely analytic
        scenarios, where ``--reps`` is ignored).
    defaults:
        Default keyword parameters merged under any caller overrides.
    renderer:
        Name of the :mod:`repro.report` renderer that turns this scenario's
        result into paper artifacts (``"figure5"``, ``"figure6"``,
        ``"table"``, ``"sync_loss"``, ``"strategy_tradeoff"``, …).  ``None``
        means the generic rendering — an inline markdown table in
        ``REPORT.md`` — which every scenario gets anyway; declared renderers
        *additionally* emit figure/table files.
    internal:
        Infrastructure scenarios (the facade's ``evaluate``) that need
        caller-supplied parameters and therefore must not be swept up by
        generic enumeration (``python -m repro list``, ``report --all``).
        They stay addressable by name.
    """

    name: str
    func: Callable
    description: str = ""
    paper_reference: str = ""
    default_reps: Optional[int] = None
    defaults: Mapping[str, object] = field(default_factory=dict)
    renderer: Optional[str] = None
    internal: bool = False

    @property
    def uses_replications(self) -> bool:
        return self.default_reps is not None


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add *spec* to the global registry; duplicate names are an error."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        if existing.func is spec.func:
            return existing
        # A reload re-runs the decorator on a *fresh* function object; treat
        # the same module+qualname as the same scenario and refresh the entry.
        if (existing.func.__module__ == spec.func.__module__
                and existing.func.__qualname__ == spec.func.__qualname__):
            _REGISTRY[spec.name] = spec
            return spec
        raise DuplicateScenarioError(
            f"scenario {spec.name!r} is already registered "
            f"(by {existing.func.__module__}.{existing.func.__qualname__})")
    _REGISTRY[spec.name] = spec
    return spec


def scenario(name: str, *, description: str = "", paper_reference: str = "",
             default_reps: Optional[int] = None, renderer: Optional[str] = None,
             internal: bool = False,
             **defaults: object) -> Callable[[Callable], Callable]:
    """Decorator registering *func* as scenario *name*; returns *func* unchanged."""

    def decorate(func: Callable) -> Callable:
        doc_first_line = next(iter((func.__doc__ or "").strip().splitlines()), "")
        register_scenario(ScenarioSpec(
            name=name,
            func=func,
            description=description or doc_first_line,
            paper_reference=paper_reference,
            default_reps=default_reps,
            defaults=dict(defaults),
            renderer=renderer,
            internal=internal,
        ))
        return func

    return decorate


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario; ``KeyError`` names the known scenarios."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none registered)"
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") \
            from None


def list_scenarios(include_internal: bool = False) -> List[ScenarioSpec]:
    """Registered scenarios, sorted by name.

    Internal infrastructure scenarios are excluded by default so generic
    consumers (``list``, ``report --all``) never invoke a scenario that
    needs caller-supplied parameters.
    """
    return [_REGISTRY[name] for name in sorted(_REGISTRY)
            if include_internal or not _REGISTRY[name].internal]


def unregister_scenario(name: str) -> None:
    """Remove a scenario (test hygiene; unknown names are a no-op)."""
    _REGISTRY.pop(name, None)


def load_builtin_scenarios() -> None:
    """Import every module that registers built-in scenarios.

    Covers :mod:`repro.experiments` (the paper artefacts) and
    :mod:`repro.api` (the facade's internal ``evaluate`` scenario).
    Idempotent: the imports are cached, and re-registration of the same
    functions is a no-op.  Kept lazy (a function, not a module-level import)
    so that ``repro.runner`` itself never depends on the experiment layer.
    """
    import repro.experiments  # noqa: F401  (import side effect registers scenarios)
    import repro.api          # noqa: F401  (registers the 'evaluate' scenario)
