"""Unified scenario registry and parallel experiment runner.

Every paper artefact (table, figure, section analysis) is a *scenario*: a named,
registered entry point that builds an
:class:`~repro.experiments.common.ExperimentResult`.  The subsystem splits the
experiment layer into three pieces:

``registry``
    :class:`ScenarioSpec` and the global decorator-based registry
    (``@scenario("table1")``), so new workloads plug in without touching the
    harness.
``backends``
    Pluggable execution backends: :class:`SerialBackend` runs replications in
    the driver process, :class:`ProcessPoolBackend` fans them out across worker
    processes via :mod:`concurrent.futures`.
``runner``
    :class:`ExperimentRunner` / :func:`run_scenario`, which hand each scenario
    an :class:`ExecutionContext` carrying the backend, the replication budget
    and a root :class:`numpy.random.SeedSequence`.  Monte-Carlo work is sharded
    into fixed-size tasks whose seeds are spawned *in the driver*, so serial
    and parallel runs of the same seed are bit-for-bit identical.

The runner also carries the persistence seam of the reporting layer: attach a
:class:`~repro.report.store.ResultStore` (``ExperimentRunner(store=...)``) and
every run is written through to a content-addressed artifact directory, with
cache hits on already-computed ``(scenario, params, seed, reps)`` cells served
back without re-execution (:class:`~repro.runner.runner.RunRecord` reports
which happened).

The CLI (``python -m repro``) lists scenarios (``list``), runs one (``run``),
and renders the paper artifacts plus a provenance-stamped ``REPORT.md``
(``report``).
"""

from repro.runner.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from repro.runner.registry import (
    DuplicateScenarioError,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    load_builtin_scenarios,
    register_scenario,
    scenario,
    unregister_scenario,
)
from repro.runner.runner import (
    DEFAULT_SHARD_SIZE,
    ExecutionContext,
    ExperimentRunner,
    RunRecord,
    run_scenario,
    seed_to_int,
    shard_counts,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "DuplicateScenarioError",
    "ExecutionBackend",
    "ExecutionContext",
    "ExperimentRunner",
    "ProcessPoolBackend",
    "RunRecord",
    "ScenarioSpec",
    "SerialBackend",
    "get_scenario",
    "list_scenarios",
    "load_builtin_scenarios",
    "make_backend",
    "register_scenario",
    "run_scenario",
    "scenario",
    "seed_to_int",
    "shard_counts",
    "unregister_scenario",
]
