"""repro — reproduction of Shin & Lee (1983), *Analysis of Backward Error Recovery
for Concurrent Processes with Recovery Blocks* (ICPP 1983).

The package provides:

* a domain model of concurrent processes with recovery blocks
  (:mod:`repro.core`);
* a discrete-event simulation substrate and executable recovery-block runtimes —
  asynchronous, synchronized (conversation), and pseudo-recovery-point based
  (:mod:`repro.sim`, :mod:`repro.processes`, :mod:`repro.recovery`,
  :mod:`repro.faults`, :mod:`repro.workloads`);
* the paper's probabilistic models: the Markov chain for asynchronous recovery
  blocks, the synchronized-loss formula, and the PRP overhead analysis
  (:mod:`repro.markov`, :mod:`repro.analysis`);
* an experiment harness regenerating every table and figure of the paper
  (:mod:`repro.experiments`);
* a unified evaluation facade: declarative :class:`~repro.api.StudySpec`\\ s
  evaluated through one :func:`repro.evaluate` entry point across the
  analytic, Monte-Carlo and discrete-event engines, with auto method
  selection, sweeps, and store-backed caching — ``python -m repro eval``
  (:mod:`repro.api`);
* a scenario registry and parallel experiment runner with serial/process-pool
  backends and a CLI — ``python -m repro list`` / ``python -m repro run <name>``
  (:mod:`repro.runner`);
* a content-addressed result store and paper-figure report pipeline —
  ``python -m repro report --all`` renders Figure 5, Figure 6, Table 1 and the
  heterogeneous sweep into a provenance-stamped ``REPORT.md``
  (:mod:`repro.report`);
* an async multi-tenant evaluation service — single-flight dedup of
  identical in-flight cells, a hot-cell LRU, admission batching into one
  backend fan-out, and a keyspace-sharded store — ``python -m repro serve``
  (:mod:`repro.service`).

Quickstart
----------
>>> from repro import SystemParameters, RecoveryLineIntervalModel
>>> params = SystemParameters.three_process(mu=(1.0, 1.0, 1.0),
...                                         lam_12_23_31=(1.0, 1.0, 1.0))
>>> model = RecoveryLineIntervalModel(params)
>>> round(model.mean_interval(), 3)
2.5

Or, through the facade:

>>> import repro
>>> spec = repro.StudySpec(system=repro.SystemSpec.table1_case(1),
...                        metrics=("mean",),
...                        options={"prefer_simplified": False})
>>> round(repro.evaluate(spec, method="analytic").mean, 3)
2.5
"""

from repro._version import __version__
from repro.api import Evaluation, StudyResult, StudySpec, SystemSpec, evaluate
from repro.core import (
    CheckpointKind,
    EventKind,
    HistoryDiagram,
    Interaction,
    RecoveryLine,
    RecoveryPoint,
    SystemParameters,
    extract_intervals,
    find_recovery_lines,
    propagate_rollback,
)
from repro.markov import (
    ModelSimulator,
    PhaseType,
    RecoveryLineIntervalModel,
    SimplifiedChain,
)
from repro.report import ResultStore, ShardedResultStore, generate_report
from repro.runner import (
    ExperimentRunner,
    ProcessPoolBackend,
    RunRecord,
    ScenarioSpec,
    SerialBackend,
    list_scenarios,
    run_scenario,
    scenario,
)
from repro.service import EvaluationService, ServiceClient

__all__ = [
    "__version__",
    "CheckpointKind",
    "Evaluation",
    "StudyResult",
    "StudySpec",
    "SystemSpec",
    "evaluate",
    "EventKind",
    "HistoryDiagram",
    "Interaction",
    "RecoveryLine",
    "RecoveryPoint",
    "SystemParameters",
    "extract_intervals",
    "find_recovery_lines",
    "propagate_rollback",
    "ModelSimulator",
    "PhaseType",
    "RecoveryLineIntervalModel",
    "SimplifiedChain",
    "EvaluationService",
    "ExperimentRunner",
    "ProcessPoolBackend",
    "ResultStore",
    "ServiceClient",
    "ShardedResultStore",
    "RunRecord",
    "ScenarioSpec",
    "SerialBackend",
    "generate_report",
    "list_scenarios",
    "run_scenario",
    "scenario",
]
