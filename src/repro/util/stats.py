"""Statistics helpers: online moments, summaries, confidence intervals.

Monte-Carlo experiments (model-level simulation and full DES runs) funnel their
observations through :class:`OnlineMoments` so that means/variances are available
without retaining every sample, while :class:`SummaryStats` captures a full summary
when the samples *are* retained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "OnlineMoments",
    "SummaryStats",
    "confidence_interval",
    "empirical_cdf",
    "empirical_pdf",
    "relative_error",
]


class OnlineMoments:
    """Welford-style streaming mean/variance accumulator.

    >>> acc = OnlineMoments()
    >>> for x in (1.0, 2.0, 3.0):
    ...     acc.add(x)
    >>> acc.mean
    2.0
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Incorporate a single observation."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Incorporate many observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "OnlineMoments") -> "OnlineMoments":
        """Return a new accumulator combining *self* and *other*."""
        if other._count == 0:
            out = OnlineMoments()
            out._count, out._mean, out._m2 = self._count, self._mean, self._m2
            out._min, out._max = self._min, self._max
            return out
        if self._count == 0:
            return other.merge(self)
        out = OnlineMoments()
        out._count = self._count + other._count
        delta = other._mean - self._mean
        out._mean = self._mean + delta * other._count / out._count
        out._m2 = (self._m2 + other._m2
                   + delta * delta * self._count * other._count / out._count)
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self._count == 0:
            return 0.0
        return self.std / math.sqrt(self._count)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._max

    def summary(self) -> "SummaryStats":
        return SummaryStats(count=self._count, mean=self.mean, std=self.std,
                            minimum=self.minimum, maximum=self.maximum)


@dataclass(frozen=True)
class SummaryStats:
    """Immutable summary of a sample: count, mean, std, min, max."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "SummaryStats":
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot summarise an empty sample")
        return cls(count=int(arr.size), mean=float(arr.mean()),
                   std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
                   minimum=float(arr.min()), maximum=float(arr.max()))

    @property
    def stderr(self) -> float:
        return self.std / math.sqrt(self.count) if self.count else 0.0

    def ci95(self) -> Tuple[float, float]:
        """Approximate 95% confidence interval for the mean (normal theory)."""
        half = 1.959963984540054 * self.stderr
        return (self.mean - half, self.mean + half)


def confidence_interval(samples: Sequence[float], level: float = 0.95
                        ) -> Tuple[float, float]:
    """Normal-theory confidence interval for the mean of *samples*."""
    from scipy import stats as sps

    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two samples for a confidence interval")
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    z = float(sps.norm.ppf(0.5 + level / 2.0))
    return mean - z * sem, mean + z * sem


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(x, F(x))`` of the empirical CDF of *samples* (sorted)."""
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    probs = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, probs


def empirical_pdf(samples: Sequence[float], bins: int = 50,
                  range_: Tuple[float, float] | None = None
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram-based density estimate; returns ``(bin_centres, density)``."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a PDF from an empty sample")
    density, edges = np.histogram(arr, bins=bins, range=range_, density=True)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, density


def relative_error(estimate: float, reference: float) -> float:
    """Absolute relative error, safe when the reference is zero."""
    if reference == 0.0:
        return abs(estimate)
    return abs(estimate - reference) / abs(reference)
