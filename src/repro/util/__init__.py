"""Shared utilities: validation, numerical integration, linear algebra, statistics.

These helpers are deliberately dependency-light (numpy/scipy only) and are used by
every other sub-package.  Nothing in :mod:`repro.util` knows about recovery blocks;
it is pure plumbing.
"""

from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_rate_matrix,
    check_symmetric_rates,
    require,
)
from repro.util.integration import (
    adaptive_quad,
    trapezoid_cumulative,
    tail_integral,
)
from repro.util.linalg import (
    is_generator_matrix,
    embed_dtmc,
    solve_linear,
    expected_visits_absorbing,
    absorption_probabilities,
)
from repro.util.stats import (
    SummaryStats,
    OnlineMoments,
    confidence_interval,
    empirical_cdf,
    empirical_pdf,
    relative_error,
)
from repro.util.tables import AsciiTable, format_float

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_rate_matrix",
    "check_symmetric_rates",
    "require",
    "adaptive_quad",
    "trapezoid_cumulative",
    "tail_integral",
    "is_generator_matrix",
    "embed_dtmc",
    "solve_linear",
    "expected_visits_absorbing",
    "absorption_probabilities",
    "SummaryStats",
    "OnlineMoments",
    "confidence_interval",
    "empirical_cdf",
    "empirical_pdf",
    "relative_error",
    "AsciiTable",
    "format_float",
]
